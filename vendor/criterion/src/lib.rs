//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace's benches use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with `sample_size`,
//! `bench_function` / `bench_with_input`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a simple mean over a fixed batch
//! — good enough for relative comparisons and for keeping `cargo bench`
//! runnable without a crates.io mirror. Honors `CRITERION_SAMPLE_SIZE` to
//! cap iteration counts in CI.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark case: `function_name/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Passed to the measurement closure; drives the timed iterations.
pub struct Bencher {
    samples: u64,
    /// Mean wall-clock time per iteration, recorded by [`Bencher::iter`].
    last_mean: Duration,
}

impl Bencher {
    /// Time `routine`, running it `samples` times after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

fn env_sample_cap() -> Option<u64> {
    std::env::var("CRITERION_SAMPLE_SIZE").ok()?.parse().ok()
}

/// A named collection of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per case.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u64).max(1);
        self
    }

    fn run_case(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = env_sample_cap().unwrap_or(self.samples).max(1);
        let mut b = Bencher {
            samples,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "bench {:<50} {:>12.3?}/iter ({} iters)",
            format!("{}/{}", self.name, id),
            b.last_mean,
            samples
        );
    }

    /// Benchmark one case of this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_case(&id.name, &mut f);
        self
    }

    /// Benchmark one case parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_case(&id.name, &mut |b| f(b, input));
        self
    }

    /// End the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    default_samples: u64,
}

impl Criterion {
    /// Start a named group of benchmark cases.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let samples = if self.default_samples == 0 {
            20
        } else {
            self.default_samples
        };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Benchmark a single stand-alone case.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group(name);
        g.bench_function("base", f);
        drop(g);
        self
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine_requested_times() {
        let mut count = 0u64;
        let mut b = Bencher {
            samples: 5,
            last_mean: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 6, "one warm-up plus five timed iterations");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("case", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| b.iter(|| n * 2));
        g.finish();
        c.bench_function("lone", |b| b.iter(|| ()));
    }
}
