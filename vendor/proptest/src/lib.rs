//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io mirror, so the workspace vendors
//! the slice of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_shuffle`, range and tuple
//! strategies, [`collection`] strategies (`vec`, `hash_set`, `btree_set`),
//! `any`, `Just`, `prop_oneof!` and the [`proptest!`] test macro.
//!
//! Semantics differences from real proptest, deliberate for size:
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of a minimised counterexample.
//! * Generation is deterministic per test name (seeded by an FNV hash of
//!   the test function's name), so failures reproduce across runs.

pub mod test_runner {
    /// Deterministic RNG driving all strategies (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below: empty range");
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-test configuration (`cases` is the only knob the runner reads).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
        /// Accepted for API parity; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feed generated values into a strategy-producing `f`.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Randomly permute generated collections.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { inner: self }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_shuffle`].
    pub struct Shuffle<S> {
        inner: S,
    }

    impl<T, S> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let mut v = self.inner.generate(rng);
            // Fisher–Yates.
            for i in (1..v.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                v.swap(i, j);
            }
            v
        }
    }

    /// Uniform choice among equally weighted alternatives
    /// (the engine behind [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the (non-empty) list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Scalar types sampleable from `low..high` / `low..=high` strategies.
    pub trait RangeValue: Sized + Copy {
        /// Uniform draw from `[low, high)`.
        fn half_open(low: Self, high: Self, rng: &mut TestRng) -> Self;
        /// Uniform draw from `[low, high]`.
        fn inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_range_value_int {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn half_open(low: Self, high: Self, rng: &mut TestRng) -> Self {
                    assert!(low < high, "strategy range is empty");
                    let span = (high as i128 - low as i128) as u128 as u64;
                    low.wrapping_add(rng.below(span) as $t)
                }
                fn inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self {
                    assert!(low <= high, "strategy range is empty");
                    let span = (high as i128 - low as i128) as u128 as u64;
                    if span == u64::MAX {
                        return low.wrapping_add(rng.next_u64() as $t);
                    }
                    low.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl RangeValue for f64 {
        fn half_open(low: Self, high: Self, rng: &mut TestRng) -> Self {
            assert!(low < high, "strategy range is empty");
            low + (high - low) * rng.unit_f64()
        }
        fn inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self {
            assert!(low <= high, "strategy range is empty");
            low + (high - low) * rng.unit_f64()
        }
    }

    impl<T: RangeValue> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::half_open(self.start, self.end, rng)
        }
    }

    impl<T: RangeValue> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::inclusive(*self.start(), *self.end(), rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($($S:ident : $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_tuple!(A: 0);
    impl_strategy_tuple!(A: 0, B: 1);
    impl_strategy_tuple!(A: 0, B: 1, C: 2);
    impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for the whole domain of `T` (returned by [`any`]).
    pub struct Any<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: `any::<u64>()` etc.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeSet, HashSet};
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size range is empty");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "collection size range is empty");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `vec(element, 0..8)`, `vec(element, 4)`, …
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    // Set generation aims for the drawn size but settles for fewer elements
    // when the element domain keeps colliding (real proptest rejects and
    // retries whole cases; settling keeps generation total without it).
    const COLLISION_ATTEMPTS_PER_ELEMENT: usize = 32;

    /// Strategy for `HashSet<S::Value>`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = HashSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * COLLISION_ATTEMPTS_PER_ELEMENT {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `HashSet` strategy: `hash_set(element, 0..=5)`, …
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * COLLISION_ATTEMPTS_PER_ELEMENT {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeSet` strategy: `btree_set(element, 1..6)`, …
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Run each `#[test]` function over `cases` generated inputs.
///
/// Supports the standard form:
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0usize..10, flag in any::<bool>()) { … }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a proptest body (panics; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(…)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t1");
        let s = (0usize..4, 1i64..10, any::<bool>());
        for _ in 0..200 {
            let (a, b, _) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((1..10).contains(&b));
        }
    }

    #[test]
    fn shuffle_permutes_without_loss() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2");
        let s = Just((0..20).collect::<Vec<i32>>()).prop_shuffle();
        let mut changed = false;
        for _ in 0..20 {
            let mut v = s.generate(&mut rng);
            if v != (0..20).collect::<Vec<i32>>() {
                changed = true;
            }
            v.sort_unstable();
            assert_eq!(v, (0..20).collect::<Vec<i32>>());
        }
        assert!(changed, "shuffle never permuted");
    }

    #[test]
    fn oneof_reaches_every_arm() {
        let mut rng = crate::test_runner::TestRng::deterministic("t3");
        let s = prop_oneof![Just(0u8), Just(1u8), (2u8..4).prop_map(|x| x)];
        let got: HashSet<u8> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert_eq!(got, HashSet::from([0, 1, 2, 3]));
    }

    #[test]
    fn collections_respect_size_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t4");
        for _ in 0..100 {
            let v = prop::collection::vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let hs = prop::collection::hash_set(0usize..50, 0..=5).generate(&mut rng);
            assert!(hs.len() <= 5);
            let bs = prop::collection::btree_set((0usize..4, 0u8..3), 1..6).generate(&mut rng);
            assert!((1..6).contains(&bs.len()));
        }
    }

    #[test]
    fn flat_map_sees_inner_value() {
        let mut rng = crate::test_runner::TestRng::deterministic("t5");
        let s = (1usize..5).prop_flat_map(|n| prop::collection::vec(0usize..n, n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 5);
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, config, prop_assert forms.
        #[test]
        fn macro_smoke(a in 0usize..10, b in any::<u64>(), v in prop::collection::vec(0u8..3, 0..4)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b.wrapping_add(0), b);
            prop_assert!(v.len() < 4, "len {}", v.len());
        }
    }
}
