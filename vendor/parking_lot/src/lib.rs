//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the small slice of `parking_lot` it actually uses —
//! `Mutex`, `RwLock` and `Condvar` with panic-free (non-poisoning) guards —
//! implemented on top of `std::sync`. Lock poisoning is deliberately
//! swallowed: like real `parking_lot`, a panic while holding a guard does
//! not wedge every later access.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A mutual exclusion primitive (non-poisoning `lock()` like parking_lot's).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_until` can temporarily take the std guard
    // (std's wait API consumes and returns it).
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified (or spuriously woken).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` (an absolute instant) passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Instant,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let dur = timeout.saturating_duration_since(Instant::now());
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, dur)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }
}

/// A reader-writer lock (non-poisoning like parking_lot's).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                let r = c.wait_until(&mut ready, Instant::now() + Duration::from_secs(5));
                assert!(!r.timed_out(), "missed the notification");
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        h.join().unwrap();
    }
}
