//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io mirror, so the workspace vendors
//! the slice of `rand` it uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits, [`rngs::StdRng`] and [`thread_rng`]. `StdRng` here is a
//! splitmix64/xorshift generator — statistically fine for workload shaping
//! and latency jitter, **not** cryptographic.

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};
use std::sync::atomic::{AtomicU64, Ordering};

/// Core randomness source: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 as u64;
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 as u64;
                if span == u64::MAX {
                    return low.wrapping_add(rng.next_u64() as $t);
                }
                low.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + (high - low) * unit
    }
    fn sample_inclusive<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
        Self::sample_half_open(low, f64::from_bits(high.to_bits() + 1), rng)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::*;

    /// Deterministic, seedable generator (xoshiro-style quality via
    /// splitmix64 stream). Stand-in for rand's ChaCha-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Scramble so that nearby seeds yield unrelated streams.
            let mut s = state ^ 0xA076_1D64_78BD_642F;
            let _ = splitmix64(&mut s);
            StdRng { state: s }
        }
    }

    /// Handle to the per-thread generator returned by [`crate::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng;

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG.with(|r| r.borrow_mut().next_u64())
        }
    }
}

static THREAD_SEED: AtomicU64 = AtomicU64::new(0x5EED_0FC0_FFEE);

thread_local! {
    static THREAD_RNG: RefCell<rngs::StdRng> = RefCell::new(rngs::StdRng::seed_from_u64(
        THREAD_SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed),
    ));
}

/// The per-thread generator (distinct stream per thread).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn thread_rng_streams_differ_across_threads() {
        let a = std::thread::spawn(|| thread_rng().next_u64())
            .join()
            .unwrap();
        let b = thread_rng().next_u64();
        assert_ne!(a, b);
    }
}
