//! Unified observability layer for the QR-ACN workspace.
//!
//! Three pieces, one crate, zero upward dependencies (only `acn-txir` for
//! object identity, so every other crate can use it without cycles):
//!
//! - **Trace rings** ([`TraceRing`]): per-thread bounded buffers of
//!   structured [`TxnEvent`]s — begin / block start / batched-read round /
//!   partial abort / full restart / commit — overwrite-oldest with a drop
//!   counter, so memory stays fixed while the tail of the story survives.
//! - **Abort attribution** ([`AbortTable`], fed via [`TxnObserver`]):
//!   exact counts keyed by `(class, block, kind)`. The executor emits one
//!   event per stats increment, so attributed totals reconcile against
//!   `ExecStats` to the unit.
//! - **Metrics registry** ([`MetricsRegistry`] → [`MetricsReport`]):
//!   neutral mirrors of executor / checkpoint / network / latency /
//!   contention counters with a JSON-lines exporter whose output parses
//!   back to an equal report.
//! - **Span tracer** ([`Tracer`] / [`SpanCollector`] / [`critical_path`]):
//!   causal spans across client, wire and servers with a per-committed-txn
//!   critical-path decomposition and a Chrome-trace/Perfetto exporter
//!   ([`write_chrome_trace`]) whose output parses back exactly.

#![warn(missing_docs)]

mod attribution;
mod chrome;
mod event;
pub mod json;
mod registry;
mod span;
mod trace;

pub use attribution::{AbortSite, AbortTable, TxnObserver};
pub use chrome::{parse_chrome_trace, write_chrome_trace};
pub use event::{AbortKind, TxnEvent};
pub use registry::{
    AbortRow, CheckpointCounters, ContentionLevel, CritPathRow, ExecCounters, LatencySummary,
    MetricsRegistry, MetricsReport, NetCounters, RecoveryCounters, ThreadTraceRow,
    SERVER_TRACE_THREAD,
};
pub use span::{
    aggregate_critpath, critical_path, BlockCost, PendingSpan, RawSpan, Span, SpanCollector,
    SpanKind, SpanRing, TraceCtx, Tracer, TxnCritPath, DEFAULT_SPAN_CAPACITY, FLAG_COMMITTED,
    FLAG_ROLLED_BACK,
};
pub use trace::{ObsConfig, TraceRing, TraceSummary, DEFAULT_TRACE_CAPACITY};
