//! Unified observability layer for the QR-ACN workspace.
//!
//! Three pieces, one crate, zero upward dependencies (only `acn-txir` for
//! object identity, so every other crate can use it without cycles):
//!
//! - **Trace rings** ([`TraceRing`]): per-thread bounded buffers of
//!   structured [`TxnEvent`]s — begin / block start / batched-read round /
//!   partial abort / full restart / commit — overwrite-oldest with a drop
//!   counter, so memory stays fixed while the tail of the story survives.
//! - **Abort attribution** ([`AbortTable`], fed via [`TxnObserver`]):
//!   exact counts keyed by `(class, block, kind)`. The executor emits one
//!   event per stats increment, so attributed totals reconcile against
//!   `ExecStats` to the unit.
//! - **Metrics registry** ([`MetricsRegistry`] → [`MetricsReport`]):
//!   neutral mirrors of executor / checkpoint / network / latency /
//!   contention counters with a JSON-lines exporter whose output parses
//!   back to an equal report.
//! - **Span tracer** ([`Tracer`] / [`SpanCollector`] / [`critical_path`]):
//!   causal spans across client, wire and servers with a per-committed-txn
//!   critical-path decomposition and a Chrome-trace/Perfetto exporter
//!   ([`write_chrome_trace`]) whose output parses back exactly.
//! - **Live telemetry** ([`LogHistogram`] / [`WindowedSeries`] /
//!   [`WorkLedger`]): log-bucketed latency histograms with lossless merge
//!   and bounded-error quantiles, grid-aligned per-window counters, and a
//!   wasted-work ledger whose totals obey
//!   `committed + discarded(full) + discarded(partial) == executed`
//!   exactly.
//! - **SLO gauges + flight recorder** ([`SloPolicy`] / [`record_flight`]):
//!   declarative budgets (p99, abort storm, WAL-degraded, sync refusals)
//!   whose tripped triggers dump the span rings through the Chrome
//!   exporter and land as [`FlightRecord`] rows in the report.
//! - **Prometheus surface** ([`report_to_prom`] / [`render_prom`] /
//!   [`parse_prom`]): the dependency-free exposition-format exporter the
//!   future `acn-node` will scrape, round-trip-parsed like every codec
//!   here.

#![warn(missing_docs)]

mod attribution;
mod chrome;
mod event;
pub mod json;
mod prom;
mod registry;
mod slo;
mod span;
mod timeseries;
mod trace;
mod wasted;

pub use attribution::{AbortSite, AbortTable, TxnObserver};
pub use chrome::{parse_chrome_trace, write_chrome_trace};
pub use event::{AbortKind, TxnEvent};
pub use prom::{parse_prom, render_prom, report_to_prom, PromMetric, PromSample, PromType};
pub use registry::{
    AbortRow, CheckpointCounters, ContentionLevel, CritPathRow, ExecCounters, LatencySummary,
    MetricsRegistry, MetricsReport, NetCounters, RecoveryCounters, SeriesRow, ThreadTraceRow,
    SCHEMA_VERSION, SERVER_TRACE_THREAD,
};
pub use slo::{record_flight, FlightRecord, SloInputs, SloPolicy, SloRule, SloTrigger};
pub use span::{
    aggregate_critpath, critical_path, BlockCost, PendingSpan, RawSpan, Span, SpanCollector,
    SpanKind, SpanRing, TraceCtx, Tracer, TxnCritPath, DEFAULT_SPAN_CAPACITY, FLAG_COMMITTED,
    FLAG_ROLLED_BACK,
};
pub use timeseries::{LogHistogram, WindowCell, WindowedSeries};
pub use trace::{ObsConfig, TraceRing, TraceSummary, DEFAULT_TRACE_CAPACITY};
pub use wasted::{WorkLedger, WorkTotals, WorkUnits};
