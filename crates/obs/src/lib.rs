//! Unified observability layer for the QR-ACN workspace.
//!
//! Three pieces, one crate, zero upward dependencies (only `acn-txir` for
//! object identity, so every other crate can use it without cycles):
//!
//! - **Trace rings** ([`TraceRing`]): per-thread bounded buffers of
//!   structured [`TxnEvent`]s — begin / block start / batched-read round /
//!   partial abort / full restart / commit — overwrite-oldest with a drop
//!   counter, so memory stays fixed while the tail of the story survives.
//! - **Abort attribution** ([`AbortTable`], fed via [`TxnObserver`]):
//!   exact counts keyed by `(class, block, kind)`. The executor emits one
//!   event per stats increment, so attributed totals reconcile against
//!   `ExecStats` to the unit.
//! - **Metrics registry** ([`MetricsRegistry`] → [`MetricsReport`]):
//!   neutral mirrors of executor / checkpoint / network / latency /
//!   contention counters with a JSON-lines exporter whose output parses
//!   back to an equal report.

#![warn(missing_docs)]

mod attribution;
mod event;
pub mod json;
mod registry;
mod trace;

pub use attribution::{AbortSite, AbortTable, TxnObserver};
pub use event::{AbortKind, TxnEvent};
pub use registry::{
    AbortRow, CheckpointCounters, ContentionLevel, ExecCounters, LatencySummary, MetricsRegistry,
    MetricsReport, NetCounters, RecoveryCounters,
};
pub use trace::{ObsConfig, TraceRing, TraceSummary, DEFAULT_TRACE_CAPACITY};
