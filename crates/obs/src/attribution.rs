//! Abort attribution: which object class, at which Block, aborted how.
//!
//! The paper's Dynamic Module collects "run-time parameters such as
//! objects' write and abort ratios"; this table is the client-side half of
//! that visibility. Every abort the executor (or checkpoint runner)
//! absorbs lands here exactly once, keyed by `(class, block index, abort
//! kind)`, so a bench can print "top-K hottest classes by induced aborts"
//! next to throughput and the totals reconcile against the executor's
//! counters with no lost or double-counted events.

use crate::event::{AbortKind, TxnEvent};
use crate::trace::{ObsConfig, TraceRing};
use crate::wasted::{WorkLedger, WorkTotals};
use acn_txir::ObjClass;
use std::collections::BTreeMap;

/// One attribution key: the class blamed (if any object was blamed), the
/// Block the abort surfaced in (`None` = flat body or commit phase), and
/// the abort kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AbortSite {
    /// Class of the first blamed object; `None` when the DTM reported no
    /// object (e.g. a pure lock conflict at prepare).
    pub class: Option<ObjClass>,
    /// Block index the abort surfaced in; `None` = flat body or commit.
    pub block: Option<u32>,
    /// Why the attempt (or Block) was thrown away.
    pub kind: AbortKind,
}

/// Abort counts per [`AbortSite`]. Deterministically ordered (BTreeMap) so
/// reports and JSON exports are stable across runs with equal counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AbortTable {
    counts: BTreeMap<AbortSite, u64>,
}

impl AbortTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one abort at `site`.
    pub fn record(&mut self, site: AbortSite) {
        *self.counts.entry(site).or_insert(0) += 1;
    }

    /// Count `n` aborts at `site` (JSON import, merges).
    pub fn record_n(&mut self, site: AbortSite, n: u64) {
        if n > 0 {
            *self.counts.entry(site).or_insert(0) += n;
        }
    }

    /// Accumulate another table (per-thread collection).
    pub fn merge(&mut self, other: &AbortTable) {
        for (&site, &n) in &other.counts {
            self.record_n(site, n);
        }
    }

    /// All sites with their counts, in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&AbortSite, &u64)> {
        self.counts.iter()
    }

    /// Total aborts attributed, over every kind.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total aborts attributed over the given kinds only.
    pub fn total_of(&self, kinds: &[AbortKind]) -> u64 {
        self.counts
            .iter()
            .filter(|(s, _)| kinds.contains(&s.kind))
            .map(|(_, &n)| n)
            .sum()
    }

    /// True when nothing has been attributed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Induced-abort count per class, heaviest first. `None` groups the
    /// aborts with no blamed object. Ties break on class id for
    /// determinism.
    pub fn by_class(&self) -> Vec<(Option<ObjClass>, u64)> {
        let mut agg: BTreeMap<Option<u16>, (Option<ObjClass>, u64)> = BTreeMap::new();
        for (site, &n) in &self.counts {
            let e = agg
                .entry(site.class.map(|c| c.id))
                .or_insert((site.class, 0));
            e.1 += n;
        }
        let mut out: Vec<(Option<ObjClass>, u64)> = agg.into_values().collect();
        out.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| a.0.map(|c| c.id).cmp(&b.0.map(|c| c.id)))
        });
        out
    }

    /// The `k` classes inducing the most aborts, as `(name, count)`.
    pub fn top_classes(&self, k: usize) -> Vec<(&'static str, u64)> {
        self.by_class()
            .into_iter()
            .take(k)
            .map(|(c, n)| (c.map(|c| c.name).unwrap_or("<none>"), n))
            .collect()
    }
}

/// One thread's observability handle: a trace ring plus an abort table,
/// fed through a single entry point so the two views never disagree.
#[derive(Debug, Clone)]
pub struct TxnObserver {
    /// Structured event tail (bounded memory).
    pub trace: TraceRing,
    /// Abort attribution counts (exact, unbounded only in distinct keys —
    /// bounded in practice by classes × blocks × kinds).
    pub aborts: AbortTable,
    /// Wasted-work ledger: every unit of work charged to the outcome
    /// (commit, full discard, partial discard) that settled it.
    pub work: WorkLedger,
}

impl TxnObserver {
    /// Build with the given config.
    pub fn new(cfg: ObsConfig) -> Self {
        TxnObserver {
            trace: TraceRing::new(cfg.trace_capacity),
            aborts: AbortTable::new(),
            work: WorkLedger::new(),
        }
    }

    /// Record one event. Abort events additionally feed the attribution
    /// table, and every event feeds the wasted-work ledger, so callers
    /// never double-book and the three views never disagree.
    pub fn on_event(&mut self, ev: TxnEvent) {
        match ev {
            TxnEvent::PartialAbort { block, obj, kind } => self.aborts.record(AbortSite {
                class: obj.map(|o| o.class),
                block: Some(block),
                kind,
            }),
            TxnEvent::FullAbort { block, obj, kind } => self.aborts.record(AbortSite {
                class: obj.map(|o| o.class),
                block,
                kind,
            }),
            _ => {}
        }
        self.work.on_event(ev);
        self.trace.push(ev);
    }

    /// Merge another observer's attribution, trace counters, and settled
    /// wasted-work totals into the caller's accumulators (the merged trace
    /// keeps only counter totals, not events).
    pub fn merge_into(
        &self,
        aborts: &mut AbortTable,
        trace: &mut crate::trace::TraceSummary,
        work: &mut WorkTotals,
    ) {
        aborts.merge(&self.aborts);
        trace.merge(&self.trace.summary());
        work.merge(&self.work.snapshot());
    }
}

impl Default for TxnObserver {
    fn default() -> Self {
        Self::new(ObsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_txir::ObjectId;

    const BRANCH: ObjClass = ObjClass::new(1, "Branch");
    const ACCOUNT: ObjClass = ObjClass::new(2, "Account");

    #[test]
    fn abort_events_feed_both_views() {
        let mut o = TxnObserver::default();
        o.on_event(TxnEvent::Begin);
        o.on_event(TxnEvent::PartialAbort {
            block: 0,
            obj: Some(ObjectId::new(BRANCH, 3)),
            kind: AbortKind::Partial,
        });
        o.on_event(TxnEvent::FullAbort {
            block: None,
            obj: Some(ObjectId::new(BRANCH, 3)),
            kind: AbortKind::CommitConflict,
        });
        o.on_event(TxnEvent::Commit { restarts: 1 });
        assert_eq!(o.trace.recorded(), 4);
        assert_eq!(o.aborts.total(), 2);
        assert_eq!(o.aborts.top_classes(1), vec![("Branch", 2)]);
    }

    #[test]
    fn by_class_ranks_heaviest_first() {
        let mut t = AbortTable::new();
        let site = |class, block, kind| AbortSite { class, block, kind };
        t.record_n(site(Some(ACCOUNT), Some(1), AbortKind::Partial), 2);
        t.record_n(site(Some(BRANCH), Some(0), AbortKind::Partial), 5);
        t.record_n(site(Some(BRANCH), None, AbortKind::CommitConflict), 4);
        t.record_n(site(None, None, AbortKind::LockedOut), 1);
        assert_eq!(t.total(), 12);
        assert_eq!(t.total_of(&[AbortKind::Partial]), 7);
        let ranked = t.by_class();
        assert_eq!(ranked[0], (Some(BRANCH), 9));
        assert_eq!(ranked[1], (Some(ACCOUNT), 2));
        assert_eq!(ranked[2], (None, 1));
        assert_eq!(t.top_classes(2), vec![("Branch", 9), ("Account", 2)]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AbortTable::new();
        let mut b = AbortTable::new();
        let site = AbortSite {
            class: Some(BRANCH),
            block: Some(0),
            kind: AbortKind::Partial,
        };
        a.record(site);
        b.record(site);
        b.record(AbortSite {
            class: None,
            block: None,
            kind: AbortKind::Escalated,
        });
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.iter().count(), 2);
    }
}
