//! Per-thread bounded trace ring.
//!
//! Each client thread owns one [`TraceRing`]; no synchronisation is needed
//! on the record path (the "lock-free" in lock-free-ish is by
//! construction: single writer, no sharing). Memory is bounded by the
//! fixed capacity; once full, the oldest event is overwritten and counted
//! in [`TraceRing::dropped`], so a long run keeps the *tail* of the trace
//! — the part that explains the state the run ended in.

use crate::event::TxnEvent;

/// Default per-thread ring capacity (events, not bytes).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Observability knobs for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Capacity of each thread's trace ring, in events.
    pub trace_capacity: usize,
    /// Record causal spans (client rounds, server dwell, Blocks) too.
    pub trace_spans: bool,
    /// Capacity of each thread's span ring (and the shared server-side
    /// collector), in spans.
    pub span_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            trace_spans: true,
            span_capacity: crate::span::DEFAULT_SPAN_CAPACITY,
        }
    }
}

/// A fixed-capacity overwrite-oldest ring of [`TxnEvent`]s.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<TxnEvent>,
    /// Ring size in events (`Vec::capacity` may over-allocate, so the
    /// logical bound is tracked separately).
    cap: usize,
    /// Next write position (wraps at `cap`).
    head: usize,
    recorded: u64,
    dropped: u64,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        TraceRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Record one event: O(1), no allocation after the ring first fills.
    pub fn push(&mut self, ev: TxnEvent) {
        self.recorded += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
            self.head = self.buf.len() % self.cap;
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events ever recorded (dropped ones included).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TxnEvent> {
        let (newer, older) = if self.buf.len() < self.cap {
            (&self.buf[..], &[][..])
        } else {
            self.buf.split_at(self.head)
        };
        older.iter().chain(newer.iter())
    }

    /// Counter summary for merging across threads.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            recorded: self.recorded,
            dropped: self.dropped,
            capacity: self.cap as u64,
        }
    }
}

/// Aggregated ring counters — what a multi-thread run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Events recorded across all rings.
    pub recorded: u64,
    /// Events overwritten (bounded-memory drops) across all rings.
    pub dropped: u64,
    /// Total retained-event capacity across all rings.
    pub capacity: u64,
}

impl TraceSummary {
    /// Element-wise accumulate (per-thread collection).
    pub fn merge(&mut self, other: &TraceSummary) {
        self.recorded += other.recorded;
        self.dropped += other.dropped;
        self.capacity += other.capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u32) -> TxnEvent {
        TxnEvent::BlockStart { block: n }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = TraceRing::new(3);
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.len(), 3);
        r.push(ev(3));
        r.push(ev(4));
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3, "memory stays bounded");
        let got: Vec<u32> = r
            .iter()
            .map(|e| match e {
                TxnEvent::BlockStart { block } => *block,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![2, 3, 4], "oldest first, tail retained");
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut r = TraceRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn summaries_merge() {
        let mut r = TraceRing::new(2);
        for i in 0..5 {
            r.push(ev(i));
        }
        let mut total = r.summary();
        total.merge(&r.summary());
        assert_eq!(total.recorded, 10);
        assert_eq!(total.dropped, 6);
        assert_eq!(total.capacity, 4);
    }
}
