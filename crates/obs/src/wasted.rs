//! The wasted-work ledger: what every abort actually threw away.
//!
//! The paper's value proposition is that partial rollback discards *less
//! work* than a full restart; this module makes that a first-class online
//! metric instead of an end-of-run inference. Work is measured in three
//! units — Block executions, batched read rounds, and lock holds
//! (update-mode opens) — accumulated from the same [`TxnEvent`] stream
//! that feeds abort attribution, so the nesting executor, the checkpoint
//! runner and the batch path are all covered by one accounting.
//!
//! The ledger follows the attribution-sum discipline of PR 3: every unit
//! of work counted as executed is charged to exactly one outcome, and
//!
//! ```text
//! committed + discarded(full) + discarded(partial) == executed
//! ```
//!
//! holds *exactly*, per unit, on every settled ledger — CI asserts it
//! under chaos profiles too. An execution path that records work but
//! never charges it (or charges work it never recorded) breaks the sum
//! and fails the suite, which is the point: the invariant is a tripwire
//! for unaccounted work, not a definition that is true by construction.
//!
//! Accounting notes, for precision about what the numbers mean:
//!
//! - A *flat* attempt (no Block scopes) counts as one Block execution,
//!   charged when the attempt terminates — including attempts that fail
//!   before reaching their body, whose partial statement execution the
//!   event stream cannot size.
//! - Attempts abandoned without a terminal abort event (quorum
//!   unavailability absorbed by the retry policy, retry-budget
//!   exhaustion, fatal errors) are charged to `discarded(full)` and
//!   additionally reported under [`WorkTotals::abandoned`], so storm
//!   analysis can separate contention loss from availability loss.
//! - The checkpoint runner's multi-Block rollbacks charge only the Block
//!   the abort surfaced in; Blocks restored from an earlier checkpoint
//!   re-run (and re-count) as fresh executions. The nesting executor —
//!   the paper's design — re-runs exactly the aborted Block, so its
//!   attribution is exact.

use crate::event::{AbortKind, TxnEvent};
use std::collections::BTreeMap;

/// A quantity of transactional work, by unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkUnits {
    /// Block (sub-transaction) executions, flat bodies counted as one.
    pub blocks: u64,
    /// Batched quorum read rounds.
    pub read_rounds: u64,
    /// Update-mode opens (each acquires a commit-time lock claim).
    pub lock_holds: u64,
}

impl WorkUnits {
    /// All-zero work.
    pub const ZERO: WorkUnits = WorkUnits {
        blocks: 0,
        read_rounds: 0,
        lock_holds: 0,
    };

    /// True when every unit is zero.
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    fn accumulate(&mut self, other: WorkUnits) {
        self.blocks += other.blocks;
        self.read_rounds += other.read_rounds;
        self.lock_holds += other.lock_holds;
    }
}

impl std::ops::Add for WorkUnits {
    type Output = WorkUnits;
    fn add(self, rhs: WorkUnits) -> WorkUnits {
        let mut out = self;
        out.accumulate(rhs);
        out
    }
}

/// The settled, mergeable totals of a [`WorkLedger`]: every recorded unit
/// of work charged to exactly one outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkTotals {
    /// Everything recorded, charged or not yet — the right-hand side of
    /// the invariant.
    pub executed: WorkUnits,
    /// Work alive in a committed transaction's final state.
    pub committed: WorkUnits,
    /// Work discarded by full restarts (abandoned attempts included).
    pub discarded_full: WorkUnits,
    /// Work discarded by partial (child-scope / checkpoint) rollbacks —
    /// the paper's headline: this is what stays *small* under ACN.
    pub discarded_partial: WorkUnits,
    /// Sub-bucket of [`WorkTotals::discarded_full`]: attempts abandoned
    /// without a terminal abort event (availability, budget exhaustion).
    pub abandoned: WorkUnits,
    /// Discarded work split by the abort kind that discarded it
    /// (abandoned work carries no kind and appears only in `abandoned`).
    pub by_kind: BTreeMap<AbortKind, WorkUnits>,
}

impl WorkTotals {
    /// Total discarded work, full and partial.
    pub fn discarded(&self) -> WorkUnits {
        self.discarded_full + self.discarded_partial
    }

    /// Accumulate another settled total (per-thread collection).
    pub fn merge(&mut self, other: &WorkTotals) {
        self.executed.accumulate(other.executed);
        self.committed.accumulate(other.committed);
        self.discarded_full.accumulate(other.discarded_full);
        self.discarded_partial.accumulate(other.discarded_partial);
        self.abandoned.accumulate(other.abandoned);
        for (&k, &w) in &other.by_kind {
            self.by_kind.entry(k).or_default().accumulate(w);
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.executed.is_zero()
    }

    /// The exactness invariant, checked per unit:
    /// `committed + discarded_full + discarded_partial == executed`, and
    /// the per-kind split plus abandoned must sum to the discard totals.
    /// Returns a description of the first violated equation.
    pub fn check(&self) -> Result<(), String> {
        let charged = self.committed + self.discarded_full + self.discarded_partial;
        if charged != self.executed {
            return Err(format!(
                "work invariant violated: committed {:?} + discarded_full {:?} + \
                 discarded_partial {:?} = {charged:?} != executed {:?}",
                self.committed, self.discarded_full, self.discarded_partial, self.executed
            ));
        }
        let mut by_kind_sum = self.abandoned;
        for w in self.by_kind.values() {
            by_kind_sum.accumulate(*w);
        }
        if by_kind_sum != self.discarded() {
            return Err(format!(
                "per-kind split violated: sum(by_kind) + abandoned = {by_kind_sum:?} \
                 != discarded {:?}",
                self.discarded()
            ));
        }
        Ok(())
    }
}

/// Per-observer live ledger: the settled totals plus the work of the
/// in-flight attempt, fed one [`TxnEvent`] at a time.
#[derive(Debug, Clone, Default)]
pub struct WorkLedger {
    totals: WorkTotals,
    /// Completed-Block work of the in-flight attempt (merged parent
    /// state): discarded only by a full abort.
    attempt: WorkUnits,
    /// Work of the Block currently executing: discarded by a partial
    /// abort of that Block alone.
    block: WorkUnits,
    /// Whether the in-flight attempt opened any Block scope; a flat
    /// attempt counts one Block lazily when it terminates.
    saw_block: bool,
}

impl WorkLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge the current Block's work to `f`'s bucket and reset it.
    fn charge_block(&mut self, kind: AbortKind) {
        let w = std::mem::take(&mut self.block);
        self.totals.discarded_partial.accumulate(w);
        self.totals.by_kind.entry(kind).or_default().accumulate(w);
    }

    /// Fold the in-flight attempt (current Block included) into one
    /// value, applying the lazy flat-Block count.
    fn take_attempt(&mut self) -> WorkUnits {
        let mut w = std::mem::take(&mut self.attempt);
        w.accumulate(std::mem::take(&mut self.block));
        if !self.saw_block {
            // Flat body: one Block-equivalent of execution, recorded here
            // because no BlockStart event ever named it.
            w.blocks += 1;
            self.totals.executed.blocks += 1;
        }
        self.saw_block = false;
        w
    }

    /// Charge whatever the in-flight attempt accumulated to the abandoned
    /// sub-bucket of `discarded_full` — used for attempts that never got a
    /// terminal event (fatal errors, absorbed unavailability).
    fn abandon_in_flight(&mut self) {
        if self.attempt.is_zero() && self.block.is_zero() && !self.saw_block {
            // Nothing recorded since the last charge: no lazy Block either
            // (a Begin that never executed anything is not work).
            return;
        }
        let w = self.take_attempt();
        self.totals.discarded_full.accumulate(w);
        self.totals.abandoned.accumulate(w);
    }

    /// Record one event. Called from [`crate::TxnObserver::on_event`] so
    /// the ledger and the attribution table never disagree about which
    /// events happened.
    pub fn on_event(&mut self, ev: TxnEvent) {
        match ev {
            TxnEvent::Begin => {
                // Leftover work means the previous transaction ended on a
                // fatal path that emits no terminal event.
                self.abandon_in_flight();
            }
            TxnEvent::BlockStart { .. } => {
                // The previous Block (if any) completed: its work now
                // belongs to the attempt's merged parent state.
                let done = std::mem::take(&mut self.block);
                self.attempt.accumulate(done);
                self.block.blocks = 1;
                self.totals.executed.blocks += 1;
                self.saw_block = true;
            }
            TxnEvent::BatchedRead { block, .. } => {
                let scope = if block.is_some() {
                    &mut self.block
                } else {
                    &mut self.attempt
                };
                scope.read_rounds += 1;
                self.totals.executed.read_rounds += 1;
            }
            TxnEvent::LockHolds { block, holds } => {
                let scope = if block.is_some() {
                    &mut self.block
                } else {
                    &mut self.attempt
                };
                scope.lock_holds += holds as u64;
                self.totals.executed.lock_holds += holds as u64;
            }
            TxnEvent::PartialAbort { kind, .. } => {
                self.charge_block(kind);
                // The Block re-runs: its BlockStart re-arms `block`.
            }
            TxnEvent::FullAbort { kind, .. } => {
                let w = self.take_attempt();
                self.totals.discarded_full.accumulate(w);
                self.totals.by_kind.entry(kind).or_default().accumulate(w);
            }
            TxnEvent::UnavailableRetry => {
                // The attempt restarts from scratch; everything it did is
                // availability loss, not contention loss.
                self.abandon_in_flight();
            }
            TxnEvent::Commit { .. } => {
                let w = self.take_attempt();
                self.totals.committed.accumulate(w);
            }
        }
    }

    /// The settled totals: a snapshot with any in-flight work folded into
    /// the abandoned bucket, on which [`WorkTotals::check`] always applies.
    pub fn snapshot(&self) -> WorkTotals {
        let mut settled = self.clone();
        settled.abandon_in_flight();
        settled.totals
    }

    /// Direct read of the (unsettled) totals — tests and diagnostics.
    pub fn totals(&self) -> &WorkTotals {
        &self.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_txir::{ObjClass, ObjectId};

    const BRANCH: ObjClass = ObjClass::new(1, "Branch");

    fn obj() -> Option<ObjectId> {
        Some(ObjectId::new(BRANCH, 3))
    }

    fn ledger(events: &[TxnEvent]) -> WorkTotals {
        let mut l = WorkLedger::new();
        for &e in events {
            l.on_event(e);
        }
        let t = l.snapshot();
        t.check().expect("invariant");
        t
    }

    #[test]
    fn committed_nested_txn_charges_everything_to_committed() {
        let t = ledger(&[
            TxnEvent::Begin,
            TxnEvent::BlockStart { block: 0 },
            TxnEvent::BatchedRead {
                block: Some(0),
                objs: 3,
            },
            TxnEvent::LockHolds {
                block: Some(0),
                holds: 2,
            },
            TxnEvent::BlockStart { block: 1 },
            TxnEvent::LockHolds {
                block: Some(1),
                holds: 1,
            },
            TxnEvent::Commit { restarts: 0 },
        ]);
        assert_eq!(
            t.committed,
            WorkUnits {
                blocks: 2,
                read_rounds: 1,
                lock_holds: 3
            }
        );
        assert_eq!(t.executed, t.committed);
        assert!(t.discarded().is_zero());
    }

    #[test]
    fn partial_abort_charges_only_the_aborted_block_run() {
        let t = ledger(&[
            TxnEvent::Begin,
            TxnEvent::BlockStart { block: 0 },
            TxnEvent::LockHolds {
                block: Some(0),
                holds: 1,
            },
            TxnEvent::BlockStart { block: 1 },
            TxnEvent::BatchedRead {
                block: Some(1),
                objs: 2,
            },
            TxnEvent::PartialAbort {
                block: 1,
                obj: obj(),
                kind: AbortKind::Partial,
            },
            // Re-run of Block 1 succeeds this time.
            TxnEvent::BlockStart { block: 1 },
            TxnEvent::Commit { restarts: 0 },
        ]);
        assert_eq!(
            t.discarded_partial,
            WorkUnits {
                blocks: 1,
                read_rounds: 1,
                lock_holds: 0
            }
        );
        assert_eq!(
            t.committed,
            WorkUnits {
                blocks: 2,
                read_rounds: 0,
                lock_holds: 1
            }
        );
        assert_eq!(t.executed.blocks, 3, "three Block executions happened");
        assert_eq!(t.by_kind[&AbortKind::Partial].blocks, 1);
    }

    #[test]
    fn escalation_splits_block_and_attempt_charges() {
        // The executor emits PartialAbort (the livelocked Block's last
        // run) and then FullAbort{Escalated} (the attempt's other work).
        let t = ledger(&[
            TxnEvent::Begin,
            TxnEvent::BlockStart { block: 0 },
            TxnEvent::LockHolds {
                block: Some(0),
                holds: 1,
            },
            TxnEvent::BlockStart { block: 1 },
            TxnEvent::PartialAbort {
                block: 1,
                obj: obj(),
                kind: AbortKind::Partial,
            },
            TxnEvent::BlockStart { block: 1 },
            TxnEvent::PartialAbort {
                block: 1,
                obj: obj(),
                kind: AbortKind::Partial,
            },
            TxnEvent::FullAbort {
                block: Some(1),
                obj: obj(),
                kind: AbortKind::Escalated,
            },
            // Retry commits cleanly.
            TxnEvent::Begin,
            TxnEvent::BlockStart { block: 0 },
            TxnEvent::BlockStart { block: 1 },
            TxnEvent::Commit { restarts: 1 },
        ]);
        assert_eq!(t.discarded_partial.blocks, 2, "two livelocked Block runs");
        assert_eq!(
            t.by_kind[&AbortKind::Escalated],
            WorkUnits {
                blocks: 1,
                read_rounds: 0,
                lock_holds: 1
            },
            "escalation discards the attempt's completed Blocks"
        );
        assert_eq!(t.committed.blocks, 2);
        assert_eq!(t.executed.blocks, 5);
    }

    #[test]
    fn flat_attempts_count_one_lazy_block() {
        let t = ledger(&[
            TxnEvent::Begin,
            TxnEvent::BatchedRead {
                block: None,
                objs: 4,
            },
            TxnEvent::LockHolds {
                block: None,
                holds: 2,
            },
            TxnEvent::FullAbort {
                block: None,
                obj: obj(),
                kind: AbortKind::CommitConflict,
            },
            TxnEvent::Begin,
            TxnEvent::BatchedRead {
                block: None,
                objs: 4,
            },
            TxnEvent::LockHolds {
                block: None,
                holds: 2,
            },
            TxnEvent::Commit { restarts: 1 },
        ]);
        assert_eq!(
            t.discarded_full,
            WorkUnits {
                blocks: 1,
                read_rounds: 1,
                lock_holds: 2
            }
        );
        assert_eq!(t.committed.blocks, 1);
        assert_eq!(t.executed.blocks, 2);
        assert!(t.discarded_partial.is_zero(), "flat cannot partially abort");
    }

    #[test]
    fn unavailable_retry_lands_in_abandoned() {
        let t = ledger(&[
            TxnEvent::Begin,
            TxnEvent::BlockStart { block: 0 },
            TxnEvent::BatchedRead {
                block: Some(0),
                objs: 1,
            },
            TxnEvent::UnavailableRetry,
            TxnEvent::Begin,
            TxnEvent::BlockStart { block: 0 },
            TxnEvent::Commit { restarts: 0 },
        ]);
        assert_eq!(
            t.abandoned,
            WorkUnits {
                blocks: 1,
                read_rounds: 1,
                lock_holds: 0
            }
        );
        assert_eq!(t.discarded_full, t.abandoned);
        assert!(t.by_kind.is_empty(), "abandoned work carries no abort kind");
    }

    #[test]
    fn fatal_path_leftovers_are_abandoned_at_the_next_begin_or_snapshot() {
        let mut l = WorkLedger::new();
        for e in [
            TxnEvent::Begin,
            TxnEvent::BlockStart { block: 0 },
            // Fatal return: no terminal event. Next transaction begins.
            TxnEvent::Begin,
            TxnEvent::BlockStart { block: 0 },
            TxnEvent::Commit { restarts: 0 },
            // And one more left in flight at drain time.
            TxnEvent::Begin,
            TxnEvent::BlockStart { block: 1 },
        ] {
            l.on_event(e);
        }
        let t = l.snapshot();
        t.check().expect("invariant");
        assert_eq!(t.abandoned.blocks, 2, "one per fatal/in-flight attempt");
        assert_eq!(t.committed.blocks, 1);
        assert_eq!(t.executed.blocks, 3);
    }

    #[test]
    fn empty_begin_leaves_no_phantom_work() {
        let t = ledger(&[TxnEvent::Begin, TxnEvent::Begin]);
        assert!(t.is_empty());
        assert!(t.abandoned.is_zero());
    }

    #[test]
    fn merge_accumulates_and_preserves_the_invariant() {
        let a = ledger(&[
            TxnEvent::Begin,
            TxnEvent::BlockStart { block: 0 },
            TxnEvent::Commit { restarts: 0 },
        ]);
        let mut b = ledger(&[
            TxnEvent::Begin,
            TxnEvent::LockHolds {
                block: None,
                holds: 1,
            },
            TxnEvent::FullAbort {
                block: None,
                obj: None,
                kind: AbortKind::LockedOut,
            },
        ]);
        b.merge(&a);
        b.check().expect("merged invariant");
        assert_eq!(b.executed.blocks, 2);
        assert_eq!(b.committed.blocks, 1);
        assert_eq!(b.by_kind[&AbortKind::LockedOut].lock_holds, 1);
    }
}
