//! Live windowed time-series telemetry: a log-bucketed latency histogram
//! with lossless merge and bounded-error quantiles, plus grid-aligned
//! per-window counter cells.
//!
//! Both structures follow the repo's exactness discipline: merging is a
//! plain bucketwise sum (associative, commutative, lossless — the merged
//! histogram is byte-identical to recording every sample into one), and
//! the window grid is anchored at the run origin so per-thread series
//! land on the same cells no matter when each thread recorded. Idle
//! windows are *absent*, never zero-filled: a gap in the grid is
//! information (the system recorded nothing), and zero-filling would make
//! a stalled run indistinguishable from an idle one.

use std::collections::BTreeMap;

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile error
/// at `1/2^SUB_BITS` (≈ 3.1 %). Values below `2^SUB_BITS` are exact.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u32 = 1 << SUB_BITS;

/// Bucket index of a value: identity below [`SUB_COUNT`], then
/// `(octave, sub-bucket)` packed so indices stay contiguous and monotone.
fn bucket_index(v: u64) -> u32 {
    if v < SUB_COUNT as u64 {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let sub = (v >> (msb - SUB_BITS)) as u32 & (SUB_COUNT - 1);
    ((msb - SUB_BITS + 1) << SUB_BITS) + sub
}

/// Inclusive upper bound of a bucket — what quantiles report, so the
/// estimate errs at most one sub-bucket width (≤ `value/32 + 1`) high.
fn bucket_upper(idx: u32) -> u64 {
    if idx < SUB_COUNT {
        return idx as u64;
    }
    let octave = idx >> SUB_BITS;
    let sub = (idx & (SUB_COUNT - 1)) as u64;
    let width = 1u64 << (octave - 1);
    (SUB_COUNT as u64 + sub) * width + width - 1
}

/// A sparse HDR-style histogram of `u64` samples (nanoseconds in every
/// current use). Unbounded only in distinct buckets — ≤ 32 + 59×32 keys
/// over the whole `u64` range — so a per-thread instance stays tiny.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: BTreeMap<u32, u64>,
    total: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` equal samples (merges, imports).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n > 0 {
            *self.buckets.entry(bucket_index(v)).or_insert(0) += n;
            self.total += n;
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Lossless merge: bucketwise sum. `merge(a, b)` equals recording
    /// every sample of both into a fresh histogram, which is what makes
    /// the per-thread → global aggregation exact.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
        self.total += other.total;
    }

    /// The value at quantile `q` (0.0–1.0) as the inclusive upper bound of
    /// the bucket holding the rank-`ceil(q·n)` sample; `None` when empty.
    /// Error bound: at most one sub-bucket width above the true sample,
    /// i.e. ≤ `true/32 + 1`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (&b, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper(b));
            }
        }
        // Unreachable: the loop covers `total` samples and rank ≤ total.
        self.buckets.keys().next_back().map(|&b| bucket_upper(b))
    }

    /// Integer-nanosecond p50/p99/p999 snapshot (zeros when empty).
    pub fn quantile_snapshot(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50).unwrap_or(0),
            self.quantile(0.99).unwrap_or(0),
            self.quantile(0.999).unwrap_or(0),
        )
    }

    /// Sparse `(bucket, count)` pairs in bucket order (export/import).
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&b, &n)| (b, n))
    }

    /// Rebuild from exported `(bucket, count)` pairs. Counts land on the
    /// exact bucket, so export → import is identity.
    pub fn from_buckets(pairs: impl IntoIterator<Item = (u32, u64)>) -> Self {
        let mut h = LogHistogram::new();
        for (b, n) in pairs {
            if n > 0 {
                *h.buckets.entry(b).or_insert(0) += n;
                h.total += n;
            }
        }
        h
    }
}

/// One grid window's counters: outcomes plus the commit-latency histogram
/// of everything that completed inside the window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowCell {
    /// Transactions committed in the window.
    pub commits: u64,
    /// Full restarts absorbed in the window.
    pub full_aborts: u64,
    /// Partial rollbacks absorbed in the window.
    pub partial_aborts: u64,
    /// End-to-end latency of the window's commits, nanoseconds.
    pub latency: LogHistogram,
}

impl WindowCell {
    fn merge(&mut self, other: &WindowCell) {
        self.commits += other.commits;
        self.full_aborts += other.full_aborts;
        self.partial_aborts += other.partial_aborts;
        self.latency.merge(&other.latency);
    }

    fn is_zero(&self) -> bool {
        self.commits == 0
            && self.full_aborts == 0
            && self.partial_aborts == 0
            && self.latency.is_empty()
    }
}

/// Grid-aligned windowed series: events at origin-relative time `at_ns`
/// land in window `at_ns / window_ns`. The grid is a pure function of the
/// timestamp — there is no rotation state to drift, so an idle gap simply
/// leaves its windows absent (compare the `ContentionWindow` regression,
/// which must actively drop stale state on rotation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedSeries {
    window_ns: u64,
    windows: BTreeMap<u64, WindowCell>,
    /// Retention cap in distinct windows; the oldest cell is evicted (and
    /// counted) when a newer one would exceed it.
    capacity: usize,
    evicted: u64,
}

impl WindowedSeries {
    /// Default retention: enough for any scenario the drivers run, small
    /// enough that a runaway clock cannot balloon memory.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A series on a `window_ns`-wide grid (panics on a zero width).
    pub fn new(window_ns: u64) -> Self {
        Self::with_capacity(window_ns, Self::DEFAULT_CAPACITY)
    }

    /// [`WindowedSeries::new`] with an explicit retention cap.
    pub fn with_capacity(window_ns: u64, capacity: usize) -> Self {
        assert!(window_ns > 0, "window width must be positive");
        assert!(capacity > 0, "retention must hold at least one window");
        WindowedSeries {
            window_ns,
            windows: BTreeMap::new(),
            capacity,
            evicted: 0,
        }
    }

    /// Grid width, nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Windows evicted past the retention cap (0 in every healthy run).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    fn cell(&mut self, at_ns: u64) -> &mut WindowCell {
        let idx = at_ns / self.window_ns;
        if !self.windows.contains_key(&idx) && self.windows.len() >= self.capacity {
            let oldest = *self.windows.keys().next().expect("capacity > 0");
            // Never evict forward: a late event older than everything
            // retained is dropped into the oldest cell instead.
            if oldest >= idx {
                return self.windows.get_mut(&oldest).expect("oldest exists");
            }
            self.windows.remove(&oldest);
            self.evicted += 1;
        }
        self.windows.entry(idx).or_default()
    }

    /// Record one commit completing at `at_ns` with the given end-to-end
    /// latency.
    pub fn record_commit(&mut self, at_ns: u64, latency_ns: u64) {
        let cell = self.cell(at_ns);
        cell.commits += 1;
        cell.latency.record(latency_ns);
    }

    /// Record `full` full restarts and `partial` partial rollbacks
    /// absorbed by a transaction that completed at `at_ns`.
    pub fn record_aborts(&mut self, at_ns: u64, full: u64, partial: u64) {
        if full == 0 && partial == 0 {
            return;
        }
        let cell = self.cell(at_ns);
        cell.full_aborts += full;
        cell.partial_aborts += partial;
    }

    /// Lossless merge of another series on the same grid (panics on a
    /// grid mismatch — merging incompatible grids silently would corrupt
    /// every window).
    pub fn merge(&mut self, other: &WindowedSeries) {
        assert_eq!(
            self.window_ns, other.window_ns,
            "cannot merge series on different window grids"
        );
        for (&idx, cell) in &other.windows {
            self.windows.entry(idx).or_default().merge(cell);
        }
        self.evicted += other.evicted;
        while self.windows.len() > self.capacity {
            let oldest = *self.windows.keys().next().expect("non-empty");
            self.windows.remove(&oldest);
            self.evicted += 1;
        }
    }

    /// Non-empty windows in grid order as `(index, cell)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &WindowCell)> + '_ {
        self.windows.iter().map(|(&i, c)| (i, c))
    }

    /// Number of non-empty windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window holds any data.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Commits summed over every retained window.
    pub fn total_commits(&self) -> u64 {
        self.windows.values().map(|c| c.commits).sum()
    }

    /// Insert a fully-built cell at a grid index (import path). Empty
    /// cells are skipped — absence is the canonical encoding of idleness.
    pub fn insert_cell(&mut self, idx: u64, cell: WindowCell) {
        if !cell.is_zero() {
            self.windows.entry(idx).or_default().merge(&cell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_upper_bound_covers() {
        // Every power-of-two boundary and its neighbours, in ascending
        // order: indices never decrease and each bucket's reported upper
        // bound covers the value that landed in it.
        let mut values: Vec<u64> = (0..63u32)
            .flat_map(|s| [(1u64 << s).saturating_sub(1), 1 << s, (1 << s) + 1])
            .collect();
        values.sort_unstable();
        values.dedup();
        let mut prev_idx = 0;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "monotone at {v}");
            prev_idx = idx;
            assert!(bucket_upper(idx) >= v, "upper bound covers {v}");
        }
    }

    #[test]
    fn quantile_reports_bucket_upper_bound() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let p50 = h.quantile(0.5).unwrap();
        let true_p50 = 500_000;
        assert!(p50 >= true_p50);
        assert!(p50 as f64 <= true_p50 as f64 * (1.0 + 1.0 / 32.0) + 1.0);
        let p999 = h.quantile(0.999).unwrap();
        assert!(p999 >= 999_000);
        assert!(h.quantile(0.5) <= h.quantile(0.999), "monotone quantiles");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.quantile_snapshot(), (0, 0, 0));
    }

    #[test]
    fn merge_is_lossless() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [3, 40, 40, 1_000_000, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [7, 40, 5_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all, "merge equals recording everything into one");
    }

    #[test]
    fn bucket_export_round_trips() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 31, 32, 1_000, 123_456_789] {
            h.record(v);
        }
        let rebuilt = LogHistogram::from_buckets(h.iter_buckets());
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn series_grid_is_a_pure_function_of_time() {
        let mut s = WindowedSeries::new(100);
        s.record_commit(10, 5);
        s.record_commit(99, 5);
        s.record_commit(100, 5);
        // Idle gap: windows 2..=41 never materialize.
        s.record_commit(4200, 7);
        let idx: Vec<u64> = s.iter().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1, 42]);
        assert_eq!(s.iter().next().unwrap().1.commits, 2);
        assert_eq!(s.total_commits(), 4);
    }

    #[test]
    fn series_merge_is_lossless_and_grid_checked() {
        let mut a = WindowedSeries::new(100);
        let mut b = WindowedSeries::new(100);
        a.record_commit(50, 10);
        a.record_aborts(50, 1, 2);
        b.record_commit(50, 20);
        b.record_commit(250, 30);
        let mut all = WindowedSeries::new(100);
        all.record_commit(50, 10);
        all.record_aborts(50, 1, 2);
        all.record_commit(50, 20);
        all.record_commit(250, 30);
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    #[should_panic(expected = "different window grids")]
    fn series_merge_rejects_grid_mismatch() {
        let mut a = WindowedSeries::new(100);
        let b = WindowedSeries::new(200);
        a.merge(&b);
    }

    #[test]
    fn retention_evicts_oldest_not_newest() {
        let mut s = WindowedSeries::with_capacity(10, 2);
        s.record_commit(5, 1); // window 0
        s.record_commit(15, 1); // window 1
        s.record_commit(25, 1); // window 2 -> evicts window 0
        let idx: Vec<u64> = s.iter().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![1, 2]);
        assert_eq!(s.evicted(), 1);
        // A straggler older than everything retained folds into the oldest
        // retained cell rather than evicting newer data.
        s.record_commit(3, 1);
        assert_eq!(s.iter().next().unwrap().1.commits, 2);
    }
}
