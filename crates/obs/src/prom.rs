//! A dependency-free Prometheus text-format exporter.
//!
//! This is the scrape surface the ROADMAP's `acn-node` binary will serve:
//! [`report_to_prom`] maps a [`MetricsReport`] onto metric families, and
//! [`render_prom`] writes them in the Prometheus exposition format
//! (`# HELP` / `# TYPE` headers, one sample per line, labels escaped).
//! In keeping with the workspace's codec discipline the format is
//! round-trip-parsed, not eyeballed: [`parse_prom`] reads the exposition
//! text back into the same [`PromMetric`] values, and the figure runner
//! asserts `parse(render(m)) == m` on every export. Sample values are
//! integers — every metric here is a counter or an integer gauge — which
//! is what makes the exact round trip possible at all.

use crate::registry::MetricsReport;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Metric family type, as Prometheus understands it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromType {
    /// Monotone counter (`_total` names).
    Counter,
    /// Point-in-time gauge.
    Gauge,
}

impl PromType {
    fn label(&self) -> &'static str {
        match self {
            PromType::Counter => "counter",
            PromType::Gauge => "gauge",
        }
    }

    fn from_label(s: &str) -> Option<PromType> {
        match s {
            "counter" => Some(PromType::Counter),
            "gauge" => Some(PromType::Gauge),
            _ => None,
        }
    }
}

/// One sample of a metric family: a label set and an integer value.
/// Labels are sorted by name so rendering is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromSample {
    /// `(name, value)` label pairs, sorted by name.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: u64,
}

/// One metric family: name, help text, type, and its samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromMetric {
    /// Metric family name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Help line (shown by Prometheus tooling; escaped on render).
    pub help: String,
    /// Family type.
    pub ty: PromType,
    /// Samples, in insertion order.
    pub samples: Vec<PromSample>,
}

impl PromMetric {
    fn new(name: &str, help: &str, ty: PromType) -> Self {
        PromMetric {
            name: name.to_owned(),
            help: help.to_owned(),
            ty,
            samples: Vec::new(),
        }
    }

    fn sample(&mut self, labels: &[(&str, &str)], value: u64) -> &mut Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        self.samples.push(PromSample { labels, value });
        self
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render metric families in the Prometheus exposition format. Families
/// with no samples are skipped (Prometheus rejects headerless bodies and
/// bodyless headers are noise).
pub fn render_prom(metrics: &[PromMetric]) -> String {
    let mut out = String::new();
    for m in metrics {
        if m.samples.is_empty() {
            continue;
        }
        let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
        let _ = writeln!(out, "# TYPE {} {}", m.name, m.ty.label());
        for s in &m.samples {
            out.push_str(&m.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                }
                out.push('}');
            }
            let _ = writeln!(out, " {}", s.value);
        }
    }
    out
}

fn unescape(s: &str, in_label: bool) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('"') if in_label => out.push('"'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

/// Parse exposition text produced by [`render_prom`] back into metric
/// families; the exact inverse on anything it renders. Rejects malformed
/// lines, unknown types, duplicate family headers and samples appearing
/// before their family's `# TYPE` line.
pub fn parse_prom(input: &str) -> Result<Vec<PromMetric>, String> {
    let mut out: Vec<PromMetric> = Vec::new();
    let mut index: BTreeMap<String, usize> = BTreeMap::new();
    let mut pending_help: Option<(String, String)> = None;
    for (lineno, line) in input.lines().enumerate() {
        let err = |e: String| format!("line {}: {e}", lineno + 1);
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or_else(|| err("HELP without text".into()))?;
            pending_help = Some((name.to_owned(), unescape(help, false).map_err(err)?));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest
                .split_once(' ')
                .ok_or_else(|| err("TYPE without type".into()))?;
            let ty = PromType::from_label(ty)
                .ok_or_else(|| err(format!("unknown metric type {ty:?}")))?;
            if index.contains_key(name) {
                return Err(err(format!("duplicate family {name:?}")));
            }
            let help = match pending_help.take() {
                Some((h_name, help)) if h_name == name => help,
                _ => return Err(err(format!("TYPE for {name:?} without matching HELP"))),
            };
            index.insert(name.to_owned(), out.len());
            out.push(PromMetric {
                name: name.to_owned(),
                help,
                ty,
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // Comments are legal exposition content.
        }
        // A sample line: name[{labels}] value
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("sample without value".into()))?;
        let value: u64 = value
            .parse()
            .map_err(|e| err(format!("bad sample value {value:?}: {e}")))?;
        let (name, labels) = match head.split_once('{') {
            None => (head, Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set".into()))?;
                let mut labels = Vec::new();
                let mut remaining = body;
                while !remaining.is_empty() {
                    let (k, rest) = remaining
                        .split_once("=\"")
                        .ok_or_else(|| err(format!("bad label in {body:?}")))?;
                    // Find the closing unescaped quote.
                    let mut end = None;
                    let mut prev_backslashes = 0usize;
                    for (i, c) in rest.char_indices() {
                        match c {
                            '"' if prev_backslashes.is_multiple_of(2) => {
                                end = Some(i);
                                break;
                            }
                            '\\' => prev_backslashes += 1,
                            _ => prev_backslashes = 0,
                        }
                    }
                    let end = end.ok_or_else(|| err("unterminated label value".into()))?;
                    labels.push((k.to_owned(), unescape(&rest[..end], true).map_err(err)?));
                    remaining = rest[end + 1..]
                        .strip_prefix(',')
                        .unwrap_or(&rest[end + 1..]);
                }
                (name, labels)
            }
        };
        let &i = index
            .get(name)
            .ok_or_else(|| err(format!("sample for undeclared family {name:?}")))?;
        out[i].samples.push(PromSample { labels, value });
    }
    if pending_help.is_some() {
        return Err("trailing HELP without TYPE".into());
    }
    Ok(out)
}

/// Map a [`MetricsReport`] onto Prometheus metric families. Every value is
/// an integer counter/gauge; classes, kinds and scopes become labels.
pub fn report_to_prom(report: &MetricsReport) -> Vec<PromMetric> {
    let mut out = Vec::new();

    let mut info = PromMetric::new(
        "acn_run_info",
        "Run description; value is always 1, the description rides the labels",
        PromType::Gauge,
    );
    if !report.meta.is_empty() {
        let labels: Vec<(&str, &str)> = report
            .meta
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        info.sample(&labels, 1);
    }
    out.push(info);

    let mut txns = PromMetric::new(
        "acn_txns_total",
        "Transaction outcomes by the executor",
        PromType::Counter,
    );
    txns.sample(&[("outcome", "commit")], report.exec.commits)
        .sample(&[("outcome", "full_abort")], report.exec.full_aborts)
        .sample(&[("outcome", "partial_abort")], report.exec.partial_aborts)
        .sample(&[("outcome", "locked_abort")], report.exec.locked_aborts)
        .sample(
            &[("outcome", "unavailable_retry")],
            report.exec.unavailable_retries,
        );
    out.push(txns);

    let mut lat = PromMetric::new(
        "acn_commit_latency_ns",
        "Commit-latency percentiles, nanoseconds",
        PromType::Gauge,
    );
    if report.latency.samples > 0 {
        lat.sample(&[("quantile", "0.5")], report.latency.p50_nanos)
            .sample(&[("quantile", "0.95")], report.latency.p95_nanos)
            .sample(&[("quantile", "0.99")], report.latency.p99_nanos);
    }
    out.push(lat);

    let mut aborts = PromMetric::new(
        "acn_aborts_total",
        "Abort attribution by kind, blamed class and block",
        PromType::Counter,
    );
    for r in &report.aborts {
        let block = r.block.map(|b| b.to_string());
        aborts.sample(
            &[
                ("kind", r.kind.label()),
                ("class", r.class.as_deref().unwrap_or("")),
                ("block", block.as_deref().unwrap_or("-1")),
            ],
            r.count,
        );
    }
    out.push(aborts);

    let mut net = PromMetric::new(
        "acn_net_messages_total",
        "Simulated-network message counters",
        PromType::Counter,
    );
    net.sample(&[("event", "sent")], report.net.sent)
        .sample(&[("event", "delivered")], report.net.delivered)
        .sample(&[("event", "dropped_chaos")], report.net.dropped_chaos)
        .sample(&[("event", "dropped_failed")], report.net.dropped_failed);
    out.push(net);

    let mut wasted = PromMetric::new(
        "acn_work_units_total",
        "Wasted-work ledger: work units by outcome scope and unit",
        PromType::Counter,
    );
    if let Some(w) = &report.wasted {
        for (scope, u) in [
            ("executed", w.executed),
            ("committed", w.committed),
            ("discarded_full", w.discarded_full),
            ("discarded_partial", w.discarded_partial),
            ("abandoned", w.abandoned),
        ] {
            wasted
                .sample(&[("scope", scope), ("unit", "blocks")], u.blocks)
                .sample(&[("scope", scope), ("unit", "read_rounds")], u.read_rounds)
                .sample(&[("scope", scope), ("unit", "lock_holds")], u.lock_holds);
        }
    }
    out.push(wasted);

    let mut wasted_kind = PromMetric::new(
        "acn_work_discarded_total",
        "Discarded work units by abort kind and unit",
        PromType::Counter,
    );
    if let Some(w) = &report.wasted {
        for (k, u) in &w.by_kind {
            wasted_kind
                .sample(&[("kind", k.label()), ("unit", "blocks")], u.blocks)
                .sample(
                    &[("kind", k.label()), ("unit", "read_rounds")],
                    u.read_rounds,
                )
                .sample(&[("kind", k.label()), ("unit", "lock_holds")], u.lock_holds);
        }
    }
    out.push(wasted_kind);

    let mut recov = PromMetric::new(
        "acn_recovery_events_total",
        "Replica recovery and durability counters",
        PromType::Counter,
    );
    if let Some(r) = &report.recovery {
        recov
            .sample(&[("event", "amnesia_wipes")], r.amnesia_wipes)
            .sample(&[("event", "syncs_completed")], r.syncs_completed)
            .sample(&[("event", "sync_vote_refusals")], r.sync_vote_refusals)
            .sample(&[("event", "sync_read_refusals")], r.sync_read_refusals)
            .sample(&[("event", "restart_replays")], r.restart_replays)
            .sample(&[("event", "wal_io_errors")], r.wal_io_errors)
            .sample(&[("event", "wal_sync_batches")], r.wal_sync_batches)
            .sample(&[("event", "wal_records_synced")], r.wal_records_synced);
    }
    out.push(recov);

    let mut series = PromMetric::new(
        "acn_window_commits",
        "Per-window commit counts of the live time-series",
        PromType::Gauge,
    );
    let mut series_p99 = PromMetric::new(
        "acn_window_p99_ns",
        "Per-window p99 commit latency, nanoseconds",
        PromType::Gauge,
    );
    for row in &report.series {
        let w = row.window.to_string();
        series.sample(&[("window", w.as_str())], row.commits);
        if row.samples > 0 {
            series_p99.sample(&[("window", w.as_str())], row.p99_ns);
        }
    }
    out.push(series);
    out.push(series_p99);

    let mut flights = PromMetric::new(
        "acn_slo_trips_total",
        "Anomaly triggers tripped, by rule",
        PromType::Counter,
    );
    let mut by_rule: BTreeMap<&str, u64> = BTreeMap::new();
    for f in &report.flights {
        *by_rule.entry(f.trigger.as_str()).or_insert(0) += 1;
    }
    for (rule, n) in by_rule {
        flights.sample(&[("rule", rule)], n);
    }
    out.push(flights);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> Vec<PromMetric> {
        let mut a = PromMetric::new("acn_txns_total", "Transaction outcomes", PromType::Counter);
        a.sample(&[("outcome", "commit")], 120)
            .sample(&[("outcome", "full_abort")], 7);
        let mut b = PromMetric::new(
            "acn_commit_latency_ns",
            "Latency with \"quotes\" and a \\ slash\nsecond line",
            PromType::Gauge,
        );
        b.sample(&[("quantile", "0.99"), ("class", "odd\"label\\value")], 42)
            .sample(&[], 7);
        vec![a, b]
    }

    #[test]
    fn exposition_round_trips_exactly() {
        let metrics = sample_metrics();
        let text = render_prom(&metrics);
        let back = parse_prom(&text).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn empty_families_are_skipped() {
        let metrics = vec![PromMetric::new(
            "acn_nothing",
            "no samples",
            PromType::Gauge,
        )];
        assert_eq!(render_prom(&metrics), "");
        assert!(parse_prom("").unwrap().is_empty());
    }

    #[test]
    fn malformed_expositions_are_rejected() {
        for bad in [
            "acn_orphan_sample 1",
            "# TYPE acn_x gauge\nacn_x 1",
            "# HELP acn_x help\n# TYPE acn_x nonsense\nacn_x 1",
            "# HELP acn_x help\n# TYPE acn_x gauge\nacn_x notanumber",
            "# HELP acn_x help\n# TYPE acn_x gauge\nacn_x{l=\"unterminated} 1",
            "# HELP acn_x help\n# TYPE acn_x gauge\n# HELP acn_x help\n# TYPE acn_x gauge\n",
            "# HELP acn_dangling help",
        ] {
            assert!(parse_prom(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn report_mapping_round_trips() {
        // An all-defaults report still renders (and round-trips) the
        // families that always carry samples.
        let report = MetricsReport::default();
        let metrics = report_to_prom(&report);
        let text = render_prom(&metrics);
        let back = parse_prom(&text).unwrap();
        let rendered: Vec<&PromMetric> = metrics.iter().filter(|m| !m.samples.is_empty()).collect();
        assert_eq!(back.len(), rendered.len());
        for (b, m) in back.iter().zip(rendered) {
            assert_eq!(b, m);
        }
    }
}
