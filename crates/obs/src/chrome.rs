//! Chrome-trace / Perfetto JSON export of causal spans.
//!
//! The output is the classic Trace Event Format JSON array: one complete
//! `"ph":"X"` event per [`Span`] (plus `"ph":"M"` metadata naming the
//! process and per-node tracks, and one completeness record per span
//! ring), loadable in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! Chrome's `ts`/`dur` are microseconds, which would lose the nanosecond
//! precision the critical-path invariant is checked at — so every span
//! event also carries the exact integer fields (`start_ns`, `dur_ns`, ids,
//! flags), and [`parse_chrome_trace`] rebuilds [`Span`]s from those for an
//! exact write → parse → compare round trip. Viewers ignore the extra
//! fields.

use crate::json::{parse_line, req_str, req_u64, JsonObj, JsonVal};
use crate::registry::ThreadTraceRow;
use crate::span::{Span, SpanKind};
use std::fmt::Write as _;

/// Serialise spans and per-ring completeness into a Chrome-trace JSON
/// array (strict JSON: no trailing commas, so Perfetto accepts it too).
pub fn write_chrome_trace(spans: &[Span], threads: &[ThreadTraceRow]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(spans.len() + threads.len() + 8);
    events.push(
        r#"{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"qr-acn"}}"#.to_owned(),
    );
    let mut nodes: Vec<u32> = spans.iter().map(|s| s.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for node in nodes {
        let mut line = String::new();
        let _ = write!(
            line,
            r#"{{"ph":"M","pid":1,"tid":{node},"name":"thread_name","args":{{"name":"node {node}"}}}}"#
        );
        events.push(line);
    }
    for t in threads {
        let mut o = JsonObj::new("completeness");
        o.u64_field("thread", t.thread)
            .u64_field("recorded", t.recorded)
            .u64_field("dropped", t.dropped)
            .u64_field("capacity", t.capacity)
            .u64_field("kept_pct", t.kept_pct());
        events.push(o.finish());
    }
    for s in spans {
        let mut o = JsonObj::new("span");
        o.str_field("name", s.kind.label())
            .str_field("cat", "acn")
            .str_field("ph", "X")
            .u64_field("pid", 1)
            .u64_field("tid", u64::from(s.node))
            .u64_field("ts", s.start_ns / 1_000)
            .u64_field("dur", (s.dur_ns / 1_000).max(1))
            .u64_field("id", s.id)
            .u64_field("parent", s.parent)
            .u64_field("trace", s.trace)
            .u64_field("class", u64::from(s.class))
            .i64_field("block", i64::from(s.block))
            .u64_field("start_ns", s.start_ns)
            .u64_field("dur_ns", s.dur_ns)
            .u64_field("flags", u64::from(s.flags));
        events.push(o.finish());
    }
    let mut out = String::with_capacity(events.iter().map(|e| e.len() + 2).sum::<usize>() + 4);
    out.push_str("[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]\n");
    out
}

/// Parse a trace written by [`write_chrome_trace`] back into its spans and
/// completeness rows; metadata events are skipped, malformed span or
/// completeness lines are hard errors.
pub fn parse_chrome_trace(input: &str) -> Result<(Vec<Span>, Vec<ThreadTraceRow>), String> {
    let mut spans = Vec::new();
    let mut threads = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let mut line = raw.trim();
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        if let Some(stripped) = line.strip_suffix(',') {
            line = stripped.trim_end();
        }
        let is_span = line.starts_with(r#"{"type":"span""#);
        let is_completeness = line.starts_with(r#"{"type":"completeness""#);
        if !is_span && !is_completeness {
            continue; // metadata or viewer-added content
        }
        let map = parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ctx = |e: String| format!("line {}: {e}", lineno + 1);
        if is_completeness {
            threads.push(ThreadTraceRow {
                thread: req_u64(&map, "thread").map_err(ctx)?,
                recorded: req_u64(&map, "recorded").map_err(ctx)?,
                dropped: req_u64(&map, "dropped").map_err(ctx)?,
                capacity: req_u64(&map, "capacity").map_err(ctx)?,
            });
            continue;
        }
        let kind_label = req_str(&map, "name").map_err(ctx)?;
        let kind = SpanKind::from_label(&kind_label)
            .ok_or_else(|| ctx(format!("unknown span kind {kind_label:?}")))?;
        let block = match map.get("block") {
            Some(JsonVal::Int(n)) if i32::try_from(*n).is_ok() => *n as i32,
            other => return Err(ctx(format!("bad block field {other:?}"))),
        };
        spans.push(Span {
            id: req_u64(&map, "id").map_err(ctx)?,
            parent: req_u64(&map, "parent").map_err(ctx)?,
            trace: req_u64(&map, "trace").map_err(ctx)?,
            kind,
            class: u16::try_from(req_u64(&map, "class").map_err(ctx)?)
                .map_err(|e| ctx(format!("class out of range: {e}")))?,
            block,
            node: u32::try_from(req_u64(&map, "tid").map_err(ctx)?)
                .map_err(|e| ctx(format!("tid out of range: {e}")))?,
            start_ns: req_u64(&map, "start_ns").map_err(ctx)?,
            dur_ns: req_u64(&map, "dur_ns").map_err(ctx)?,
            flags: u32::try_from(req_u64(&map, "flags").map_err(ctx)?)
                .map_err(|e| ctx(format!("flags out of range: {e}")))?,
        });
    }
    Ok((spans, threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{FLAG_COMMITTED, FLAG_ROLLED_BACK};

    fn sample() -> (Vec<Span>, Vec<ThreadTraceRow>) {
        let spans = vec![
            Span {
                id: 1 << 40 | 1,
                parent: 0,
                trace: 1 << 40 | 1,
                kind: SpanKind::Txn,
                class: 2,
                block: -1,
                node: 10,
                start_ns: 1_234,
                dur_ns: 987_654,
                flags: FLAG_COMMITTED,
            },
            Span {
                id: 1 << 40 | 3,
                parent: 1 << 40 | 2,
                trace: 1 << 40 | 1,
                kind: SpanKind::ReadRound,
                class: 0,
                block: 1,
                node: 10,
                start_ns: 2_000,
                dur_ns: 500, // sub-microsecond: only exact via dur_ns
                flags: 0,
            },
            Span {
                id: (1 << 62) | 7,
                parent: 1 << 40 | 3,
                trace: 1 << 40 | 1,
                kind: SpanKind::ServerQueue,
                class: 0,
                block: -1,
                node: 3,
                start_ns: 2_100,
                dur_ns: 50,
                flags: FLAG_ROLLED_BACK,
            },
        ];
        let threads = vec![
            ThreadTraceRow {
                thread: 0,
                recorded: 100,
                dropped: 25,
                capacity: 75,
            },
            ThreadTraceRow {
                thread: crate::registry::SERVER_TRACE_THREAD,
                recorded: 7,
                dropped: 0,
                capacity: 1024,
            },
        ];
        (spans, threads)
    }

    #[test]
    fn round_trip_is_exact() {
        let (spans, threads) = sample();
        let text = write_chrome_trace(&spans, &threads);
        let (back_spans, back_threads) = parse_chrome_trace(&text).unwrap();
        assert_eq!(back_spans, spans, "spans survive export byte-exactly");
        assert_eq!(back_threads, threads);
    }

    #[test]
    fn output_is_a_strict_json_array() {
        let (spans, threads) = sample();
        let text = write_chrome_trace(&spans, &threads);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.first(), Some(&"["));
        assert_eq!(lines.last(), Some(&"]"));
        // Every event line but the last must end with a comma, and the
        // last must not — Perfetto rejects trailing commas.
        let events = &lines[1..lines.len() - 1];
        for e in &events[..events.len() - 1] {
            assert!(e.ends_with(','), "missing separator: {e}");
        }
        assert!(!events.last().unwrap().ends_with(','));
        // Metadata names the process and every node track.
        assert!(text.contains(r#""name":"process_name""#));
        assert!(text.contains(r#""name":"node 10""#));
        assert!(text.contains(r#""name":"node 3""#));
    }

    #[test]
    fn empty_trace_still_round_trips() {
        let text = write_chrome_trace(&[], &[]);
        let (spans, threads) = parse_chrome_trace(&text).unwrap();
        assert!(spans.is_empty());
        assert!(threads.is_empty());
    }

    #[test]
    fn unknown_span_kind_is_a_hard_error() {
        let bad = "[\n{\"type\":\"span\",\"name\":\"warp_drive\"}\n]\n";
        assert!(parse_chrome_trace(bad)
            .unwrap_err()
            .contains("unknown span kind"));
    }
}
