//! A minimal JSON-lines writer and flat-object parser.
//!
//! The workspace carries no serialisation dependency, and the export
//! format is deliberately flat — one object per line, values restricted to
//! strings and integers — so a ~150-line hand-rolled codec covers it. The
//! parser exists so tests (and downstream tooling) can prove
//! `parse(to_json_lines(report)) == report` instead of eyeballing output.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed flat JSON value: this format only ever carries strings and
/// (signed) integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonVal {
    /// A string value.
    Str(String),
    /// An integer value (all counters fit in `i64` in practice).
    Int(i64),
}

impl JsonVal {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            JsonVal::Int(_) => None,
        }
    }

    /// The integer as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The raw integer, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonVal::Int(n) => Some(*n),
            JsonVal::Str(_) => None,
        }
    }
}

/// Incremental writer for one flat JSON object (one export line).
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Start an object with its `type` discriminator.
    pub fn new(ty: &str) -> Self {
        let mut o = JsonObj::default();
        o.buf.push('{');
        o.str_field("type", ty);
        o
    }

    fn sep(&mut self) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
    }

    /// Append a string field.
    pub fn str_field(&mut self, key: &str, val: &str) -> &mut Self {
        self.sep();
        push_json_string(&mut self.buf, key);
        self.buf.push(':');
        push_json_string(&mut self.buf, val);
        self
    }

    /// Append an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, val: u64) -> &mut Self {
        self.sep();
        push_json_string(&mut self.buf, key);
        let _ = write!(self.buf, ":{val}");
        self
    }

    /// Append a signed integer field.
    pub fn i64_field(&mut self, key: &str, val: i64) -> &mut Self {
        self.sep();
        push_json_string(&mut self.buf, key);
        let _ = write!(self.buf, ":{val}");
        self
    }

    /// Close the object and return the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn push_json_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Parse one flat JSON object line into a key → value map.
///
/// Accepts exactly what [`JsonObj`] emits (plus insignificant whitespace):
/// one level of nesting, string and integer values only. Returns an error
/// string naming the first offence — good enough for test assertions and
/// load-time validation.
pub fn parse_line(line: &str) -> Result<BTreeMap<String, JsonVal>, String> {
    let mut chars = line.char_indices().peekable();
    let mut out = BTreeMap::new();

    let skip_ws = |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>| {
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
    };

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected '\"', got {other:?}")),
        }
        let mut s = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(s),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => s.push('"'),
                    Some((_, '\\')) => s.push('\\'),
                    Some((_, 'n')) => s.push('\n'),
                    Some((_, 'r')) => s.push('\r'),
                    Some((_, 't')) => s.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16 + h.to_digit(16).ok_or("bad hex in \\u escape")?;
                        }
                        s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, c)) => s.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        other => return Err(format!("expected '{{', got {other:?}")),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
        return Ok(out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            other => return Err(format!("expected ':', got {other:?}")),
        }
        skip_ws(&mut chars);
        let val = match chars.peek() {
            Some((_, '"')) => JsonVal::Str(parse_string(&mut chars)?),
            Some((_, c)) if *c == '-' || c.is_ascii_digit() => {
                let mut num = String::new();
                if matches!(chars.peek(), Some((_, '-'))) {
                    num.push('-');
                    chars.next();
                }
                while matches!(chars.peek(), Some((_, c)) if c.is_ascii_digit()) {
                    num.push(chars.next().unwrap().1);
                }
                JsonVal::Int(
                    num.parse()
                        .map_err(|e| format!("bad integer {num:?}: {e}"))?,
                )
            }
            other => return Err(format!("expected value, got {other:?}")),
        };
        out.insert(key, val);
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some((i, c)) = chars.next() {
        return Err(format!("trailing input at byte {i}: {c:?}"));
    }
    Ok(out)
}

/// Fetch a required string field from a parsed line.
pub fn req_str(map: &BTreeMap<String, JsonVal>, key: &str) -> Result<String, String> {
    map.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// Fetch a required unsigned-integer field from a parsed line.
pub fn req_u64(map: &BTreeMap<String, JsonVal>, key: &str) -> Result<u64, String> {
    map.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("missing u64 field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_parses_back() {
        let mut o = JsonObj::new("abort");
        o.str_field("class", "Branch")
            .i64_field("block", -1)
            .u64_field("count", 42);
        let line = o.finish();
        assert_eq!(
            line,
            r#"{"type":"abort","class":"Branch","block":-1,"count":42}"#
        );
        let map = parse_line(&line).unwrap();
        assert_eq!(req_str(&map, "type").unwrap(), "abort");
        assert_eq!(map["block"].as_i64(), Some(-1));
        assert_eq!(req_u64(&map, "count").unwrap(), 42);
        assert_eq!(map["block"].as_u64(), None, "negative is not a u64");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let mut o = JsonObj::new("meta");
        o.str_field("key", "quote\" slash\\ nl\n tab\t ctl\u{1}");
        let line = o.finish();
        let map = parse_line(&line).unwrap();
        assert_eq!(
            req_str(&map, "key").unwrap(),
            "quote\" slash\\ nl\n tab\t ctl\u{1}"
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "{\"a\":1} extra",
            "{\"a\":\"unterminated}",
            "{\"a\":12x}",
        ] {
            assert!(parse_line(bad).is_err(), "accepted {bad:?}");
        }
        assert!(parse_line("  { }  ").unwrap().is_empty());
    }
}
