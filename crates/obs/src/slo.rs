//! Declarative SLO gauges and the anomaly-triggered flight recorder.
//!
//! An [`SloPolicy`] names the budgets a run is supposed to stay inside —
//! tail latency, abort-storm rate, WAL-degraded commits, sync-refusal
//! spikes. Evaluating the policy against a run's merged telemetry yields
//! zero or more tripped [`SloTrigger`]s; each tripped evaluation can then
//! dump the retained span rings through the existing Chrome exporter as a
//! **flight-recorder artifact**, and every trigger lands in the metrics
//! report as a [`FlightRecord`] row naming the trigger, the measured value
//! vs its budget, and the artifact path. The artifact is a valid Chrome
//! trace — [`crate::parse_chrome_trace`] round-trips it — so "what was the
//! system doing when the SLO broke" is one `chrome://tracing` load away.
//!
//! Values and budgets are plain integers in each rule's natural unit —
//! nanoseconds for latency, a ×1000 milli-rate for the storm rule, raw
//! counts for refusals — so the JSON-lines rows round-trip exactly like
//! every other export in the workspace.

use crate::chrome::write_chrome_trace;
use crate::registry::ThreadTraceRow;
use crate::span::Span;
use std::path::{Path, PathBuf};

/// One declarative SLO rule set. `None` disables a rule; the default
/// policy has every rule disabled, so opting in is explicit per scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SloPolicy {
    /// Trip when p99 commit latency exceeds this many nanoseconds.
    pub p99_budget_ns: Option<u64>,
    /// Trip when aborts-per-commit (×1000) exceeds this level — an
    /// abort storm. E.g. `2_000` trips past two aborts per commit.
    pub abort_storm_milli: Option<u64>,
    /// Trip when more than this many commits were refused because a
    /// quorum member's WAL could not make them durable (`WalRefused`
    /// aborts) — the storage-degraded mode of PR 9.
    pub wal_refusals: Option<u64>,
    /// Trip when more than this many rounds were refused by replicas
    /// still catching up after a crash (`sync_vote_refusals +
    /// sync_read_refusals`) — a recovery back-pressure spike.
    pub sync_refusals: Option<u64>,
}

impl SloPolicy {
    /// A policy with every rule enabled at the given budgets — the shape
    /// the figure runner uses.
    pub fn strict(
        p99_budget_ns: u64,
        abort_storm_milli: u64,
        wal_refusals: u64,
        sync_refusals: u64,
    ) -> Self {
        SloPolicy {
            p99_budget_ns: Some(p99_budget_ns),
            abort_storm_milli: Some(abort_storm_milli),
            wal_refusals: Some(wal_refusals),
            sync_refusals: Some(sync_refusals),
        }
    }

    /// True when no rule is enabled (evaluation is a no-op).
    pub fn is_disabled(&self) -> bool {
        *self == SloPolicy::default()
    }

    /// Evaluate every enabled rule against a run's merged telemetry.
    /// Returns the tripped triggers, in rule order; an empty vector means
    /// the run stayed inside every budget.
    pub fn evaluate(&self, inputs: &SloInputs) -> Vec<SloTrigger> {
        let mut tripped = Vec::new();
        if let Some(budget) = self.p99_budget_ns {
            if inputs.p99_ns > budget {
                tripped.push(SloTrigger {
                    rule: SloRule::P99Latency,
                    value_milli: inputs.p99_ns,
                    budget_milli: budget,
                });
            }
        }
        if let Some(budget) = self.abort_storm_milli {
            // Integer milli-rate; a run with zero commits and any aborts
            // is the worst storm there is, so saturate rather than divide.
            let rate_milli = inputs
                .aborts
                .saturating_mul(1000)
                .checked_div(inputs.commits)
                .unwrap_or(if inputs.aborts == 0 { 0 } else { u64::MAX });
            if rate_milli > budget {
                tripped.push(SloTrigger {
                    rule: SloRule::AbortStorm,
                    value_milli: rate_milli,
                    budget_milli: budget,
                });
            }
        }
        if let Some(budget) = self.wal_refusals {
            if inputs.wal_refusals > budget {
                tripped.push(SloTrigger {
                    rule: SloRule::WalDegraded,
                    value_milli: inputs.wal_refusals,
                    budget_milli: budget,
                });
            }
        }
        if let Some(budget) = self.sync_refusals {
            if inputs.sync_refusals > budget {
                tripped.push(SloTrigger {
                    rule: SloRule::SyncRefusalSpike,
                    value_milli: inputs.sync_refusals,
                    budget_milli: budget,
                });
            }
        }
        tripped
    }
}

/// The telemetry a policy evaluation reads — all plain integers so callers
/// assemble it from whatever layer they own without import cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloInputs {
    /// p99 commit latency, nanoseconds.
    pub p99_ns: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborts of every kind (full + partial + locked).
    pub aborts: u64,
    /// `WalRefused` aborts — commits bounced by non-durable WALs.
    pub wal_refusals: u64,
    /// Rounds refused by still-syncing replicas (votes + reads).
    pub sync_refusals: u64,
}

/// Which rule tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloRule {
    /// p99 commit latency exceeded its budget.
    P99Latency,
    /// Aborts-per-commit exceeded the storm level.
    AbortStorm,
    /// `WalRefused` aborts exceeded their allowance (storage degraded).
    WalDegraded,
    /// Sync refusals exceeded their allowance (recovery back-pressure).
    SyncRefusalSpike,
}

impl SloRule {
    /// Stable label used in [`FlightRecord`] rows and artifact names.
    pub fn label(&self) -> &'static str {
        match self {
            SloRule::P99Latency => "p99_latency",
            SloRule::AbortStorm => "abort_storm",
            SloRule::WalDegraded => "wal_degraded",
            SloRule::SyncRefusalSpike => "sync_refusal_spike",
        }
    }
}

/// One tripped rule: the measured value against the budget it broke.
/// Units depend on the rule — nanoseconds for [`SloRule::P99Latency`],
/// milli-rate for [`SloRule::AbortStorm`], plain counts for the refusal
/// rules — and are named `_milli` for the export row they become.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTrigger {
    /// The rule that tripped.
    pub rule: SloRule,
    /// Measured value, in the rule's unit.
    pub value_milli: u64,
    /// The budget it exceeded, same unit.
    pub budget_milli: u64,
}

/// One flight-recorder row in the metrics report: which trigger fired,
/// what it measured against its budget, and where the span dump landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Tripped rule label ([`SloRule::label`]).
    pub trigger: String,
    /// Measured value, in the rule's unit.
    pub value_milli: u64,
    /// The budget it exceeded, same unit.
    pub budget_milli: u64,
    /// Path of the Chrome-trace artifact holding the span dump.
    pub artifact: String,
}

/// Dump the retained spans as one Chrome-trace flight-recorder artifact
/// under `dir` and return a [`FlightRecord`] row per tripped trigger, all
/// naming the shared artifact. `label` distinguishes concurrent dumps
/// (figure name, seed). No triggers → no artifact, no rows, no I/O.
pub fn record_flight(
    dir: &Path,
    label: &str,
    triggers: &[SloTrigger],
    spans: &[Span],
    threads: &[ThreadTraceRow],
) -> std::io::Result<Vec<FlightRecord>> {
    if triggers.is_empty() {
        return Ok(Vec::new());
    }
    std::fs::create_dir_all(dir)?;
    let path: PathBuf = dir.join(format!("flight-{label}.json"));
    std::fs::write(&path, write_chrome_trace(spans, threads))?;
    let artifact = path.to_string_lossy().into_owned();
    Ok(triggers
        .iter()
        .map(|t| FlightRecord {
            trigger: t.rule.label().to_owned(),
            value_milli: t.value_milli,
            budget_milli: t.budget_milli,
            artifact: artifact.clone(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::parse_chrome_trace;
    use crate::span::{SpanKind, FLAG_COMMITTED};

    fn busy_inputs() -> SloInputs {
        SloInputs {
            p99_ns: 5_000_000,
            commits: 100,
            aborts: 350,
            wal_refusals: 12,
            sync_refusals: 3,
        }
    }

    #[test]
    fn disabled_policy_never_trips() {
        assert!(SloPolicy::default().is_disabled());
        assert!(SloPolicy::default().evaluate(&busy_inputs()).is_empty());
    }

    #[test]
    fn each_rule_trips_on_its_own_budget() {
        let policy = SloPolicy::strict(1_000_000, 2_000, 5, 100);
        let tripped = policy.evaluate(&busy_inputs());
        let rules: Vec<SloRule> = tripped.iter().map(|t| t.rule).collect();
        assert_eq!(
            rules,
            vec![
                SloRule::P99Latency,
                SloRule::AbortStorm,
                SloRule::WalDegraded
            ]
        );
        assert_eq!(tripped[0].value_milli, 5_000_000);
        assert_eq!(tripped[0].budget_milli, 1_000_000);
        assert_eq!(tripped[1].value_milli, 3_500, "350 aborts / 100 commits");
    }

    #[test]
    fn healthy_runs_stay_inside_every_budget() {
        let policy = SloPolicy::strict(10_000_000, 10_000, 100, 100);
        assert!(policy.evaluate(&busy_inputs()).is_empty());
    }

    #[test]
    fn zero_commit_storms_saturate_instead_of_dividing() {
        let policy = SloPolicy {
            abort_storm_milli: Some(1_000),
            ..Default::default()
        };
        let quiet = SloInputs::default();
        assert!(policy.evaluate(&quiet).is_empty(), "no traffic, no storm");
        let stormy = SloInputs {
            aborts: 7,
            ..Default::default()
        };
        let tripped = policy.evaluate(&stormy);
        assert_eq!(tripped.len(), 1);
        assert_eq!(tripped[0].value_milli, u64::MAX);
    }

    #[test]
    fn flight_record_dumps_a_valid_chrome_trace() {
        let dir = std::env::temp_dir().join(format!(
            "acn-slo-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let spans = vec![Span {
            id: 9,
            parent: 0,
            trace: 9,
            kind: SpanKind::Txn,
            class: 1,
            block: -1,
            node: 4,
            start_ns: 100,
            dur_ns: 2_000,
            flags: FLAG_COMMITTED,
        }];
        let threads = vec![ThreadTraceRow {
            thread: 0,
            recorded: 1,
            dropped: 0,
            capacity: 16,
        }];
        let triggers = [SloTrigger {
            rule: SloRule::AbortStorm,
            value_milli: 9_000,
            budget_milli: 2_000,
        }];
        let records = record_flight(&dir, "unit", &triggers, &spans, &threads).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].trigger, "abort_storm");
        let text = std::fs::read_to_string(&records[0].artifact).unwrap();
        let (back_spans, back_threads) = parse_chrome_trace(&text).unwrap();
        assert_eq!(back_spans, spans, "artifact round-trips exactly");
        assert_eq!(back_threads, threads);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_triggers_means_no_artifact() {
        let dir = std::env::temp_dir().join("acn-slo-test-should-not-exist");
        let records = record_flight(&dir, "none", &[], &[], &[]).unwrap();
        assert!(records.is_empty());
        assert!(!dir.exists(), "nothing tripped, nothing written");
    }
}
