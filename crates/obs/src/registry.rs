//! The unified metrics registry: one place where a run's executor,
//! checkpoint, network, latency, contention, and attribution numbers meet.
//!
//! `acn-obs` sits below every other crate, so it cannot import their stats
//! types; instead it defines neutral counter mirrors and the upper layers
//! convert into them when they publish a snapshot. The payoff is a single
//! [`MetricsReport`] that serialises to JSON-lines and parses back to an
//! equal value, so exports are verifiable by round-trip rather than by
//! inspection.

use crate::attribution::{AbortSite, AbortTable};
use crate::event::AbortKind;
use crate::json::{parse_line, req_str, req_u64, JsonObj, JsonVal};
use crate::slo::FlightRecord;
use crate::timeseries::WindowedSeries;
use crate::trace::TraceSummary;
use crate::wasted::{WorkTotals, WorkUnits};
use std::collections::BTreeMap;

/// Version of the JSON-lines schema this build writes. Parsers accept the
/// current version plus version-1 exports (which predate the field); any
/// other value is rejected loudly rather than misparsed silently.
pub const SCHEMA_VERSION: u64 = 2;

/// Mirror of the nesting executor's `ExecStats` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Committed transactions.
    pub commits: u64,
    /// Full restarts (whole transaction re-ran).
    pub full_aborts: u64,
    /// Child-scope rollbacks (one Block re-ran).
    pub partial_aborts: u64,
    /// Retries after reads kept hitting locked objects.
    pub locked_aborts: u64,
    /// Quorum-unavailable rounds absorbed by the retry policy.
    pub unavailable_retries: u64,
}

impl ExecCounters {
    /// Every abort the executor attributed: the invariant checked by the
    /// smoke test is `AbortTable::total_of(EXECUTOR_KINDS) == this`.
    pub fn total_aborts(&self) -> u64 {
        self.full_aborts + self.partial_aborts + self.locked_aborts
    }
}

/// Mirror of the checkpoint runner's `CheckpointStats` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointCounters {
    /// Committed transactions.
    pub commits: u64,
    /// Rollbacks to an intermediate checkpoint.
    pub rollbacks: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Restarts from the very beginning.
    pub full_restarts: u64,
}

/// Replica-recovery counters, aggregated across servers (the wipe/sync
/// side) and clients (the repair side) of a run. Present only when the run
/// exercised crash-with-amnesia faults or read repair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Crash-with-amnesia wipes performed by servers.
    pub amnesia_wipes: u64,
    /// Catch-up rounds that completed (responders covered a read quorum).
    pub syncs_completed: u64,
    /// Objects whose copy moved forward while absorbing peer inventories.
    pub sync_objects_received: u64,
    /// Prepare votes refused by replicas still catching up.
    pub sync_vote_refusals: u64,
    /// Read rounds refused by replicas still catching up.
    pub sync_read_refusals: u64,
    /// Read-repair messages clients sent to lagging replicas.
    pub repair_writes_sent: u64,
    /// Repaired objects that actually advanced a replica's copy.
    pub repair_writes_applied: u64,
    /// Crash-restart recoveries performed (WAL replayed, delta fetched).
    pub restart_replays: u64,
    /// WAL records servers applied across restart replays.
    pub wal_records_replayed: u64,
    /// Torn/corrupt WAL tails detected by checksum and truncated.
    pub torn_tails_truncated: u64,
    /// Objects shipped in delta-sync responses after restart replays —
    /// the recovery work that must scale with the outage, not the store.
    pub delta_objects_fetched: u64,
    /// WAL append/sync failures surfaced by the storage backend.
    pub wal_io_errors: u64,
    /// Successful WAL syncs that made at least one new record durable.
    pub wal_sync_batches: u64,
    /// Records made durable across those batches; divided by
    /// `wal_sync_batches` this is the group-commit records-per-sync
    /// batching factor.
    pub wal_records_synced: u64,
}

/// Mirror of the simulated network's `NetStatsSnapshot`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages enqueued on live inboxes.
    pub delivered: u64,
    /// Drops: destination failed.
    pub dropped_failed: u64,
    /// Drops: destination inbox closed.
    pub dropped_closed: u64,
    /// Drops: directed link failed (partitions).
    pub dropped_link: u64,
    /// Drops: chaos rule drop draw.
    pub dropped_chaos: u64,
    /// Extra copies from chaos duplication.
    pub chaos_duplicated: u64,
    /// Messages delay-reordered by chaos.
    pub chaos_delayed: u64,
    /// Payload bytes handed to the network.
    pub bytes_sent: u64,
    /// Payload bytes enqueued on live inboxes.
    pub bytes_delivered: u64,
}

/// Commit-latency percentiles in nanoseconds (integer, so the JSON
/// round-trip is exact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub samples: u64,
    /// Median, as the containing bucket's upper bound.
    pub p50_nanos: u64,
    /// 95th percentile.
    pub p95_nanos: u64,
    /// 99th percentile.
    pub p99_nanos: u64,
}

/// One class's contention-window reading from the DTM's Dynamic Module:
/// mean writes / aborts per touched object in the last complete window.
/// Levels are stored in integer milli-units (level × 1000, rounded) so the
/// JSON round-trip is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionLevel {
    /// Class name.
    pub class: String,
    /// Write level × 1000.
    pub writes_milli: u64,
    /// Abort level × 1000.
    pub aborts_milli: u64,
}

/// One attribution row, flattened for export ([`AbortTable`] carries
/// `&'static` class names, which an importer cannot reconstruct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbortRow {
    /// Blamed class name, `None` when no object was blamed.
    pub class: Option<String>,
    /// Block index, `None` = flat body or commit phase.
    pub block: Option<u32>,
    /// Abort kind.
    pub kind: AbortKind,
    /// Occurrences.
    pub count: u64,
}

/// One `(class, block)` row of the aggregated commit critical path: where
/// the end-to-end latency of committed transactions went. Transaction-wide
/// segments (`redo`, `local`) live on the class's `block = -1` row;
/// per-Block rows carry only the `{net, srvq, lock}` split of their rounds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CritPathRow {
    /// Workload class (transaction template) name.
    pub class: String,
    /// Block index (`-1` = outside any Block / whole transaction).
    pub block: i64,
    /// Committed transactions contributing to this row.
    pub txns: u64,
    /// Local compute + bookkeeping nanoseconds.
    pub local_ns: u64,
    /// Network + server-handle nanoseconds.
    pub net_ns: u64,
    /// Server inbox dwell nanoseconds (slowest responder per round).
    pub srvq_ns: u64,
    /// Client lock-wait sleep nanoseconds.
    pub lock_ns: u64,
    /// Rollback-redo nanoseconds (discarded attempts + restart backoff).
    pub redo_ns: u64,
    /// WAL fsync-park nanoseconds (slowest responder per round).
    pub wal_ns: u64,
}

/// One interval window of the live time-series, flattened for export:
/// counters plus the window's latency quantiles (integer nanoseconds, as
/// histogram-bucket upper bounds, so the round trip is exact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeriesRow {
    /// Grid index: `window × window_ns` is the window's start on the
    /// run-relative clock.
    pub window: u64,
    /// Width of every window in this series, nanoseconds.
    pub window_ns: u64,
    /// Commits in the window.
    pub commits: u64,
    /// Full aborts in the window.
    pub full_aborts: u64,
    /// Partial aborts in the window.
    pub partial_aborts: u64,
    /// Commit-latency samples in the window.
    pub samples: u64,
    /// Window p50 commit latency (bucket upper bound, ns); 0 if empty.
    pub p50_ns: u64,
    /// Window p99 commit latency.
    pub p99_ns: u64,
    /// Window p999 commit latency.
    pub p999_ns: u64,
}

impl SeriesRow {
    /// Flatten a [`WindowedSeries`] into export rows, one per non-idle
    /// window, in grid order.
    pub fn from_series(s: &WindowedSeries) -> Vec<SeriesRow> {
        s.iter()
            .map(|(window, cell)| {
                let (p50_ns, p99_ns, p999_ns) = cell.latency.quantile_snapshot();
                SeriesRow {
                    window,
                    window_ns: s.window_ns(),
                    commits: cell.commits,
                    full_aborts: cell.full_aborts,
                    partial_aborts: cell.partial_aborts,
                    samples: cell.latency.len(),
                    p50_ns,
                    p99_ns,
                    p999_ns,
                }
            })
            .collect()
    }
}

/// `ThreadTraceRow::thread` value naming the shared server-side span
/// collector rather than a client worker thread. Chosen to fit the JSON
/// codec's `i64` integers while never colliding with a thread index.
pub const SERVER_TRACE_THREAD: u64 = 1 << 32;

/// One worker thread's span-ring completeness: how much of its trace the
/// bounded ring kept. `thread == SERVER_TRACE_THREAD` is the server-side
/// collector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadTraceRow {
    /// Worker thread index (or [`SERVER_TRACE_THREAD`]).
    pub thread: u64,
    /// Spans recorded (dropped ones included).
    pub recorded: u64,
    /// Spans overwritten because the ring was full.
    pub dropped: u64,
    /// Ring capacity, in spans.
    pub capacity: u64,
}

impl ThreadTraceRow {
    /// Share of recorded spans the ring kept, as an integer percentage
    /// (an empty ring counts as 100% complete).
    pub fn kept_pct(&self) -> u64 {
        ((self.recorded - self.dropped) * 100)
            .checked_div(self.recorded)
            .unwrap_or(100)
    }
}

/// Everything a run exports, in one comparable value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Free-form run description (`system`, `threads`, `seed`, …), in
    /// insertion order.
    pub meta: Vec<(String, String)>,
    /// Executor counters.
    pub exec: ExecCounters,
    /// Checkpoint-runner counters, when that design ran.
    pub checkpoint: Option<CheckpointCounters>,
    /// Replica-recovery counters, when the run exercised amnesia faults or
    /// read repair.
    pub recovery: Option<RecoveryCounters>,
    /// Network counters.
    pub net: NetCounters,
    /// Commit-latency percentiles.
    pub latency: LatencySummary,
    /// Per-class contention-window levels, as sampled.
    pub contention: Vec<ContentionLevel>,
    /// Abort attribution rows, in [`AbortTable`] key order.
    pub aborts: Vec<AbortRow>,
    /// Aggregated critical-path rows, keyed by `(class, block)`.
    pub critpath: Vec<CritPathRow>,
    /// Per-thread span-ring completeness rows.
    pub thread_traces: Vec<ThreadTraceRow>,
    /// Trace-ring counters summed over threads.
    pub trace: TraceSummary,
    /// Wasted-work totals, when the run recorded the ledger.
    pub wasted: Option<WorkTotals>,
    /// Live time-series windows, in grid order.
    pub series: Vec<SeriesRow>,
    /// Flight-recorder artifacts written by tripped anomaly triggers.
    pub flights: Vec<FlightRecord>,
}

impl MetricsReport {
    /// Total attributed aborts over the given kinds.
    pub fn attributed_total_of(&self, kinds: &[AbortKind]) -> u64 {
        self.aborts
            .iter()
            .filter(|r| kinds.contains(&r.kind))
            .map(|r| r.count)
            .sum()
    }

    /// Induced-abort count per class name, heaviest first (`None` groups
    /// unattributed aborts; ties break on name).
    pub fn top_classes(&self, k: usize) -> Vec<(String, u64)> {
        let mut agg: BTreeMap<Option<&str>, u64> = BTreeMap::new();
        for r in &self.aborts {
            *agg.entry(r.class.as_deref()).or_insert(0) += r.count;
        }
        let mut out: Vec<(String, u64)> = agg
            .into_iter()
            .map(|(c, n)| (c.unwrap_or("<none>").to_owned(), n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Serialise to JSON-lines: one flat object per line, first line is the
    /// report header, last line is `{"type":"end"}` so truncation is
    /// detectable.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        {
            let mut o = JsonObj::new("report");
            o.u64_field("schema_version", SCHEMA_VERSION);
            out.push_str(&o.finish());
            out.push('\n');
        }
        for (k, v) in &self.meta {
            let mut o = JsonObj::new("meta");
            o.str_field("key", k).str_field("value", v);
            out.push_str(&o.finish());
            out.push('\n');
        }
        {
            let mut o = JsonObj::new("exec");
            o.u64_field("commits", self.exec.commits)
                .u64_field("full_aborts", self.exec.full_aborts)
                .u64_field("partial_aborts", self.exec.partial_aborts)
                .u64_field("locked_aborts", self.exec.locked_aborts)
                .u64_field("unavailable_retries", self.exec.unavailable_retries);
            out.push_str(&o.finish());
            out.push('\n');
        }
        if let Some(c) = &self.checkpoint {
            let mut o = JsonObj::new("checkpoint");
            o.u64_field("commits", c.commits)
                .u64_field("rollbacks", c.rollbacks)
                .u64_field("checkpoints", c.checkpoints)
                .u64_field("full_restarts", c.full_restarts);
            out.push_str(&o.finish());
            out.push('\n');
        }
        if let Some(r) = &self.recovery {
            let mut o = JsonObj::new("recovery");
            o.u64_field("amnesia_wipes", r.amnesia_wipes)
                .u64_field("syncs_completed", r.syncs_completed)
                .u64_field("sync_objects_received", r.sync_objects_received)
                .u64_field("sync_vote_refusals", r.sync_vote_refusals)
                .u64_field("sync_read_refusals", r.sync_read_refusals)
                .u64_field("repair_writes_sent", r.repair_writes_sent)
                .u64_field("repair_writes_applied", r.repair_writes_applied)
                .u64_field("restart_replays", r.restart_replays)
                .u64_field("wal_records_replayed", r.wal_records_replayed)
                .u64_field("torn_tails_truncated", r.torn_tails_truncated)
                .u64_field("delta_objects_fetched", r.delta_objects_fetched)
                .u64_field("wal_io_errors", r.wal_io_errors)
                .u64_field("wal_sync_batches", r.wal_sync_batches)
                .u64_field("wal_records_synced", r.wal_records_synced);
            out.push_str(&o.finish());
            out.push('\n');
        }
        {
            let n = &self.net;
            let mut o = JsonObj::new("net");
            o.u64_field("sent", n.sent)
                .u64_field("delivered", n.delivered)
                .u64_field("dropped_failed", n.dropped_failed)
                .u64_field("dropped_closed", n.dropped_closed)
                .u64_field("dropped_link", n.dropped_link)
                .u64_field("dropped_chaos", n.dropped_chaos)
                .u64_field("chaos_duplicated", n.chaos_duplicated)
                .u64_field("chaos_delayed", n.chaos_delayed)
                .u64_field("bytes_sent", n.bytes_sent)
                .u64_field("bytes_delivered", n.bytes_delivered);
            out.push_str(&o.finish());
            out.push('\n');
        }
        {
            let l = &self.latency;
            let mut o = JsonObj::new("latency");
            o.u64_field("samples", l.samples)
                .u64_field("p50_nanos", l.p50_nanos)
                .u64_field("p95_nanos", l.p95_nanos)
                .u64_field("p99_nanos", l.p99_nanos);
            out.push_str(&o.finish());
            out.push('\n');
        }
        for c in &self.contention {
            let mut o = JsonObj::new("contention");
            o.str_field("class", &c.class)
                .u64_field("writes_milli", c.writes_milli)
                .u64_field("aborts_milli", c.aborts_milli);
            out.push_str(&o.finish());
            out.push('\n');
        }
        for r in &self.aborts {
            let mut o = JsonObj::new("abort");
            if let Some(c) = &r.class {
                o.str_field("class", c);
            }
            o.i64_field("block", r.block.map(i64::from).unwrap_or(-1))
                .str_field("kind", r.kind.label())
                .u64_field("count", r.count);
            out.push_str(&o.finish());
            out.push('\n');
        }
        for r in &self.critpath {
            let mut o = JsonObj::new("critpath");
            o.str_field("class", &r.class)
                .i64_field("block", r.block)
                .u64_field("txns", r.txns)
                .u64_field("local_ns", r.local_ns)
                .u64_field("net_ns", r.net_ns)
                .u64_field("srvq_ns", r.srvq_ns)
                .u64_field("lock_ns", r.lock_ns)
                .u64_field("redo_ns", r.redo_ns)
                .u64_field("wal_ns", r.wal_ns);
            out.push_str(&o.finish());
            out.push('\n');
        }
        for t in &self.thread_traces {
            let mut o = JsonObj::new("trace_thread");
            o.u64_field("thread", t.thread)
                .u64_field("recorded", t.recorded)
                .u64_field("dropped", t.dropped)
                .u64_field("capacity", t.capacity);
            out.push_str(&o.finish());
            out.push('\n');
        }
        {
            let t = &self.trace;
            let mut o = JsonObj::new("trace");
            o.u64_field("recorded", t.recorded)
                .u64_field("dropped", t.dropped)
                .u64_field("capacity", t.capacity);
            out.push_str(&o.finish());
            out.push('\n');
        }
        if let Some(w) = &self.wasted {
            for (scope, u) in [
                ("executed", w.executed),
                ("committed", w.committed),
                ("discarded_full", w.discarded_full),
                ("discarded_partial", w.discarded_partial),
                ("abandoned", w.abandoned),
            ] {
                let mut o = JsonObj::new("wasted");
                o.str_field("scope", scope)
                    .u64_field("blocks", u.blocks)
                    .u64_field("read_rounds", u.read_rounds)
                    .u64_field("lock_holds", u.lock_holds);
                out.push_str(&o.finish());
                out.push('\n');
            }
            for (k, u) in &w.by_kind {
                let mut o = JsonObj::new("wasted_kind");
                o.str_field("kind", k.label())
                    .u64_field("blocks", u.blocks)
                    .u64_field("read_rounds", u.read_rounds)
                    .u64_field("lock_holds", u.lock_holds);
                out.push_str(&o.finish());
                out.push('\n');
            }
        }
        for r in &self.series {
            let mut o = JsonObj::new("series");
            o.u64_field("window", r.window)
                .u64_field("window_ns", r.window_ns)
                .u64_field("commits", r.commits)
                .u64_field("full_aborts", r.full_aborts)
                .u64_field("partial_aborts", r.partial_aborts)
                .u64_field("samples", r.samples)
                .u64_field("p50_ns", r.p50_ns)
                .u64_field("p99_ns", r.p99_ns)
                .u64_field("p999_ns", r.p999_ns);
            out.push_str(&o.finish());
            out.push('\n');
        }
        for f in &self.flights {
            let mut o = JsonObj::new("flight");
            o.str_field("trigger", &f.trigger)
                .u64_field("value_milli", f.value_milli)
                .u64_field("budget_milli", f.budget_milli)
                .str_field("artifact", &f.artifact);
            out.push_str(&o.finish());
            out.push('\n');
        }
        out.push_str(&JsonObj::new("end").finish());
        out.push('\n');
        out
    }

    /// Parse a JSON-lines export back into a report; inverse of
    /// [`MetricsReport::to_json_lines`].
    pub fn parse_json_lines(input: &str) -> Result<MetricsReport, String> {
        let mut report = MetricsReport::default();
        let mut saw_header = false;
        let mut saw_end = false;
        for (lineno, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if saw_end {
                return Err(format!("line {}: content after end marker", lineno + 1));
            }
            let map = parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let ty = req_str(&map, "type").map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let ctx = |e: String| format!("line {} ({ty}): {e}", lineno + 1);
            match ty.as_str() {
                "report" => {
                    saw_header = true;
                    match map.get("schema_version") {
                        // Version-1 exports predate the field.
                        None | Some(JsonVal::Int(1)) => {}
                        Some(JsonVal::Int(n)) if *n >= 0 && *n as u64 == SCHEMA_VERSION => {}
                        Some(other) => {
                            return Err(ctx(format!(
                                "unsupported schema_version {other:?} \
                                 (this reader handles versions 1..={SCHEMA_VERSION})"
                            )))
                        }
                    }
                }
                "end" => saw_end = true,
                "meta" => report.meta.push((req_str(&map, "key").map_err(ctx)?, {
                    req_str(&map, "value").map_err(ctx)?
                })),
                "exec" => {
                    report.exec = ExecCounters {
                        commits: req_u64(&map, "commits").map_err(ctx)?,
                        full_aborts: req_u64(&map, "full_aborts").map_err(ctx)?,
                        partial_aborts: req_u64(&map, "partial_aborts").map_err(ctx)?,
                        locked_aborts: req_u64(&map, "locked_aborts").map_err(ctx)?,
                        unavailable_retries: req_u64(&map, "unavailable_retries").map_err(ctx)?,
                    }
                }
                "checkpoint" => {
                    report.checkpoint = Some(CheckpointCounters {
                        commits: req_u64(&map, "commits").map_err(ctx)?,
                        rollbacks: req_u64(&map, "rollbacks").map_err(ctx)?,
                        checkpoints: req_u64(&map, "checkpoints").map_err(ctx)?,
                        full_restarts: req_u64(&map, "full_restarts").map_err(ctx)?,
                    })
                }
                "recovery" => {
                    report.recovery = Some(RecoveryCounters {
                        amnesia_wipes: req_u64(&map, "amnesia_wipes").map_err(ctx)?,
                        syncs_completed: req_u64(&map, "syncs_completed").map_err(ctx)?,
                        sync_objects_received: req_u64(&map, "sync_objects_received")
                            .map_err(ctx)?,
                        sync_vote_refusals: req_u64(&map, "sync_vote_refusals").map_err(ctx)?,
                        sync_read_refusals: req_u64(&map, "sync_read_refusals").map_err(ctx)?,
                        repair_writes_sent: req_u64(&map, "repair_writes_sent").map_err(ctx)?,
                        repair_writes_applied: req_u64(&map, "repair_writes_applied")
                            .map_err(ctx)?,
                        restart_replays: req_u64(&map, "restart_replays").map_err(ctx)?,
                        wal_records_replayed: req_u64(&map, "wal_records_replayed").map_err(ctx)?,
                        torn_tails_truncated: req_u64(&map, "torn_tails_truncated").map_err(ctx)?,
                        delta_objects_fetched: req_u64(&map, "delta_objects_fetched")
                            .map_err(ctx)?,
                        wal_io_errors: req_u64(&map, "wal_io_errors").map_err(ctx)?,
                        wal_sync_batches: req_u64(&map, "wal_sync_batches").map_err(ctx)?,
                        wal_records_synced: req_u64(&map, "wal_records_synced").map_err(ctx)?,
                    })
                }
                "net" => {
                    report.net = NetCounters {
                        sent: req_u64(&map, "sent").map_err(ctx)?,
                        delivered: req_u64(&map, "delivered").map_err(ctx)?,
                        dropped_failed: req_u64(&map, "dropped_failed").map_err(ctx)?,
                        dropped_closed: req_u64(&map, "dropped_closed").map_err(ctx)?,
                        dropped_link: req_u64(&map, "dropped_link").map_err(ctx)?,
                        dropped_chaos: req_u64(&map, "dropped_chaos").map_err(ctx)?,
                        chaos_duplicated: req_u64(&map, "chaos_duplicated").map_err(ctx)?,
                        chaos_delayed: req_u64(&map, "chaos_delayed").map_err(ctx)?,
                        bytes_sent: req_u64(&map, "bytes_sent").map_err(ctx)?,
                        bytes_delivered: req_u64(&map, "bytes_delivered").map_err(ctx)?,
                    }
                }
                "latency" => {
                    report.latency = LatencySummary {
                        samples: req_u64(&map, "samples").map_err(ctx)?,
                        p50_nanos: req_u64(&map, "p50_nanos").map_err(ctx)?,
                        p95_nanos: req_u64(&map, "p95_nanos").map_err(ctx)?,
                        p99_nanos: req_u64(&map, "p99_nanos").map_err(ctx)?,
                    }
                }
                "contention" => report.contention.push(ContentionLevel {
                    class: req_str(&map, "class").map_err(ctx)?,
                    writes_milli: req_u64(&map, "writes_milli").map_err(ctx)?,
                    aborts_milli: req_u64(&map, "aborts_milli").map_err(ctx)?,
                }),
                "abort" => {
                    let block = match map.get("block") {
                        Some(JsonVal::Int(-1)) => None,
                        Some(JsonVal::Int(n)) if (0..=i64::from(u32::MAX)).contains(n) => {
                            Some(*n as u32)
                        }
                        other => return Err(ctx(format!("bad block field {other:?}"))),
                    };
                    let kind_label = req_str(&map, "kind").map_err(ctx)?;
                    let kind = AbortKind::from_label(&kind_label)
                        .ok_or_else(|| ctx(format!("unknown abort kind {kind_label:?}")))?;
                    report.aborts.push(AbortRow {
                        class: map.get("class").and_then(|v| v.as_str()).map(str::to_owned),
                        block,
                        kind,
                        count: req_u64(&map, "count").map_err(ctx)?,
                    });
                }
                "critpath" => report.critpath.push(CritPathRow {
                    class: req_str(&map, "class").map_err(ctx)?,
                    block: match map.get("block") {
                        Some(JsonVal::Int(n)) => *n,
                        other => return Err(ctx(format!("bad block field {other:?}"))),
                    },
                    txns: req_u64(&map, "txns").map_err(ctx)?,
                    local_ns: req_u64(&map, "local_ns").map_err(ctx)?,
                    net_ns: req_u64(&map, "net_ns").map_err(ctx)?,
                    srvq_ns: req_u64(&map, "srvq_ns").map_err(ctx)?,
                    lock_ns: req_u64(&map, "lock_ns").map_err(ctx)?,
                    redo_ns: req_u64(&map, "redo_ns").map_err(ctx)?,
                    wal_ns: req_u64(&map, "wal_ns").map_err(ctx)?,
                }),
                "trace_thread" => report.thread_traces.push(ThreadTraceRow {
                    thread: req_u64(&map, "thread").map_err(ctx)?,
                    recorded: req_u64(&map, "recorded").map_err(ctx)?,
                    dropped: req_u64(&map, "dropped").map_err(ctx)?,
                    capacity: req_u64(&map, "capacity").map_err(ctx)?,
                }),
                "trace" => {
                    report.trace = TraceSummary {
                        recorded: req_u64(&map, "recorded").map_err(ctx)?,
                        dropped: req_u64(&map, "dropped").map_err(ctx)?,
                        capacity: req_u64(&map, "capacity").map_err(ctx)?,
                    }
                }
                "wasted" => {
                    let u = WorkUnits {
                        blocks: req_u64(&map, "blocks").map_err(ctx)?,
                        read_rounds: req_u64(&map, "read_rounds").map_err(ctx)?,
                        lock_holds: req_u64(&map, "lock_holds").map_err(ctx)?,
                    };
                    let w = report.wasted.get_or_insert_with(WorkTotals::default);
                    let scope = req_str(&map, "scope").map_err(ctx)?;
                    match scope.as_str() {
                        "executed" => w.executed = u,
                        "committed" => w.committed = u,
                        "discarded_full" => w.discarded_full = u,
                        "discarded_partial" => w.discarded_partial = u,
                        "abandoned" => w.abandoned = u,
                        other => return Err(ctx(format!("unknown wasted scope {other:?}"))),
                    }
                }
                "wasted_kind" => {
                    let kind_label = req_str(&map, "kind").map_err(ctx)?;
                    let kind = AbortKind::from_label(&kind_label)
                        .ok_or_else(|| ctx(format!("unknown abort kind {kind_label:?}")))?;
                    let u = WorkUnits {
                        blocks: req_u64(&map, "blocks").map_err(ctx)?,
                        read_rounds: req_u64(&map, "read_rounds").map_err(ctx)?,
                        lock_holds: req_u64(&map, "lock_holds").map_err(ctx)?,
                    };
                    report
                        .wasted
                        .get_or_insert_with(WorkTotals::default)
                        .by_kind
                        .insert(kind, u);
                }
                "series" => report.series.push(SeriesRow {
                    window: req_u64(&map, "window").map_err(ctx)?,
                    window_ns: req_u64(&map, "window_ns").map_err(ctx)?,
                    commits: req_u64(&map, "commits").map_err(ctx)?,
                    full_aborts: req_u64(&map, "full_aborts").map_err(ctx)?,
                    partial_aborts: req_u64(&map, "partial_aborts").map_err(ctx)?,
                    samples: req_u64(&map, "samples").map_err(ctx)?,
                    p50_ns: req_u64(&map, "p50_ns").map_err(ctx)?,
                    p99_ns: req_u64(&map, "p99_ns").map_err(ctx)?,
                    p999_ns: req_u64(&map, "p999_ns").map_err(ctx)?,
                }),
                "flight" => report.flights.push(FlightRecord {
                    trigger: req_str(&map, "trigger").map_err(ctx)?,
                    value_milli: req_u64(&map, "value_milli").map_err(ctx)?,
                    budget_milli: req_u64(&map, "budget_milli").map_err(ctx)?,
                    artifact: req_str(&map, "artifact").map_err(ctx)?,
                }),
                other => return Err(format!("line {}: unknown type {other:?}", lineno + 1)),
            }
        }
        if !saw_header {
            return Err("missing report header line".into());
        }
        if !saw_end {
            return Err("missing end marker (truncated export?)".into());
        }
        Ok(report)
    }
}

/// Builder that accumulates a run's metric sources and snapshots them into
/// a [`MetricsReport`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    report: MetricsReport,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a free-form meta key/value (run description).
    pub fn meta(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.report.meta.push((key.to_owned(), value.to_string()));
        self
    }

    /// Publish the executor counters.
    pub fn exec(&mut self, exec: ExecCounters) -> &mut Self {
        self.report.exec = exec;
        self
    }

    /// Publish checkpoint-runner counters.
    pub fn checkpoint(&mut self, c: CheckpointCounters) -> &mut Self {
        self.report.checkpoint = Some(c);
        self
    }

    /// Publish replica-recovery counters.
    pub fn recovery(&mut self, r: RecoveryCounters) -> &mut Self {
        self.report.recovery = Some(r);
        self
    }

    /// Publish the network counters.
    pub fn net(&mut self, net: NetCounters) -> &mut Self {
        self.report.net = net;
        self
    }

    /// Publish the latency percentiles.
    pub fn latency(&mut self, latency: LatencySummary) -> &mut Self {
        self.report.latency = latency;
        self
    }

    /// Append one class's contention-window reading.
    pub fn contention(&mut self, level: ContentionLevel) -> &mut Self {
        self.report.contention.push(level);
        self
    }

    /// Publish the abort attribution table (flattened to rows in key
    /// order).
    pub fn aborts(&mut self, table: &AbortTable) -> &mut Self {
        self.report.aborts = table
            .iter()
            .map(|(site, &count)| {
                let AbortSite { class, block, kind } = *site;
                AbortRow {
                    class: class.map(|c| c.name.to_owned()),
                    block,
                    kind,
                    count,
                }
            })
            .collect();
        self
    }

    /// Publish the aggregated critical-path rows.
    pub fn critpath(&mut self, rows: Vec<CritPathRow>) -> &mut Self {
        self.report.critpath = rows;
        self
    }

    /// Append one thread's (or the server collector's) span completeness.
    pub fn thread_trace(&mut self, row: ThreadTraceRow) -> &mut Self {
        self.report.thread_traces.push(row);
        self
    }

    /// Publish the merged trace-ring counters.
    pub fn trace(&mut self, trace: TraceSummary) -> &mut Self {
        self.report.trace = trace;
        self
    }

    /// Publish the merged wasted-work totals.
    pub fn wasted(&mut self, w: WorkTotals) -> &mut Self {
        self.report.wasted = Some(w);
        self
    }

    /// Publish the live time-series, flattened into window rows.
    pub fn series(&mut self, s: &WindowedSeries) -> &mut Self {
        self.report.series = SeriesRow::from_series(s);
        self
    }

    /// Append flight-recorder rows from tripped anomaly triggers.
    pub fn flights(&mut self, flights: Vec<FlightRecord>) -> &mut Self {
        self.report.flights.extend(flights);
        self
    }

    /// The assembled report.
    pub fn snapshot(&self) -> MetricsReport {
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_txir::ObjClass;

    fn sample_report() -> MetricsReport {
        let mut table = AbortTable::new();
        table.record_n(
            AbortSite {
                class: Some(ObjClass::new(1, "Branch")),
                block: Some(0),
                kind: AbortKind::Partial,
            },
            7,
        );
        table.record_n(
            AbortSite {
                class: None,
                block: None,
                kind: AbortKind::CommitConflict,
            },
            2,
        );
        let mut reg = MetricsRegistry::new();
        reg.meta("system", "QrAcn")
            .meta("seed", 42u64)
            .exec(ExecCounters {
                commits: 100,
                full_aborts: 2,
                partial_aborts: 7,
                locked_aborts: 0,
                unavailable_retries: 1,
            })
            .checkpoint(CheckpointCounters {
                commits: 10,
                rollbacks: 3,
                checkpoints: 20,
                full_restarts: 1,
            })
            .recovery(RecoveryCounters {
                amnesia_wipes: 1,
                syncs_completed: 1,
                sync_objects_received: 250,
                sync_vote_refusals: 4,
                sync_read_refusals: 6,
                repair_writes_sent: 9,
                repair_writes_applied: 5,
                restart_replays: 1,
                wal_records_replayed: 180,
                torn_tails_truncated: 1,
                delta_objects_fetched: 12,
                wal_io_errors: 2,
                wal_sync_batches: 40,
                wal_records_synced: 210,
            })
            .net(NetCounters {
                sent: 500,
                delivered: 498,
                bytes_sent: 12_345,
                bytes_delivered: 12_000,
                ..Default::default()
            })
            .latency(LatencySummary {
                samples: 100,
                p50_nanos: 1_000_000,
                p95_nanos: 2_000_000,
                p99_nanos: 3_000_000,
            })
            .contention(ContentionLevel {
                class: "Branch".into(),
                writes_milli: 50_000,
                aborts_milli: 9_000,
            })
            .aborts(&table)
            .critpath(vec![
                CritPathRow {
                    class: "transfer".into(),
                    block: -1,
                    txns: 100,
                    local_ns: 5_000,
                    net_ns: 1_000,
                    srvq_ns: 200,
                    lock_ns: 0,
                    redo_ns: 900,
                    wal_ns: 150,
                },
                CritPathRow {
                    class: "transfer".into(),
                    block: 0,
                    txns: 100,
                    local_ns: 0,
                    net_ns: 7_000,
                    srvq_ns: 800,
                    lock_ns: 300,
                    redo_ns: 0,
                    wal_ns: 0,
                },
            ])
            .thread_trace(ThreadTraceRow {
                thread: 0,
                recorded: 600,
                dropped: 12,
                capacity: 2048,
            })
            .thread_trace(ThreadTraceRow {
                thread: SERVER_TRACE_THREAD,
                recorded: 400,
                dropped: 0,
                capacity: 2048,
            })
            .trace(TraceSummary {
                recorded: 1_000,
                dropped: 12,
                capacity: 4096,
            });
        let mut wasted = WorkTotals {
            executed: WorkUnits {
                blocks: 120,
                read_rounds: 60,
                lock_holds: 40,
            },
            committed: WorkUnits {
                blocks: 100,
                read_rounds: 50,
                lock_holds: 35,
            },
            discarded_full: WorkUnits {
                blocks: 13,
                read_rounds: 6,
                lock_holds: 3,
            },
            discarded_partial: WorkUnits {
                blocks: 7,
                read_rounds: 4,
                lock_holds: 2,
            },
            abandoned: WorkUnits {
                blocks: 2,
                read_rounds: 1,
                lock_holds: 0,
            },
            by_kind: BTreeMap::new(),
        };
        wasted.by_kind.insert(
            AbortKind::Partial,
            WorkUnits {
                blocks: 7,
                read_rounds: 4,
                lock_holds: 2,
            },
        );
        wasted.by_kind.insert(
            AbortKind::CommitConflict,
            WorkUnits {
                blocks: 11,
                read_rounds: 5,
                lock_holds: 3,
            },
        );
        wasted.check().expect("sample totals balance");
        let mut series = WindowedSeries::new(100_000_000);
        series.record_commit(50_000_000, 1_200_000);
        series.record_commit(150_000_000, 900_000);
        series.record_aborts(150_000_000, 1, 3);
        reg.wasted(wasted)
            .series(&series)
            .flights(vec![FlightRecord {
                trigger: "p99_latency".into(),
                value_milli: 3_000,
                budget_milli: 2_000,
                artifact: "flights/flight-fig1-p99_latency.json".into(),
            }]);
        reg.snapshot()
    }

    #[test]
    fn json_lines_round_trip_is_exact() {
        let report = sample_report();
        let text = report.to_json_lines();
        let back = MetricsReport::parse_json_lines(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn attribution_matches_exec_counters() {
        let report = sample_report();
        assert_eq!(
            report.attributed_total_of(&AbortKind::EXECUTOR_KINDS),
            report.exec.total_aborts()
        );
        assert_eq!(report.top_classes(1), vec![("Branch".to_owned(), 7)]);
    }

    #[test]
    fn completeness_percentage_is_sane() {
        let report = sample_report();
        assert_eq!(report.thread_traces[0].kept_pct(), 98);
        assert_eq!(report.thread_traces[1].kept_pct(), 100);
        assert_eq!(ThreadTraceRow::default().kept_pct(), 100);
    }

    #[test]
    fn unknown_schema_version_is_rejected_with_a_clear_error() {
        let report = sample_report();
        let text = report.to_json_lines();
        let header = format!("{{\"type\":\"report\",\"schema_version\":{SCHEMA_VERSION}}}");
        assert!(text.starts_with(&header), "header carries the version");
        // A version-1 export (no field at all) still parses.
        let v1 = text.replacen(&header, "{\"type\":\"report\"}", 1);
        assert!(MetricsReport::parse_json_lines(&v1).is_ok());
        // An explicit version 1 still parses.
        let v1e = text.replacen(&header, "{\"type\":\"report\",\"schema_version\":1}", 1);
        assert!(MetricsReport::parse_json_lines(&v1e).is_ok());
        // A future version is refused loudly, naming the supported range.
        let v99 = text.replacen(&header, "{\"type\":\"report\",\"schema_version\":99}", 1);
        let err = MetricsReport::parse_json_lines(&v99).unwrap_err();
        assert!(err.contains("unsupported schema_version"), "{err}");
        assert!(err.contains(&format!("1..={SCHEMA_VERSION}")), "{err}");
    }

    #[test]
    fn wasted_rows_reconstruct_balanced_totals() {
        let report = sample_report();
        let text = report.to_json_lines();
        let back = MetricsReport::parse_json_lines(&text).unwrap();
        let w = back.wasted.expect("wasted rows present");
        w.check().expect("parsed totals still balance");
        assert_eq!(Some(w), report.wasted);
    }

    #[test]
    fn truncated_export_is_rejected() {
        let report = sample_report();
        let text = report.to_json_lines();
        let cut = &text[..text.len() - "{\"type\":\"end\"}\n".len()];
        assert!(MetricsReport::parse_json_lines(cut)
            .unwrap_err()
            .contains("end marker"));
        assert!(MetricsReport::parse_json_lines("")
            .unwrap_err()
            .contains("header"));
    }
}
