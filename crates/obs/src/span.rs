//! Causal span tracing across client, network and quorum servers.
//!
//! Each top-level transaction owns a **trace**; within it, every execution
//! attempt, closed-nested Block, 2PC round (read / prepare / commit /
//! abort), lock-wait sleep, restart backoff and checkpoint rollback is a
//! **span**, and the trace context travels on the wire (as a
//! `Msg::Traced` wrapper in `acn-dtm`) so server-side handling — inbox
//! dwell, request execution, sync refusal — appears as child spans of the
//! client round that caused it. Spans are plain `Copy` records in a
//! bounded per-thread [`SpanRing`] (client side) or a shared bounded
//! [`SpanCollector`] (server side), so memory stays flat regardless of
//! run length.
//!
//! On top of the raw spans, [`critical_path`] decomposes each committed
//! transaction's end-to-end latency into `{local compute, network, server
//! queue, lock wait, rollback redo}` — a telescoping decomposition whose
//! segments sum *exactly* to the end-to-end duration in integer
//! nanoseconds.

use crate::trace::TraceSummary;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Default per-thread span-ring capacity (spans, not bytes). A span is
/// ~64 B, so the default costs ≈ 1 MiB per worker thread.
pub const DEFAULT_SPAN_CAPACITY: usize = 16_384;

/// Flag bit: the span's transaction (or attempt) committed.
pub const FLAG_COMMITTED: u32 = 1;
/// Flag bit: the span ended in a rollback, retry, timeout or refusal.
pub const FLAG_ROLLED_BACK: u32 = 2;

/// Dedicated bit distinguishing server-assigned span ids from client
/// ones, so the two id spaces can never collide when traces are joined
/// post-run. Bit 62, not 63: ids must stay representable in the JSON
/// codec's `i64` integers for the Chrome-trace round trip.
const SERVER_ID_BIT: u64 = 1 << 62;

/// The trace context that travels on the wire: which trace the message
/// belongs to and which client span (the quorum round) is its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id — equals the root transaction span's id.
    pub trace: u64,
    /// Parent span id for any server-side span this message produces.
    pub span: u64,
}

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Root: one top-level transaction, first attempt to outcome.
    Txn,
    /// One execution attempt (full restarts open a fresh one).
    Attempt,
    /// One closed-nested Block execution.
    Block,
    /// A quorum read round (single or batched).
    ReadRound,
    /// The 2PC prepare round.
    PrepareRound,
    /// The 2PC commit round.
    CommitRound,
    /// The 2PC abort round (including best-effort aborts).
    AbortRound,
    /// An explicit contention-query round.
    QueryRound,
    /// Client-side sleep after a read hit a `protected` object.
    LockWait,
    /// Randomized backoff between full restarts.
    Backoff,
    /// Checkpoint-runner rollback to an intermediate checkpoint.
    CkptRollback,
    /// Server: inbox dwell between delivery and being picked up.
    ServerQueue,
    /// Server: executing the request (store reads, lock work, apply).
    ServerHandle,
    /// Server: the request was refused because the replica was syncing.
    SyncRefusal,
    /// Server: one WAL fsync batch (group commit's durability point). A
    /// server-local root span — fsyncs serve many traces at once.
    WalSync,
    /// Server: an ack parked by group commit until its WAL mark became
    /// durable — the fsync-stall share of the client round that caused it.
    WalPark,
    /// Batch coordinator: building and dispatching one wave's conflict
    /// graph (a root span — waves are not nested inside any transaction).
    WaveSchedule,
}

impl SpanKind {
    /// Every kind, for round-trip tests.
    pub const ALL: [SpanKind; 17] = [
        SpanKind::Txn,
        SpanKind::Attempt,
        SpanKind::Block,
        SpanKind::ReadRound,
        SpanKind::PrepareRound,
        SpanKind::CommitRound,
        SpanKind::AbortRound,
        SpanKind::QueryRound,
        SpanKind::LockWait,
        SpanKind::Backoff,
        SpanKind::CkptRollback,
        SpanKind::ServerQueue,
        SpanKind::ServerHandle,
        SpanKind::SyncRefusal,
        SpanKind::WalSync,
        SpanKind::WalPark,
        SpanKind::WaveSchedule,
    ];

    /// The quorum-round kinds — the spans whose wire context servers see.
    pub const ROUNDS: [SpanKind; 5] = [
        SpanKind::ReadRound,
        SpanKind::PrepareRound,
        SpanKind::CommitRound,
        SpanKind::AbortRound,
        SpanKind::QueryRound,
    ];

    /// The server-side kinds (recorded into the [`SpanCollector`]).
    pub const SERVER: [SpanKind; 5] = [
        SpanKind::ServerQueue,
        SpanKind::ServerHandle,
        SpanKind::SyncRefusal,
        SpanKind::WalSync,
        SpanKind::WalPark,
    ];

    /// Stable lower-case label used in the Chrome-trace export.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Txn => "txn",
            SpanKind::Attempt => "attempt",
            SpanKind::Block => "block",
            SpanKind::ReadRound => "read_round",
            SpanKind::PrepareRound => "prepare_round",
            SpanKind::CommitRound => "commit_round",
            SpanKind::AbortRound => "abort_round",
            SpanKind::QueryRound => "query_round",
            SpanKind::LockWait => "lock_wait",
            SpanKind::Backoff => "backoff",
            SpanKind::CkptRollback => "ckpt_rollback",
            SpanKind::ServerQueue => "server_queue",
            SpanKind::ServerHandle => "server_handle",
            SpanKind::SyncRefusal => "sync_refusal",
            SpanKind::WalSync => "wal_sync",
            SpanKind::WalPark => "wal_park",
            SpanKind::WaveSchedule => "wave_schedule",
        }
    }

    /// Inverse of [`SpanKind::label`] (Chrome-trace import).
    pub fn from_label(s: &str) -> Option<SpanKind> {
        Some(match s {
            "txn" => SpanKind::Txn,
            "attempt" => SpanKind::Attempt,
            "block" => SpanKind::Block,
            "read_round" => SpanKind::ReadRound,
            "prepare_round" => SpanKind::PrepareRound,
            "commit_round" => SpanKind::CommitRound,
            "abort_round" => SpanKind::AbortRound,
            "query_round" => SpanKind::QueryRound,
            "lock_wait" => SpanKind::LockWait,
            "backoff" => SpanKind::Backoff,
            "ckpt_rollback" => SpanKind::CkptRollback,
            "server_queue" => SpanKind::ServerQueue,
            "server_handle" => SpanKind::ServerHandle,
            "sync_refusal" => SpanKind::SyncRefusal,
            "wal_sync" => SpanKind::WalSync,
            "wal_park" => SpanKind::WalPark,
            "wave_schedule" => SpanKind::WaveSchedule,
            _ => return None,
        })
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One finished span. All timestamps are nanoseconds relative to the run's
/// shared origin instant — the same clock the driver's interval rows use,
/// so trace time and `IntervalStats` time line up by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Unique span id (clients: `(thread+1) << 40 | seq`; servers carry
    /// the server id bit so the spaces never collide).
    pub id: u64,
    /// Parent span id (`0` = root).
    pub parent: u64,
    /// Trace id — the owning transaction's root span id.
    pub trace: u64,
    /// What this span measures.
    pub kind: SpanKind,
    /// Workload class (transaction template index); meaningful on
    /// [`SpanKind::Txn`] spans, `0` elsewhere.
    pub class: u16,
    /// Block index the span occurred in (`-1` = outside any Block).
    pub block: i32,
    /// Node id of the recording side (client or server).
    pub node: u32,
    /// Start, nanoseconds since the run origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// [`FLAG_COMMITTED`] / [`FLAG_ROLLED_BACK`] bits.
    pub flags: u32,
}

/// A fixed-capacity overwrite-oldest ring of [`Span`]s — the span-side
/// sibling of [`crate::TraceRing`], single writer by construction.
#[derive(Debug, Clone)]
pub struct SpanRing {
    buf: Vec<Span>,
    cap: usize,
    head: usize,
    recorded: u64,
    dropped: u64,
}

impl SpanRing {
    /// An empty ring holding at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        SpanRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Record one span: O(1), no allocation after the ring first fills.
    pub fn push(&mut self, s: Span) {
        self.recorded += 1;
        if self.buf.len() < self.cap {
            self.buf.push(s);
            self.head = self.buf.len() % self.cap;
        } else {
            self.buf[self.head] = s;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Retained spans, oldest first, plus the ring's counter summary —
    /// `capacity` rides along so the exporter can report completeness
    /// (% of recorded spans kept) per thread.
    pub fn drain(self) -> (Vec<Span>, TraceSummary) {
        let summary = TraceSummary {
            recorded: self.recorded,
            dropped: self.dropped,
            capacity: self.cap as u64,
        };
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() < self.cap {
            out.extend(self.buf);
        } else {
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
        }
        (out, summary)
    }

    /// Spans recorded so far (dropped ones included).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// An in-flight round span handed to the caller at send time: its id goes
/// on the wire (so server spans parent to it) and the span itself is
/// pushed when the round completes — success *or* timeout, which is what
/// guarantees every server span's parent exists client-side.
#[derive(Debug, Clone, Copy)]
pub struct PendingSpan {
    id: u64,
    parent: u64,
    trace: u64,
    kind: SpanKind,
    block: i32,
    start: Instant,
}

impl PendingSpan {
    /// The wire context naming this round as the parent.
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx {
            trace: self.trace,
            span: self.id,
        }
    }
}

/// Per-thread client-side tracer: owns the span ring, allocates span ids,
/// and tracks the open transaction / attempt / Block state.
///
/// All methods are cheap no-ops while no transaction is open, so protocol
/// traffic outside a traced transaction (seeding, contention queries) is
/// never wrapped and costs nothing.
#[derive(Debug)]
pub struct Tracer {
    origin: Instant,
    node: u32,
    ring: SpanRing,
    next: u64,
    cur: Option<TxnState>,
}

#[derive(Debug)]
struct TxnState {
    trace: u64,
    class: u16,
    start: Instant,
    attempt: Option<(u64, Instant)>,
    committed_attempt: bool,
    block: Option<(u32, Instant)>,
}

impl Tracer {
    /// A tracer for one worker thread. `origin` is the run's shared zero
    /// instant (every tracer and the server collector must use the same
    /// one); `thread` seeds the id band so ids are unique across threads.
    pub fn new(origin: Instant, node: u32, thread: u64, capacity: usize) -> Self {
        Tracer {
            origin,
            node,
            ring: SpanRing::new(capacity),
            next: (thread + 1) << 40,
            cur: None,
        }
    }

    fn alloc(&mut self) -> u64 {
        self.next += 1;
        self.next
    }

    fn ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.origin).as_nanos() as u64
    }

    fn push(
        &mut self,
        id: u64,
        parent: u64,
        kind: SpanKind,
        start: Instant,
        end: Instant,
        flags: u32,
    ) {
        let Some(cur) = &self.cur else { return };
        let span = Span {
            id,
            parent,
            trace: cur.trace,
            kind,
            class: if kind == SpanKind::Txn { cur.class } else { 0 },
            block: self.cur_block(),
            node: self.node,
            start_ns: self.ns(start),
            dur_ns: end.saturating_duration_since(start).as_nanos() as u64,
            flags,
        };
        self.ring.push(span);
    }

    /// Is a transaction trace currently open?
    pub fn has_txn(&self) -> bool {
        self.cur.is_some()
    }

    /// The Block index currently executing (`-1` = outside any Block).
    pub fn cur_block(&self) -> i32 {
        match &self.cur {
            Some(TxnState {
                block: Some((b, _)),
                ..
            }) => *b as i32,
            _ => -1,
        }
    }

    /// Open a new trace for one top-level transaction of workload class
    /// (template index) `class`. Any unfinished trace is closed first.
    pub fn start_txn(&mut self, class: u16) {
        if self.cur.is_some() {
            self.end_txn(false);
        }
        let trace = self.alloc();
        self.cur = Some(TxnState {
            trace,
            class,
            start: Instant::now(),
            attempt: None,
            committed_attempt: false,
            block: None,
        });
    }

    /// Open a new attempt span, closing the previous attempt (as rolled
    /// back) if one is still open. Fired once per execution attempt from
    /// the client's `begin()`; a no-op outside a transaction.
    pub fn begin_attempt(&mut self) {
        if self.cur.is_none() {
            return;
        }
        let now = Instant::now();
        self.close_attempt(now, false);
        let id = self.alloc();
        if let Some(cur) = &mut self.cur {
            cur.attempt = Some((id, now));
        }
    }

    fn close_attempt(&mut self, now: Instant, committed: bool) {
        let Some(cur) = &mut self.cur else { return };
        let Some((id, start)) = cur.attempt.take() else {
            return;
        };
        let trace = cur.trace;
        cur.committed_attempt = committed;
        let flags = if committed {
            FLAG_COMMITTED
        } else {
            FLAG_ROLLED_BACK
        };
        self.push(id, trace, SpanKind::Attempt, start, now, flags);
    }

    /// Close the trace: the open attempt and the root transaction span are
    /// finished with one shared end instant, so the final attempt's end
    /// coincides exactly with the transaction's.
    pub fn end_txn(&mut self, committed: bool) {
        if self.cur.is_none() {
            return;
        }
        let now = Instant::now();
        if self.cur.as_ref().is_some_and(|c| c.block.is_some()) {
            self.block_end(!committed);
        }
        self.close_attempt(now, committed);
        let Some(cur) = &self.cur else { return };
        let (trace, start) = (cur.trace, cur.start);
        let flags = if committed {
            FLAG_COMMITTED
        } else {
            FLAG_ROLLED_BACK
        };
        self.push(trace, 0, SpanKind::Txn, start, now, flags);
        self.cur = None;
    }

    /// Start a quorum-round span of `kind`. Returns `None` when no attempt
    /// is open (traffic outside transactions stays unwrapped).
    pub fn start_round(&mut self, kind: SpanKind) -> Option<PendingSpan> {
        let cur = self.cur.as_ref()?;
        let (attempt, _) = cur.attempt?;
        let trace = cur.trace;
        let block = self.cur_block();
        let id = self.alloc();
        Some(PendingSpan {
            id,
            parent: attempt,
            trace,
            kind,
            block,
            start: Instant::now(),
        })
    }

    /// Finish a round span started with [`Tracer::start_round`].
    pub fn end_round(&mut self, p: PendingSpan, failed: bool) {
        let Some(cur) = &self.cur else { return };
        let span = Span {
            id: p.id,
            parent: p.parent,
            trace: cur.trace,
            kind: p.kind,
            class: 0,
            block: p.block,
            node: self.node,
            start_ns: self.ns(p.start),
            dur_ns: Instant::now().saturating_duration_since(p.start).as_nanos() as u64,
            flags: if failed { FLAG_ROLLED_BACK } else { 0 },
        };
        self.ring.push(span);
    }

    /// Record a standalone root span of `kind` from `start` to now — its
    /// own trace, no parent. Unlike every other record method this works
    /// *outside* any open transaction; the batch coordinator uses it to
    /// time wave scheduling, which wraps many transactions rather than
    /// living inside one. `class` carries a kind-specific payload (for
    /// [`SpanKind::WaveSchedule`]: the number of transactions in the wave).
    pub fn record_root(&mut self, kind: SpanKind, start: Instant, class: u16) {
        let id = self.alloc();
        let span = Span {
            id,
            parent: 0,
            trace: id,
            kind,
            class,
            block: -1,
            node: self.node,
            start_ns: self.ns(start),
            dur_ns: Instant::now().saturating_duration_since(start).as_nanos() as u64,
            flags: 0,
        };
        self.ring.push(span);
    }

    /// Record a leaf span of `kind` from `start` to now, parented to the
    /// open attempt. A no-op when no attempt is open.
    pub fn record_plain(&mut self, kind: SpanKind, start: Instant) {
        let Some(cur) = &self.cur else { return };
        let Some((attempt, _)) = cur.attempt else {
            return;
        };
        let id = self.alloc();
        self.push(id, attempt, kind, start, Instant::now(), 0);
    }

    /// A Block began executing as a closed-nested sub-transaction.
    pub fn block_start(&mut self, block: u32) {
        if let Some(cur) = &mut self.cur {
            cur.block = Some((block, Instant::now()));
        }
    }

    /// The current Block finished (`rolled_back` = child-scope rollback or
    /// escalation rather than a merge into the parent).
    pub fn block_end(&mut self, rolled_back: bool) {
        let Some(cur) = &mut self.cur else { return };
        let Some((block, start)) = cur.block.take() else {
            return;
        };
        let Some((attempt, _)) = cur.attempt else {
            return;
        };
        let trace = cur.trace;
        let id = self.alloc();
        let span = Span {
            id,
            parent: attempt,
            trace,
            kind: SpanKind::Block,
            class: 0,
            block: block as i32,
            node: self.node,
            start_ns: self.ns(start),
            dur_ns: Instant::now().saturating_duration_since(start).as_nanos() as u64,
            flags: if rolled_back { FLAG_ROLLED_BACK } else { 0 },
        };
        self.ring.push(span);
    }

    /// Finish: retained spans (oldest first) plus the ring summary.
    pub fn drain(mut self) -> (Vec<Span>, TraceSummary) {
        self.end_txn(false);
        self.ring.drain()
    }
}

/// A raw server-side span, still in `Instant` time (converted to
/// origin-relative nanoseconds at [`SpanCollector::drain`]).
#[derive(Debug, Clone, Copy)]
pub struct RawSpan {
    /// Parent span id (the client round span from the wire context).
    pub parent: u64,
    /// Trace id from the wire context.
    pub trace: u64,
    /// What the span measures (one of [`SpanKind::SERVER`]).
    pub kind: SpanKind,
    /// Server node id.
    pub node: u32,
    /// Span start.
    pub start: Instant,
    /// Span end.
    pub end: Instant,
    /// [`FLAG_ROLLED_BACK`] for refusals, else 0.
    pub flags: u32,
}

/// Shared bounded collector for server-side spans. Servers are
/// single-threaded but several share one collector, so the ring is behind
/// a mutex; recording happens only for messages that carried a trace
/// context, so untraced runs never touch it.
#[derive(Debug)]
pub struct SpanCollector {
    inner: Mutex<CollectorInner>,
}

#[derive(Debug)]
struct CollectorInner {
    buf: Vec<RawSpan>,
    cap: usize,
    head: usize,
    recorded: u64,
    dropped: u64,
    next: u64,
}

impl SpanCollector {
    /// A collector retaining at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        SpanCollector {
            inner: Mutex::new(CollectorInner {
                buf: Vec::with_capacity(cap),
                cap,
                head: 0,
                recorded: 0,
                dropped: 0,
                next: 0,
            }),
        }
    }

    /// Record one raw server span (overwrite-oldest when full).
    pub fn record(&self, s: RawSpan) {
        let mut inner = self.inner.lock().expect("span collector poisoned");
        inner.recorded += 1;
        if inner.buf.len() < inner.cap {
            inner.buf.push(s);
            inner.head = inner.buf.len() % inner.cap;
        } else {
            let head = inner.head;
            inner.buf[head] = s;
            inner.head = (head + 1) % inner.cap;
            inner.dropped += 1;
        }
    }

    /// Convert the retained raw spans to origin-relative [`Span`]s
    /// (oldest first) and return them with the collector's summary.
    /// Server span ids carry a dedicated bit so they can never collide with
    /// client ids.
    pub fn drain(&self, origin: Instant) -> (Vec<Span>, TraceSummary) {
        let mut inner = self.inner.lock().expect("span collector poisoned");
        let summary = TraceSummary {
            recorded: inner.recorded,
            dropped: inner.dropped,
            capacity: inner.cap as u64,
        };
        let mut raw: Vec<RawSpan> = Vec::with_capacity(inner.buf.len());
        if inner.buf.len() < inner.cap {
            raw.extend_from_slice(&inner.buf);
        } else {
            let head = inner.head;
            raw.extend_from_slice(&inner.buf[head..]);
            raw.extend_from_slice(&inner.buf[..head]);
        }
        inner.buf.clear();
        inner.head = 0;
        let mut out = Vec::with_capacity(raw.len());
        for r in raw {
            inner.next += 1;
            out.push(Span {
                id: SERVER_ID_BIT | inner.next,
                parent: r.parent,
                trace: r.trace,
                kind: r.kind,
                class: 0,
                block: -1,
                node: r.node,
                start_ns: r.start.saturating_duration_since(origin).as_nanos() as u64,
                dur_ns: r.end.saturating_duration_since(r.start).as_nanos() as u64,
                flags: r.flags,
            });
        }
        (out, summary)
    }
}

/// Per-Block share of one transaction's critical path (`block = -1`
/// collects commit-phase rounds and anything outside a Block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCost {
    /// Block index (`-1` = outside any Block).
    pub block: i32,
    /// Network + server-handle time of this Block's quorum rounds.
    pub net_ns: u64,
    /// Server inbox dwell carved out of those rounds (slowest responder).
    pub srvq_ns: u64,
    /// Client-side lock-wait sleeps in this Block.
    pub lock_ns: u64,
    /// WAL fsync stall carved out of those rounds (slowest responder's
    /// group-commit park).
    pub wal_ns: u64,
}

/// One committed transaction's critical-path decomposition. The six
/// segments telescope exactly:
/// `redo + lock + srvq + net + wal + local == end_to_end` (integer ns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnCritPath {
    /// Trace id of the transaction.
    pub trace: u64,
    /// Workload class (transaction template index).
    pub class: u16,
    /// End-to-end duration of the transaction span.
    pub end_to_end_ns: u64,
    /// Rollback redo: time from first attempt to the final (committing)
    /// attempt's start — all discarded work plus restart backoff.
    pub redo_ns: u64,
    /// Client-side lock-wait sleeps in the final attempt.
    pub lock_ns: u64,
    /// Server inbox dwell on the slowest responder of each final-attempt
    /// round.
    pub srvq_ns: u64,
    /// WAL fsync stall on the slowest responder of each final-attempt
    /// round (acks parked by group commit until their mark was durable).
    pub wal_ns: u64,
    /// The rest of the final attempt's quorum rounds: wire time plus
    /// server request execution.
    pub net_ns: u64,
    /// Everything else in the final attempt: local compute and
    /// bookkeeping.
    pub local_ns: u64,
    /// The `{net, srvq, lock}` split per Block.
    pub blocks: Vec<BlockCost>,
}

/// Decompose every *complete, committed* trace in `spans` into its
/// critical-path segments. Traces whose root or final attempt span was
/// dropped by the ring are skipped (completeness is reported separately),
/// as are the rare traces whose retained spans are mutually inconsistent.
pub fn critical_path(spans: &[Span]) -> Vec<TxnCritPath> {
    let mut by_trace: HashMap<u64, Vec<&Span>> = HashMap::new();
    for s in spans {
        by_trace.entry(s.trace).or_default().push(s);
    }
    let mut out: Vec<TxnCritPath> = Vec::new();
    for (trace, spans) in by_trace {
        let Some(txn) = spans
            .iter()
            .find(|s| s.kind == SpanKind::Txn && s.flags & FLAG_COMMITTED != 0)
        else {
            continue;
        };
        let Some(fin) = spans.iter().find(|s| {
            s.kind == SpanKind::Attempt && s.parent == txn.id && s.flags & FLAG_COMMITTED != 0
        }) else {
            continue;
        };
        let Some(redo) = fin.start_ns.checked_sub(txn.start_ns) else {
            continue;
        };
        let mut blocks: HashMap<i32, BlockCost> = HashMap::new();
        let mut consistent = true;
        for s in &spans {
            if s.parent != fin.id {
                continue;
            }
            if s.kind == SpanKind::LockWait {
                blocks.entry(s.block).or_default().lock_ns += s.dur_ns;
            } else if SpanKind::ROUNDS.contains(&s.kind) {
                let srvq = spans
                    .iter()
                    .filter(|c| c.parent == s.id && c.kind == SpanKind::ServerQueue)
                    .map(|c| c.dur_ns)
                    .max()
                    .unwrap_or(0)
                    .min(s.dur_ns);
                // The slowest responder's fsync stall is carved after the
                // queue dwell, so the three server-side shares can never
                // exceed the round they were carved from.
                let wal = spans
                    .iter()
                    .filter(|c| c.parent == s.id && c.kind == SpanKind::WalPark)
                    .map(|c| c.dur_ns)
                    .max()
                    .unwrap_or(0)
                    .min(s.dur_ns - srvq);
                let b = blocks.entry(s.block).or_default();
                b.srvq_ns += srvq;
                b.wal_ns += wal;
                b.net_ns += s.dur_ns - srvq - wal;
            }
        }
        let mut lock = 0u64;
        let mut srvq = 0u64;
        let mut net = 0u64;
        let mut wal = 0u64;
        let mut rows: Vec<BlockCost> = blocks
            .into_iter()
            .map(|(block, mut c)| {
                c.block = block;
                lock += c.lock_ns;
                srvq += c.srvq_ns;
                net += c.net_ns;
                wal += c.wal_ns;
                c
            })
            .collect();
        rows.sort_by_key(|c| c.block);
        let spent = redo.checked_add(lock).and_then(|v| {
            v.checked_add(srvq)
                .and_then(|v| v.checked_add(net).and_then(|v| v.checked_add(wal)))
        });
        let local = match spent.and_then(|v| txn.dur_ns.checked_sub(v)) {
            Some(l) => l,
            None => {
                consistent = false;
                0
            }
        };
        if !consistent {
            continue;
        }
        out.push(TxnCritPath {
            trace,
            class: txn.class,
            end_to_end_ns: txn.dur_ns,
            redo_ns: redo,
            lock_ns: lock,
            srvq_ns: srvq,
            wal_ns: wal,
            net_ns: net,
            local_ns: local,
            blocks: rows,
        });
    }
    out.sort_by_key(|p| p.trace);
    out
}

/// Aggregate per-transaction decompositions into `(class, block)` rows for
/// the metrics report. `class_name` maps the template index to its name.
/// Transaction-level segments (`redo`, `local`) land on each class's
/// `block = -1` row; per-Block `{net, srvq, lock}` land on their Block's
/// row. `txns` counts the transactions contributing to each row.
pub fn aggregate_critpath<F: Fn(u16) -> String>(
    paths: &[TxnCritPath],
    class_name: F,
) -> Vec<crate::registry::CritPathRow> {
    use std::collections::BTreeMap;
    fn row<'a, F: Fn(u16) -> String>(
        rows: &'a mut BTreeMap<(u16, i64), crate::registry::CritPathRow>,
        class_name: &F,
        class: u16,
        block: i64,
    ) -> &'a mut crate::registry::CritPathRow {
        rows.entry((class, block))
            .or_insert_with(|| crate::registry::CritPathRow {
                class: class_name(class),
                block,
                ..Default::default()
            })
    }
    let mut rows: BTreeMap<(u16, i64), crate::registry::CritPathRow> = BTreeMap::new();
    for p in paths {
        let r = row(&mut rows, &class_name, p.class, -1);
        r.txns += 1;
        r.local_ns += p.local_ns;
        r.redo_ns += p.redo_ns;
        for b in &p.blocks {
            let r = row(&mut rows, &class_name, p.class, b.block as i64);
            if b.block != -1 {
                r.txns += 1;
            }
            r.net_ns += b.net_ns;
            r.srvq_ns += b.srvq_ns;
            r.lock_ns += b.lock_ns;
            r.wal_ns += b.wal_ns;
        }
    }
    rows.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn kind_labels_round_trip() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::from_label(k.label()), Some(k));
        }
        assert_eq!(SpanKind::from_label("nope"), None);
    }

    #[test]
    fn spans_stay_small() {
        // The ring pre-allocates capacity × size_of::<Span>() bytes; the
        // default 16 Ki ring must stay close to a megabyte per thread.
        assert!(std::mem::size_of::<Span>() <= 72);
    }

    #[test]
    fn tracer_builds_a_parented_trace() {
        let origin = Instant::now();
        let mut t = Tracer::new(origin, 7, 0, 64);
        t.start_txn(3);
        t.begin_attempt();
        let p = t.start_round(SpanKind::ReadRound).expect("attempt open");
        let ctx = p.ctx();
        t.end_round(p, false);
        t.block_start(1);
        let lw = Instant::now();
        t.record_plain(SpanKind::LockWait, lw);
        t.block_end(false);
        t.end_txn(true);
        let (spans, summary) = t.drain();
        assert_eq!(summary.dropped, 0);
        let txn = spans.iter().find(|s| s.kind == SpanKind::Txn).unwrap();
        assert_eq!(txn.flags & FLAG_COMMITTED, FLAG_COMMITTED);
        assert_eq!(txn.class, 3);
        assert_eq!(txn.id, txn.trace);
        let attempt = spans.iter().find(|s| s.kind == SpanKind::Attempt).unwrap();
        assert_eq!(attempt.parent, txn.id);
        assert_eq!(attempt.flags & FLAG_COMMITTED, FLAG_COMMITTED);
        let round = spans
            .iter()
            .find(|s| s.kind == SpanKind::ReadRound)
            .unwrap();
        assert_eq!(round.parent, attempt.id);
        assert_eq!(ctx.span, round.id);
        assert_eq!(ctx.trace, txn.trace);
        let block = spans.iter().find(|s| s.kind == SpanKind::Block).unwrap();
        assert_eq!(block.block, 1);
        let lockw = spans.iter().find(|s| s.kind == SpanKind::LockWait).unwrap();
        assert_eq!(lockw.block, 1, "lock wait inside Block 1 is labeled so");
        assert!(spans.iter().all(|s| s.node == 7));
    }

    #[test]
    fn tracer_is_inert_outside_transactions() {
        let mut t = Tracer::new(Instant::now(), 1, 0, 16);
        t.begin_attempt();
        assert!(t.start_round(SpanKind::ReadRound).is_none());
        t.record_plain(SpanKind::LockWait, Instant::now());
        t.block_start(0);
        t.block_end(false);
        t.end_txn(true);
        let (spans, summary) = t.drain();
        assert!(spans.is_empty());
        assert_eq!(summary.recorded, 0);
    }

    #[test]
    fn restart_closes_the_previous_attempt_as_rolled_back() {
        let mut t = Tracer::new(Instant::now(), 1, 0, 64);
        t.start_txn(0);
        t.begin_attempt();
        t.begin_attempt(); // restart
        t.end_txn(true);
        let (spans, _) = t.drain();
        let attempts: Vec<&Span> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Attempt)
            .collect();
        assert_eq!(attempts.len(), 2);
        assert_eq!(attempts[0].flags, FLAG_ROLLED_BACK);
        assert_eq!(attempts[1].flags, FLAG_COMMITTED);
    }

    #[test]
    fn span_ring_drops_oldest_and_reports_it() {
        let origin = Instant::now();
        let mut t = Tracer::new(origin, 1, 0, 2);
        t.start_txn(0);
        t.begin_attempt();
        for _ in 0..4 {
            let p = t.start_round(SpanKind::ReadRound).unwrap();
            t.end_round(p, false);
        }
        t.end_txn(true);
        let (spans, summary) = t.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(summary.recorded, 6);
        assert_eq!(summary.dropped, 4);
        assert_eq!(summary.capacity, 2);
    }

    #[test]
    fn collector_ids_never_collide_with_client_ids() {
        let origin = Instant::now();
        let col = SpanCollector::new(8);
        let now = Instant::now();
        col.record(RawSpan {
            parent: 42,
            trace: 41,
            kind: SpanKind::ServerQueue,
            node: 2,
            start: now,
            end: now + Duration::from_micros(5),
            flags: 0,
        });
        let (spans, summary) = col.drain(origin);
        assert_eq!(spans.len(), 1);
        assert_eq!(summary.recorded, 1);
        assert!(spans[0].id & SERVER_ID_BIT != 0);
        assert_eq!(spans[0].parent, 42);
        assert!(spans[0].dur_ns >= 5_000);
    }

    /// Hand-build a two-attempt trace and check the telescoping invariant.
    #[test]
    fn critical_path_sums_exactly() {
        let mk = |id, parent, kind, block, start_ns, dur_ns, flags| Span {
            id,
            parent,
            trace: 100,
            kind,
            class: 2,
            block,
            node: 0,
            start_ns,
            dur_ns,
            flags,
        };
        let spans = vec![
            mk(100, 0, SpanKind::Txn, -1, 0, 1000, FLAG_COMMITTED),
            mk(101, 100, SpanKind::Attempt, -1, 0, 290, FLAG_ROLLED_BACK),
            mk(102, 100, SpanKind::Attempt, -1, 300, 700, FLAG_COMMITTED),
            // Final attempt: one read round in Block 0 with 40 ns of
            // server dwell on the slowest responder…
            mk(103, 102, SpanKind::ReadRound, 0, 310, 100, 0),
            mk(900, 103, SpanKind::ServerQueue, -1, 315, 25, 0),
            mk(901, 103, SpanKind::ServerQueue, -1, 315, 40, 0),
            // …a lock wait in Block 0, and a commit-phase prepare round
            // whose slowest responder parked its ack 30 ns for an fsync.
            mk(104, 102, SpanKind::LockWait, 0, 420, 50, 0),
            mk(105, 102, SpanKind::PrepareRound, -1, 500, 200, 0),
            mk(902, 105, SpanKind::WalPark, -1, 520, 30, 0),
            mk(903, 105, SpanKind::WalPark, -1, 520, 10, 0),
            // Rounds of the *failed* attempt must not count (they are redo).
            mk(106, 101, SpanKind::ReadRound, 0, 10, 100, 0),
        ];
        let paths = critical_path(&spans);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.class, 2);
        assert_eq!(p.end_to_end_ns, 1000);
        assert_eq!(p.redo_ns, 300);
        assert_eq!(p.lock_ns, 50);
        assert_eq!(p.srvq_ns, 40, "slowest responder's dwell, not the sum");
        assert_eq!(p.wal_ns, 30, "slowest responder's fsync park");
        assert_eq!(p.net_ns, (100 - 40) + (200 - 30));
        assert_eq!(
            p.redo_ns + p.lock_ns + p.srvq_ns + p.net_ns + p.wal_ns + p.local_ns,
            p.end_to_end_ns,
            "segments must telescope exactly"
        );
        assert_eq!(p.blocks.len(), 2);
        assert_eq!(p.blocks[0].block, -1);
        assert_eq!(p.blocks[0].net_ns, 170);
        assert_eq!(p.blocks[0].wal_ns, 30);
        assert_eq!(p.blocks[1].block, 0);
        assert_eq!(p.blocks[1].lock_ns, 50);
        assert_eq!(p.blocks[1].srvq_ns, 40);
    }

    #[test]
    fn critical_path_skips_uncommitted_and_incomplete_traces() {
        let txn_only = vec![Span {
            id: 1,
            parent: 0,
            trace: 1,
            kind: SpanKind::Txn,
            class: 0,
            block: -1,
            node: 0,
            start_ns: 0,
            dur_ns: 10,
            flags: FLAG_ROLLED_BACK,
        }];
        assert!(critical_path(&txn_only).is_empty(), "aborted txn skipped");
        let committed_without_attempt = vec![Span {
            flags: FLAG_COMMITTED,
            ..txn_only[0]
        }];
        assert!(
            critical_path(&committed_without_attempt).is_empty(),
            "ring-dropped attempt spans make the trace incomplete"
        );
    }

    #[test]
    fn aggregation_groups_by_class_and_block() {
        let p = TxnCritPath {
            trace: 1,
            class: 0,
            end_to_end_ns: 100,
            redo_ns: 10,
            lock_ns: 5,
            srvq_ns: 15,
            wal_ns: 4,
            net_ns: 26,
            local_ns: 40,
            blocks: vec![
                BlockCost {
                    block: -1,
                    net_ns: 10,
                    srvq_ns: 5,
                    lock_ns: 0,
                    wal_ns: 4,
                },
                BlockCost {
                    block: 0,
                    net_ns: 20,
                    srvq_ns: 10,
                    lock_ns: 5,
                    wal_ns: 0,
                },
            ],
        };
        let rows = aggregate_critpath(&[p.clone(), p], |c| format!("tpl{c}"));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].class, "tpl0");
        assert_eq!(rows[0].block, -1);
        assert_eq!(rows[0].txns, 2);
        assert_eq!(rows[0].redo_ns, 20);
        assert_eq!(rows[0].local_ns, 80);
        assert_eq!(rows[0].net_ns, 20, "block -1 rounds stay on the -1 row");
        assert_eq!(rows[1].block, 0);
        assert_eq!(rows[1].net_ns, 40);
        assert_eq!(rows[1].lock_ns, 10);
    }
}
