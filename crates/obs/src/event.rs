//! Structured transaction events and the abort taxonomy.
//!
//! Events are small `Copy` values so recording one into a
//! [`crate::TraceRing`] is a couple of integer stores — cheap enough to
//! leave enabled on every abort/commit/retry site of a saturation run.

use acn_txir::ObjectId;

/// Why an execution attempt (or one Block of it) was thrown away.
///
/// The executor kinds ([`AbortKind::EXECUTOR_KINDS`]) are emitted by the
/// nesting executor and map one-to-one onto its [`ExecStats`]-incrementing
/// sites, so `sum(attributed aborts over executor kinds) == full_aborts +
/// partial_aborts + locked_aborts`. Under speculative batch execution the
/// same sites emit the `Spec*` variants instead, so a report separates
/// scheduler mis-speculation from ordinary contention without disturbing
/// that invariant. The checkpoint runner uses its own two kinds so a mixed
/// run never conflates the two partial-rollback designs.
///
/// [`ExecStats`]: crate::ExecCounters
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbortKind {
    /// Child-scope rollback of one Block (the closed-nesting win).
    Partial,
    /// Incremental read validation surfaced stale read-set entries in the
    /// parent's history — full restart.
    ReadInvalid,
    /// Two-phase commit voted no (lock conflict or stale read at prepare).
    CommitConflict,
    /// A read kept hitting `protected` objects until the retry budget ran
    /// out.
    LockedOut,
    /// A livelocked child exhausted its partial-retry budget and escalated
    /// to a full restart.
    Escalated,
    /// Two-phase commit refused *only* because a quorum member was still
    /// catching up after a crash-with-amnesia — recovery back-pressure,
    /// not data contention (no stale and no locked object was named).
    SyncRefused,
    /// Two-phase commit refused *only* because a quorum member's WAL
    /// could not make the prepare grant durable (storage I/O errors or
    /// ENOSPC) — storage back-pressure, not data contention (no stale
    /// and no locked object was named).
    WalRefused,
    /// Mis-speculation under the batch scheduler recovered by a child-scope
    /// partial rollback — a conflict the static access sets missed, repaired
    /// from the offending Block instead of a full re-execution.
    SpecPartial,
    /// Mis-speculation under the batch scheduler that forced a full
    /// re-execution (Block-STM-style recovery; the ablation's other arm).
    SpecFull,
    /// A predicted-exact counter read observed a different value than the
    /// wave scheduler assumed: the access sets the wave was ordered by were
    /// wrong, and the Block holding the prediction was repaired by partial
    /// rollback (or, on the flat full-restart arm, the attempt restarted).
    /// Distinct from [`AbortKind::SpecPartial`] so the ablation separates
    /// wrong-prediction repair from ordinary missed conflicts.
    SpecMispredict,
    /// An `Open` resolved to an object already held by a *different*
    /// handle, voiding the dependency analysis's distinct-objects
    /// assumption; the attempt restarted as a flat (program-order)
    /// sequence, where aliasing is harmless.
    AliasedOpen,
    /// Checkpoint runner: rollback to an intermediate checkpoint.
    CkptRollback,
    /// Checkpoint runner: restart from the very beginning.
    CkptRestart,
}

impl AbortKind {
    /// The executor kinds whose attributed counts sum to
    /// `full_aborts + partial_aborts + locked_aborts` of the nesting
    /// executor's stats (everything except the checkpoint-runner kinds).
    pub const EXECUTOR_KINDS: [AbortKind; 11] = [
        AbortKind::Partial,
        AbortKind::ReadInvalid,
        AbortKind::CommitConflict,
        AbortKind::LockedOut,
        AbortKind::Escalated,
        AbortKind::SyncRefused,
        AbortKind::WalRefused,
        AbortKind::SpecPartial,
        AbortKind::SpecFull,
        AbortKind::SpecMispredict,
        AbortKind::AliasedOpen,
    ];

    /// Stable lower-case label used in the JSON-lines export.
    pub fn label(&self) -> &'static str {
        match self {
            AbortKind::Partial => "partial",
            AbortKind::ReadInvalid => "read_invalid",
            AbortKind::CommitConflict => "commit_conflict",
            AbortKind::LockedOut => "locked_out",
            AbortKind::Escalated => "escalated",
            AbortKind::SyncRefused => "sync_refused",
            AbortKind::WalRefused => "wal_refused",
            AbortKind::SpecPartial => "spec_partial",
            AbortKind::SpecFull => "spec_full",
            AbortKind::SpecMispredict => "spec_mispredict",
            AbortKind::AliasedOpen => "aliased_open",
            AbortKind::CkptRollback => "ckpt_rollback",
            AbortKind::CkptRestart => "ckpt_restart",
        }
    }

    /// Inverse of [`AbortKind::label`] (JSON-lines import).
    pub fn from_label(s: &str) -> Option<AbortKind> {
        Some(match s {
            "partial" => AbortKind::Partial,
            "read_invalid" => AbortKind::ReadInvalid,
            "commit_conflict" => AbortKind::CommitConflict,
            "locked_out" => AbortKind::LockedOut,
            "escalated" => AbortKind::Escalated,
            "sync_refused" => AbortKind::SyncRefused,
            "wal_refused" => AbortKind::WalRefused,
            "spec_partial" => AbortKind::SpecPartial,
            "spec_full" => AbortKind::SpecFull,
            "spec_mispredict" => AbortKind::SpecMispredict,
            "aliased_open" => AbortKind::AliasedOpen,
            "ckpt_rollback" => AbortKind::CkptRollback,
            "ckpt_restart" => AbortKind::CkptRestart,
            _ => return None,
        })
    }
}

impl std::fmt::Display for AbortKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured event in a transaction's life, recorded into the
/// per-thread [`crate::TraceRing`].
///
/// `block` is the index into the Block sequence where the event happened;
/// `None` means the flat (single-Block) body or the commit phase, where no
/// sub-transaction scope exists. `obj` is the first object the DTM blamed,
/// when it blamed any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnEvent {
    /// An execution attempt started (one per full restart).
    Begin,
    /// A Block started executing as a closed-nested sub-transaction.
    BlockStart {
        /// Index into the Block sequence.
        block: u32,
    },
    /// A batched quorum read round fetched this Block's prefetchable opens.
    BatchedRead {
        /// Block the round belongs to (`None` = flat body).
        block: Option<u32>,
        /// Number of objects fetched in the round.
        objs: u32,
    },
    /// A child-scope rollback: only this Block re-runs.
    PartialAbort {
        /// Block that rolled back.
        block: u32,
        /// First object blamed by the invalidation.
        obj: Option<ObjectId>,
        /// Why ([`AbortKind::Partial`] from the executor).
        kind: AbortKind,
    },
    /// A full restart: the whole transaction re-runs from the top.
    FullAbort {
        /// Block in which the conflict surfaced (`None` = flat body or
        /// commit phase).
        block: Option<u32>,
        /// First object blamed, when the DTM blamed one.
        obj: Option<ObjectId>,
        /// Why.
        kind: AbortKind,
    },
    /// Update-mode opens acquired by this Block (or flat body) — each one
    /// is a commit-time lock claim the wasted-work ledger charges to the
    /// scope that discards it.
    LockHolds {
        /// Block the locks belong to (`None` = flat body).
        block: Option<u32>,
        /// Number of update-mode opens recorded.
        holds: u32,
    },
    /// A quorum-unavailable round was absorbed by the retry policy.
    UnavailableRetry,
    /// The transaction committed.
    Commit {
        /// Full restarts this run absorbed before committing.
        restarts: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for k in [
            AbortKind::Partial,
            AbortKind::ReadInvalid,
            AbortKind::CommitConflict,
            AbortKind::LockedOut,
            AbortKind::Escalated,
            AbortKind::SyncRefused,
            AbortKind::WalRefused,
            AbortKind::SpecPartial,
            AbortKind::SpecFull,
            AbortKind::SpecMispredict,
            AbortKind::AliasedOpen,
            AbortKind::CkptRollback,
            AbortKind::CkptRestart,
        ] {
            assert_eq!(AbortKind::from_label(k.label()), Some(k));
        }
        assert_eq!(AbortKind::from_label("nope"), None);
    }

    #[test]
    fn events_are_small() {
        // The ring pre-allocates capacity × size_of::<TxnEvent>() bytes;
        // keep the event word-sized-ish so a 4096-slot ring stays ≪ 1 MiB.
        assert!(std::mem::size_of::<TxnEvent>() <= 48);
    }
}
