//! Property tests for the live-telemetry structures: histogram merge is a
//! true monoid operation, quantiles obey their advertised error bound, and
//! the window grid never drifts under idle gaps — the property-level
//! extension of the `ContentionWindow` rotation regressions in `acn-dtm`.

use acn_obs::{LogHistogram, WindowedSeries};
use proptest::prelude::*;

fn histogram(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Samples spanning every magnitude the histogram will ever see, from
/// sub-microsecond to "the clock wrapped".
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        64u64..100_000,
        100_000u64..10_000_000_000,
        any::<u64>(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// merge(a, b) == merge(b, a) == recording everything into one
    /// histogram: the lossless-merge claim, stated as commutativity plus
    /// agreement with the ground-truth single-pass histogram.
    #[test]
    fn merge_is_commutative_and_lossless(
        xs in prop::collection::vec(sample(), 0..200),
        ys in prop::collection::vec(sample(), 0..200),
    ) {
        let mut ab = histogram(&xs);
        ab.merge(&histogram(&ys));
        let mut ba = histogram(&ys);
        ba.merge(&histogram(&xs));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(&ab, &histogram(&all));
        prop_assert_eq!(ab.len(), (xs.len() + ys.len()) as u64);
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): merge order never matters, so the
    /// per-thread → per-run → cross-run aggregation tree is sound.
    #[test]
    fn merge_is_associative(
        xs in prop::collection::vec(sample(), 0..100),
        ys in prop::collection::vec(sample(), 0..100),
        zs in prop::collection::vec(sample(), 0..100),
    ) {
        let mut left = histogram(&xs);
        left.merge(&histogram(&ys));
        left.merge(&histogram(&zs));
        let mut yz = histogram(&ys);
        yz.merge(&histogram(&zs));
        let mut right = histogram(&xs);
        right.merge(&yz);
        prop_assert_eq!(left, right);
    }

    /// Every reported quantile covers the true order statistic from above
    /// and overshoots by at most one sub-bucket width (≤ true/32 + 1): the
    /// bounded-error claim, checked against a sorted copy of the samples.
    #[test]
    fn quantile_error_stays_within_one_bucket(
        values in prop::collection::vec(sample(), 1..300),
        q in 0.0f64..=1.0,
    ) {
        let h = histogram(&values);
        let mut values = values;
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).max(1);
        let truth = values[rank - 1];
        let got = h.quantile(q).expect("non-empty");
        prop_assert!(got >= truth, "quantile {got} below true sample {truth}");
        let bound = (truth as f64) * (1.0 + 1.0 / 32.0) + 1.0;
        prop_assert!(
            got as f64 <= bound,
            "quantile {got} overshoots true sample {truth} past {bound}"
        );
    }

    /// The window grid is a pure function of the timestamp: events land in
    /// window `t / width` no matter the arrival order, and idle gaps leave
    /// their windows absent instead of zero-filled or drifted.
    #[test]
    fn window_grid_never_drifts_under_idle_gaps(
        width in 1u64..=1_000_000,
        stamps in prop::collection::vec(0u64..u64::MAX / 2, 1..100),
        shuffle_seed in any::<u64>(),
    ) {
        let mut in_order = WindowedSeries::new(width);
        for &t in &stamps {
            in_order.record_commit(t, 1);
        }
        // A deterministic shuffle: arrival order must be irrelevant.
        let mut shuffled = stamps.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut out_of_order = WindowedSeries::new(width);
        for &t in &shuffled {
            out_of_order.record_commit(t, 1);
        }
        prop_assert_eq!(&in_order, &out_of_order);
        // Exactly the windows that saw an event exist — no zero-filling
        // across gaps, no drift: each index is its timestamps' quotient.
        let mut expect: Vec<u64> = stamps.iter().map(|t| t / width).collect();
        expect.sort_unstable();
        expect.dedup();
        let got: Vec<u64> = in_order.iter().map(|(i, _)| i).collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(in_order.total_commits(), stamps.len() as u64);
    }

    /// Series merge distributes over the cells: merging per-thread series
    /// equals one series fed every event, including the abort counters.
    #[test]
    fn series_merge_is_lossless(
        width in 1u64..=100_000,
        a in prop::collection::vec((0u64..10_000_000, 1u64..1000, 0u64..3, 0u64..5), 0..80),
        b in prop::collection::vec((0u64..10_000_000, 1u64..1000, 0u64..3, 0u64..5), 0..80),
    ) {
        let feed = |s: &mut WindowedSeries, evs: &[(u64, u64, u64, u64)]| {
            for &(t, lat, full, partial) in evs {
                s.record_commit(t, lat);
                s.record_aborts(t, full, partial);
            }
        };
        let mut sa = WindowedSeries::new(width);
        let mut sb = WindowedSeries::new(width);
        let mut all = WindowedSeries::new(width);
        feed(&mut sa, &a);
        feed(&mut sb, &b);
        feed(&mut all, &a);
        feed(&mut all, &b);
        sa.merge(&sb);
        prop_assert_eq!(sa, all);
    }
}
