//! Property tests for the conflict-graph wave scheduler.
//!
//! The batch driver dispatches a transaction the moment its conflict
//! indegree drains to zero, so the safety of speculative batch execution
//! reduces to one graph property: **every conflicting pair is connected by
//! exactly one directed edge** (the planner orients by conflict-graph
//! color, so the direction need not follow arrival order). These tests pin
//! that down, plus the DAG invariants the dispatcher relies on, and drive
//! a randomized dispatch simulation asserting that two transactions with
//! intersecting write sets (or a write/read intersection) are never in
//! flight together.

use acn_core::{conflicts, plan_wave};
use acn_txir::{ObjClass, ObjectId, ResolvedAccess};
use proptest::prelude::*;

const CLASSES: [ObjClass; 3] = [
    ObjClass::new(0, "c0"),
    ObjClass::new(1, "c1"),
    ObjClass::new(2, "c2"),
];

/// Build one access set over a small object space (3 classes × 8 indices)
/// so waves actually collide. `exact = false` drops the object sets to the
/// class level, exercising the pessimistic fallback.
fn access(reads: Vec<(u8, u8)>, writes: Vec<(u8, u8)>, exact: bool) -> ResolvedAccess {
    let obj = |&(c, i): &(u8, u8)| ObjectId::new(CLASSES[(c % 3) as usize], (i % 8) as u64);
    let mut w: Vec<ObjectId> = writes.iter().map(obj).collect();
    w.sort_unstable();
    w.dedup();
    let mut r: Vec<ObjectId> = reads.iter().map(obj).collect();
    r.extend(w.iter().copied());
    r.sort_unstable();
    r.dedup();
    let mut rc: Vec<u16> = r.iter().map(|o| o.class.id).collect();
    rc.sort_unstable();
    rc.dedup();
    let mut wc: Vec<u16> = w.iter().map(|o| o.class.id).collect();
    wc.sort_unstable();
    wc.dedup();
    ResolvedAccess {
        reads: if exact { r } else { Vec::new() },
        writes: if exact { w } else { Vec::new() },
        read_classes: rc,
        write_classes: wc,
        exact,
        predicted: Vec::new(),
        blind: Vec::new(),
    }
}

fn wave_strategy() -> impl Strategy<Value = Vec<ResolvedAccess>> {
    let one = (
        prop::collection::vec((0u8..3, 0u8..8), 0..4),
        prop::collection::vec((0u8..3, 0u8..8), 0..4),
        0u32..100,
    )
        .prop_map(|(r, w, x)| access(r, w, x < 85));
    prop::collection::vec(one, 0..24)
}

/// The ground-truth conflict test, written independently of the scheduler:
/// intersecting write sets or a write/read intersection. For an inexact
/// participant the only sound object information is its class sets, so the
/// test degrades the same way the scheduler must.
fn must_not_coschedule(a: &ResolvedAccess, b: &ResolvedAccess) -> bool {
    if a.exact && b.exact {
        let hit = |xs: &[ObjectId], ys: &[ObjectId]| xs.iter().any(|x| ys.contains(x));
        hit(&a.writes, &b.writes) || hit(&a.writes, &b.reads) || hit(&b.writes, &a.reads)
    } else {
        let touch = |w: &[u16], r: &[u16]| w.iter().any(|c| r.contains(c));
        touch(&a.write_classes, &b.read_classes) || touch(&b.write_classes, &a.read_classes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Edge completeness: the plan has exactly one directed edge for each
    /// conflicting pair (in either direction) and none for the rest.
    #[test]
    fn edges_cover_exactly_the_conflicting_pairs(wave in wave_strategy()) {
        let plan = plan_wave(&wave);
        prop_assert_eq!(plan.n, wave.len());
        for j in 0..wave.len() {
            for i in 0..j {
                let fwd = plan.succs[i].contains(&j);
                let bwd = plan.succs[j].contains(&i);
                prop_assert_eq!(
                    fwd || bwd,
                    must_not_coschedule(&wave[i], &wave[j]),
                    "pair ({}, {}) mis-classified", i, j
                );
                prop_assert!(!(fwd && bwd), "double edge between {} and {}", i, j);
            }
        }
    }

    /// DAG bookkeeping the dispatcher trusts: indegrees count incoming
    /// edges, sources have indegree zero, layers strictly increase along
    /// every edge (which also proves acyclicity), and the scheduler's own
    /// conflict test matches the ground truth.
    #[test]
    fn plan_invariants_hold(wave in wave_strategy()) {
        let plan = plan_wave(&wave);
        let mut indeg = vec![0usize; plan.n];
        for (i, ss) in plan.succs.iter().enumerate() {
            for &j in ss {
                indeg[j] += 1;
                prop_assert!(
                    plan.layer[j] > plan.layer[i],
                    "layer must increase along {}→{}", i, j
                );
            }
        }
        prop_assert_eq!(&indeg, &plan.indegree);
        for &s in &plan.sources() {
            prop_assert_eq!(plan.indegree[s], 0);
        }
        for j in 0..wave.len() {
            for i in 0..j {
                prop_assert_eq!(
                    conflicts(&wave[i], &wave[j]),
                    must_not_coschedule(&wave[i], &wave[j])
                );
            }
        }
    }

    /// Dispatch simulation: start any transaction whose conflict indegree
    /// has drained, complete in-flight ones in generator-chosen order, and
    /// assert that no two transactions with intersecting write sets (or a
    /// write/read intersection) are ever in flight together.
    #[test]
    fn dispatch_never_coschedules_conflicts(
        wave in wave_strategy(),
        choices in prop::collection::vec(any::<u32>(), 0..96),
    ) {
        let plan = plan_wave(&wave);
        let mut indeg = plan.indegree.clone();
        let mut started = vec![false; plan.n];
        let mut running: Vec<usize> = Vec::new();
        let mut done = 0usize;
        let mut pick = choices.into_iter().cycle();
        while done < plan.n {
            let ready: Vec<usize> =
                (0..plan.n).filter(|&i| !started[i] && indeg[i] == 0).collect();
            let c = pick.next().unwrap_or(0) as usize;
            // Alternate pseudo-randomly between starting ready work and
            // retiring running work; always make progress.
            if !ready.is_empty() && (running.is_empty() || c.is_multiple_of(2)) {
                let i = ready[c % ready.len()];
                for &r in &running {
                    prop_assert!(
                        !must_not_coschedule(&wave[r], &wave[i]),
                        "co-scheduled conflicting {} and {}", r, i
                    );
                }
                started[i] = true;
                running.push(i);
            } else {
                let pos = c % running.len();
                let i = running.swap_remove(pos);
                for &j in &plan.succs[i] {
                    indeg[j] -= 1;
                }
                done += 1;
            }
        }
        prop_assert!(running.is_empty());
    }
}
