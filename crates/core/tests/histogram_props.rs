//! Property tests for the log-bucketed latency histogram.
//!
//! The histogram backs every latency number the benches report, so its
//! contract is pinned down here: percentiles are monotone in the quantile,
//! merging per-thread histograms is indistinguishable from recording into
//! one, and the bucketing error stays within one geometric growth step.

use acn_core::LatencyHistogram;
use proptest::prelude::*;
use std::time::Duration;

/// Build a histogram from microsecond samples.
fn hist_of(micros: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &us in micros {
        h.record(Duration::from_micros(us));
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any sample set, a higher quantile never reports a lower value.
    #[test]
    fn percentile_is_monotone_in_q(
        micros in prop::collection::vec(1u64..100_000_000, 1..64),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = hist_of(&micros);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let plo = h.percentile(lo).unwrap();
        let phi = h.percentile(hi).unwrap();
        prop_assert!(plo <= phi, "p({lo}) = {plo:?} > p({hi}) = {phi:?}");
    }

    /// Merging two per-thread histograms is equivalent to recording every
    /// sample into a single one: same count, same value at every quantile.
    #[test]
    fn merge_agrees_with_direct_recording(
        left in prop::collection::vec(1u64..100_000_000, 0..48),
        right in prop::collection::vec(1u64..100_000_000, 0..48),
    ) {
        let mut merged = hist_of(&left);
        merged.merge(&hist_of(&right));
        let mut all = left.clone();
        all.extend_from_slice(&right);
        let direct = hist_of(&all);
        prop_assert_eq!(merged.len(), direct.len());
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(
                merged.percentile(q), direct.percentile(q),
                "quantile {} disagrees", q
            );
        }
    }

    /// A single sample is reported as its bucket's upper bound: never
    /// below the true value (modulo float rounding) and at most one ~8 %
    /// growth step above it.
    #[test]
    fn bucket_error_is_within_one_growth_step(us in 1u64..100_000_000) {
        let mut h = LatencyHistogram::new();
        let d = Duration::from_micros(us);
        h.record(d);
        let p = h.percentile(1.0).unwrap().as_nanos() as f64;
        let true_nanos = d.as_nanos() as f64;
        prop_assert!(p >= true_nanos * 0.995, "{p} under-reports {true_nanos}");
        prop_assert!(
            p <= true_nanos * 1.09,
            "{p} exceeds one growth step above {true_nanos}"
        );
    }
}
