//! Property tests: the decomposition is semantics-preserving.
//!
//! For randomly generated transaction programs and arbitrary contention
//! levels, the Algorithm Module's Block sequence must (a) be a legal
//! schedule of the template, and (b) produce exactly the same final shared
//! state as flat execution — closed nesting, Step-1 re-attachment, Step-2
//! merging and Step-3 reordering are never allowed to change what a
//! transaction *does*.

use acn_core::{AlgorithmConfig, AlgorithmModule, BlockSeq, ExecStats, ExecutorEngine, SumModel};
use acn_dtm::{Cluster, ClusterConfig, TxnCtx};
use acn_txir::{ComputeOp, DependencyModel, FieldId, ObjClass, ObjectId, ProgramBuilder, Value};
use proptest::prelude::*;
use std::collections::HashMap;

const CLASSES: [ObjClass; 4] = [
    ObjClass::new(0, "K0"),
    ObjClass::new(1, "K1"),
    ObjClass::new(2, "K2"),
    ObjClass::new(3, "K3"),
];
const F0: FieldId = FieldId(0);
const F1: FieldId = FieldId(1);

/// One random cross-object operation: read `src.field`, combine with a
/// constant, write into `dst.field'`.
#[derive(Debug, Clone)]
struct Op {
    src: usize,
    dst: usize,
    from_f1: bool,
    to_f1: bool,
    amount: i64,
    mul: bool,
}

/// A random program: a set of opens followed by cross-object operations.
#[derive(Debug, Clone)]
struct Spec {
    opens: Vec<(usize, u8)>, // (class index, object index)
    ops: Vec<Op>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    // Distinct (class, index) pairs: the IR contract (shared with the
    // paper's Soot analysis) is that distinct opens reference distinct
    // objects — aliased handles with interleaved writes are out of scope
    // for reordering (see `acn_txir` docs).
    let open = (0usize..4, 0u8..3);
    let opens = prop::collection::btree_set(open, 1..6)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>())
        .prop_shuffle();
    opens
        .prop_flat_map(|opens| {
            let n = opens.len();
            let op = (
                0usize..n,
                0usize..n,
                any::<bool>(),
                any::<bool>(),
                1i64..50,
                any::<bool>(),
            )
                .prop_map(|(src, dst, from_f1, to_f1, amount, mul)| Op {
                    src,
                    dst,
                    from_f1,
                    to_f1,
                    amount,
                    mul,
                });
            (Just(opens), prop::collection::vec(op, 0..8))
        })
        .prop_map(|(opens, ops)| Spec { opens, ops })
}

fn build(spec: &Spec) -> (DependencyModel, Vec<ObjectId>) {
    let mut b = ProgramBuilder::new("prop/random", 0);
    let mut handles = Vec::new();
    let mut objects = Vec::new();
    for &(c, i) in &spec.opens {
        let class = CLASSES[c];
        handles.push(b.open_update(class, i64::from(i)));
        objects.push(ObjectId::new(class, u64::from(i)));
    }
    for op in &spec.ops {
        let sf = if op.from_f1 { F1 } else { F0 };
        let df = if op.to_f1 { F1 } else { F0 };
        let v = b.get(handles[op.src], sf);
        let combined = if op.mul {
            b.compute(ComputeOp::Mul, [v.into(), op.amount.into()])
        } else {
            b.add(v, op.amount)
        };
        b.set(handles[op.dst], df, combined);
    }
    let dm = DependencyModel::analyze(b.finish()).expect("generated program is valid");
    objects.sort_unstable();
    objects.dedup();
    (dm, objects)
}

/// Execute `seq` on a fresh single-client cluster; return the final state
/// of every touched object.
fn final_state(dm: &DependencyModel, seq: &BlockSeq, objects: &[ObjectId]) -> Vec<(i64, i64)> {
    let cluster = Cluster::start(ClusterConfig::test(4, 1));
    let mut client = cluster.client(0);
    // Seed distinct values so reads are distinguishable.
    {
        let mut ctx = TxnCtx::begin(&mut client);
        for (k, &obj) in objects.iter().enumerate() {
            ctx.open(&mut client, obj, true).unwrap();
            ctx.set_field(obj, F0, Value::Int(100 + k as i64));
            ctx.set_field(obj, F1, Value::Int(1000 + k as i64));
        }
        ctx.commit(&mut client).unwrap();
    }
    let engine = ExecutorEngine::default();
    let mut stats = ExecStats::default();
    engine
        .run(&mut client, &dm.program, &[], seq, &mut stats)
        .expect("uncontended run commits");
    let mut out = Vec::new();
    let mut ctx = TxnCtx::begin(&mut client);
    for &obj in objects {
        ctx.open(&mut client, obj, false).unwrap();
        out.push((
            ctx.get_field(obj, F0).as_int().unwrap(),
            ctx.get_field(obj, F1).as_int().unwrap(),
        ));
    }
    ctx.commit(&mut client).unwrap();
    cluster.shutdown();
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case boots three clusters
        .. ProptestConfig::default()
    })]

    /// Flat, per-unit-nested and ACN-recomposed execution agree on the
    /// final shared state.
    #[test]
    fn decompositions_agree_on_final_state(
        spec in spec_strategy(),
        levels in prop::collection::vec(0.0f64..30.0, 4),
    ) {
        let (dm, objects) = build(&spec);
        let class_levels: HashMap<u16, f64> =
            (0u16..4).map(|c| (c, levels[c as usize])).collect();
        let module = AlgorithmModule::with_model(Box::new(SumModel));
        let adapted = module.recompute(&dm, &class_levels);
        adapted.assert_respects_dependencies(&dm);

        let flat = final_state(&dm, &BlockSeq::flat(&dm), &objects);
        let per_unit = final_state(&dm, &BlockSeq::from_units(&dm), &objects);
        let acn = final_state(&dm, &adapted, &objects);
        prop_assert_eq!(&flat, &per_unit, "per-unit nesting diverged");
        prop_assert_eq!(&flat, &acn, "ACN recomposition diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure-algorithm invariants, no cluster: every recomputed Block
    /// sequence is a legal, complete schedule regardless of thresholds
    /// and contention inputs.
    #[test]
    fn recompute_always_yields_legal_schedules(
        spec in spec_strategy(),
        levels in prop::collection::vec(0.0f64..100.0, 4),
        rel in 0.0f64..2.0,
        abs in 0.0f64..10.0,
    ) {
        let (dm, _) = build(&spec);
        let class_levels: HashMap<u16, f64> =
            (0u16..4).map(|c| (c, levels[c as usize])).collect();
        let module = AlgorithmModule::new(
            AlgorithmConfig { rel_threshold: rel, abs_threshold: abs },
            Box::new(SumModel),
        );
        let seq = module.recompute(&dm, &class_levels);
        seq.assert_respects_dependencies(&dm); // panics on violation
        // Every unit appears exactly once.
        let mut units: Vec<usize> = seq.block_units.iter().flatten().copied().collect();
        units.sort_unstable();
        prop_assert_eq!(units, (0..dm.unit_count()).collect::<Vec<_>>());
    }

    /// Monotone hot-last: with a unique hottest class and no dependencies
    /// forcing otherwise, the hottest class's opens never execute first.
    #[test]
    fn hottest_block_is_never_first_when_free(
        hot_class in 0u16..4,
        cool in 0.0f64..1.0,
    ) {
        // Independent opens of all four classes.
        let mut b = ProgramBuilder::new("prop/independent", 0);
        for (i, class) in CLASSES.iter().enumerate() {
            let h = b.open_update(*class, i as i64);
            b.set(h, F0, 1i64);
        }
        let dm = DependencyModel::analyze(b.finish()).unwrap();
        let class_levels: HashMap<u16, f64> = (0u16..4)
            .map(|c| (c, if c == hot_class { 50.0 } else { cool }))
            .collect();
        let module = AlgorithmModule::with_model(Box::new(SumModel));
        let seq = module.recompute(&dm, &class_levels);
        if seq.len() > 1 {
            let first = &seq.block_units[0];
            prop_assert!(
                !first.contains(&(hot_class as usize)),
                "hot unit leads the schedule: {:?}",
                seq.block_units
            );
        }
    }
}
