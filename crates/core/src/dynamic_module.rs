//! The Dynamic Module: client-side contention sampling.
//!
//! "This module collects run-time parameters such as objects' write and
//! abort ratios and feeds them as input to the Algorithm Module." The
//! server half (windowed write counters) lives in `acn-dtm`; this half
//! queries a read quorum and smooths the samples so a single noisy window
//! does not thrash the Block sequence.

use acn_dtm::{ContentionSample, DtmClient, DtmError};
use std::collections::HashMap;

/// Which of the collected run-time parameters drives the contention level
/// fed to the Algorithm Module.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LevelMetric {
    /// Write counts in the last window — the paper's default
    /// approximation.
    #[default]
    Writes,
    /// Prepare-rejection (abort) ratios only.
    Aborts,
    /// `writes + abort_weight · aborts` — hot spots that cause aborts
    /// weigh extra.
    Combined {
        /// Weight applied to the abort ratio.
        abort_weight: f64,
    },
}

/// Per-class contention sampler with exponential smoothing.
#[derive(Debug, Clone)]
pub struct DynamicModule {
    /// Classes this module tracks (the classes its template opens).
    classes: Vec<u16>,
    /// EWMA coefficient for new samples; `1.0` disables smoothing.
    alpha: f64,
    metric: LevelMetric,
    levels: HashMap<u16, f64>,
}

impl DynamicModule {
    /// Track `classes` with smoothing factor `alpha` (clamped to (0, 1]).
    pub fn new(classes: Vec<u16>, alpha: f64) -> Self {
        Self::with_metric(classes, alpha, LevelMetric::Writes)
    }

    /// Track `classes`, deriving levels per `metric`.
    pub fn with_metric(classes: Vec<u16>, alpha: f64, metric: LevelMetric) -> Self {
        let alpha = alpha.clamp(f64::MIN_POSITIVE, 1.0);
        DynamicModule {
            classes,
            alpha,
            metric,
            levels: HashMap::new(),
        }
    }

    /// Unsmoothed sampler (every refresh fully replaces the levels).
    pub fn raw(classes: Vec<u16>) -> Self {
        Self::new(classes, 1.0)
    }

    /// The classes being tracked.
    pub fn classes(&self) -> &[u16] {
        &self.classes
    }

    /// Current smoothed levels (empty until the first refresh).
    pub fn levels(&self) -> &HashMap<u16, f64> {
        &self.levels
    }

    /// Query the quorum and fold the sample into the smoothed levels.
    pub fn refresh(&mut self, client: &mut DtmClient) -> Result<&HashMap<u16, f64>, DtmError> {
        let sample = client.query_contention_full(&self.classes)?;
        let combined = self.combine(&sample);
        self.ingest(&combined);
        Ok(&self.levels)
    }

    /// Derive the tracked level from a full sample per the metric.
    fn combine(&self, sample: &ContentionSample) -> HashMap<u16, f64> {
        self.classes
            .iter()
            .map(|&c| {
                let w = sample.writes.get(&c).copied().unwrap_or(0.0);
                let a = sample.aborts.get(&c).copied().unwrap_or(0.0);
                let level = match self.metric {
                    LevelMetric::Writes => w,
                    LevelMetric::Aborts => a,
                    LevelMetric::Combined { abort_weight } => w + abort_weight * a,
                };
                (c, level)
            })
            .collect()
    }

    /// Fold in the levels that piggybacked on the client's recent remote
    /// reads ([`DtmClient::set_piggyback_classes`]) — no extra messages.
    /// Returns `false` (and leaves the levels untouched) when no
    /// piggybacked sample has arrived yet.
    pub fn refresh_from_piggyback(&mut self, client: &DtmClient) -> bool {
        let sample = client.piggybacked_levels();
        if sample.is_empty() {
            return false;
        }
        let owned: HashMap<u16, f64> = sample.clone();
        self.ingest(&owned);
        true
    }

    /// Fold an externally obtained sample (unit-testable without a cluster).
    pub fn ingest(&mut self, sample: &HashMap<u16, f64>) {
        for &c in &self.classes {
            let s = sample.get(&c).copied().unwrap_or(0.0);
            let e = self.levels.entry(c).or_insert(s);
            *e = self.alpha * s + (1.0 - self.alpha) * *e;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pairs: &[(u16, f64)]) -> HashMap<u16, f64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn raw_sampler_replaces_levels() {
        let mut m = DynamicModule::raw(vec![0, 1]);
        m.ingest(&sample(&[(0, 4.0), (1, 1.0)]));
        assert_eq!(m.levels()[&0], 4.0);
        m.ingest(&sample(&[(0, 2.0), (1, 6.0)]));
        assert_eq!(m.levels()[&0], 2.0);
        assert_eq!(m.levels()[&1], 6.0);
    }

    #[test]
    fn smoothing_damps_spikes() {
        let mut m = DynamicModule::new(vec![0], 0.5);
        m.ingest(&sample(&[(0, 10.0)]));
        assert_eq!(m.levels()[&0], 10.0, "first sample seeds the level");
        m.ingest(&sample(&[(0, 0.0)]));
        assert_eq!(m.levels()[&0], 5.0, "EWMA halves toward the sample");
        m.ingest(&sample(&[(0, 0.0)]));
        assert_eq!(m.levels()[&0], 2.5);
    }

    #[test]
    fn missing_classes_sample_as_zero() {
        let mut m = DynamicModule::raw(vec![0, 7]);
        m.ingest(&sample(&[(0, 3.0)]));
        assert_eq!(m.levels()[&7], 0.0);
    }

    #[test]
    fn untracked_classes_are_ignored() {
        let mut m = DynamicModule::raw(vec![0]);
        m.ingest(&sample(&[(0, 1.0), (9, 100.0)]));
        assert!(!m.levels().contains_key(&9));
    }

    #[test]
    fn metric_selects_the_level_definition() {
        let sample = ContentionSample {
            writes: [(0u16, 4.0)].into(),
            aborts: [(0u16, 2.0)].into(),
        };
        let m = DynamicModule::with_metric(vec![0], 1.0, LevelMetric::Writes);
        assert_eq!(m.combine(&sample)[&0], 4.0);
        let m = DynamicModule::with_metric(vec![0], 1.0, LevelMetric::Aborts);
        assert_eq!(m.combine(&sample)[&0], 2.0);
        let m =
            DynamicModule::with_metric(vec![0], 1.0, LevelMetric::Combined { abort_weight: 3.0 });
        assert_eq!(m.combine(&sample)[&0], 10.0);
    }

    #[test]
    fn combine_defaults_missing_classes_to_zero() {
        let sample = ContentionSample::default();
        let m =
            DynamicModule::with_metric(vec![5], 1.0, LevelMetric::Combined { abort_weight: 2.0 });
        assert_eq!(m.combine(&sample)[&5], 0.0);
    }

    #[test]
    fn alpha_is_clamped() {
        let m = DynamicModule::new(vec![0], 5.0);
        assert_eq!(m.alpha, 1.0);
        let m = DynamicModule::new(vec![0], -1.0);
        assert!(m.alpha > 0.0);
    }
}
