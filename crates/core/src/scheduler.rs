//! Conflict-graph wave scheduler for speculative batch execution.
//!
//! Block-STM executes a batch of transactions optimistically in parallel
//! and re-executes from scratch on conflict. QR-ACN can do better on both
//! ends: the Static Module already exports per-template access sets
//! ([`ResolvedAccess`]), so most conflicts are *known before execution* and
//! turned into ordering edges instead of aborts; and when a conflict the
//! static sets missed does surface at run time, the closed-nesting executor
//! recovers with a partial rollback from the offending Block instead of a
//! full re-execution.
//!
//! This module is the static half: given one wave of transaction instances
//! (in arrival order) with their resolved access sets, build the conflict
//! DAG — an edge between two instances whenever they may conflict — and
//! expose it in dispatch-ready form (successor lists + indegrees) plus a
//! topological layering for reporting.
//!
//! **Edge orientation is a free choice.** Any acyclic orientation of the
//! conflict graph yields a sound schedule (the DTM validates every read
//! and commit regardless; edges only avoid wasted work), but orientations
//! differ wildly in critical-path length: orienting by arrival order makes
//! the expected longest path grow like `e·p·n` for conflict density `p`,
//! which serializes hot waves. Instead the planner greedily **colors** the
//! conflict graph (Welsh–Powell: highest degree first) and orients every
//! edge from the lower color to the higher, so the critical path is the
//! chromatic number of the wave — within each color class the whole layer
//! dispatches in parallel. Nothing in the wave has started when the plan
//! is built, so the planner is free to reorder; only *cross-wave* edges
//! (added by the dispatcher when waves overlap) are forced into arrival
//! orientation, because the earlier transaction may already be running.
//!
//! Conflict rule:
//! * both instances **exact** → object-level test: some object written by
//!   one is read or written by the other;
//! * either instance **inexact** (a data-dependent open the static analysis
//!   could not resolve) → pessimistic class-level test: some class written
//!   by one may be touched by the other.

use acn_txir::ResolvedAccess;

/// The scheduled form of one wave: a conflict DAG over `n` transactions in
/// arrival order, plus the statistics the driver reports per wave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WavePlan {
    /// Number of transactions in the wave.
    pub n: usize,
    /// Successor lists: `succs[i]` are the transactions that must wait for
    /// `i` to finish. Edges are oriented by conflict-graph color, not by
    /// arrival order, so a successor index may be smaller than `i`.
    pub succs: Vec<Vec<usize>>,
    /// Conflict indegree per transaction; indegree 0 = dispatchable now.
    pub indegree: Vec<usize>,
    /// Topological layer per transaction (`layer[j] = 1 + max` over its
    /// predecessors' layers, sources at 0). Layer count approximates the
    /// wave's critical path; layer width its parallelism.
    pub layer: Vec<usize>,
    /// Total conflict edges.
    pub edges: u64,
    /// Edges added by the class-level fallback only — they would not exist
    /// under the object-level test (both endpoints' static sets disjoint).
    pub pessimistic_edges: u64,
    /// Transactions whose access sets were inexact (fallback candidates).
    pub inexact: u64,
    /// Transactions whose access sets are *predicted-exact*: exact modulo
    /// a non-empty [`ResolvedAccess::predicted`] counter-read list that the
    /// executor validates at run time.
    pub predicted: u64,
}

/// What to do with a pair the static sets cannot fully resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InexactPolicy {
    /// Pessimistic: fall back to the class-level test, ordering any pair
    /// that *may* conflict. Never mis-speculates; serializes templates
    /// whose data-dependent opens share a class.
    #[default]
    Order,
    /// Speculative: add no edge for an inexact pair — dispatch both and
    /// let the DTM's validation catch a real collision at run time, where
    /// the closed-nesting executor repairs it by partial rollback. Only
    /// sound because the substrate still validates every read and commit;
    /// the scheduler's edges are a performance device, not the safety net.
    Speculate,
}

/// May two instances conflict? Object-level when both access sets are
/// exact, class-level otherwise.
pub fn conflicts(a: &ResolvedAccess, b: &ResolvedAccess) -> bool {
    conflicts_with(a, b, InexactPolicy::Order)
}

/// [`conflicts`] under an explicit [`InexactPolicy`].
pub fn conflicts_with(a: &ResolvedAccess, b: &ResolvedAccess, policy: InexactPolicy) -> bool {
    if a.exact && b.exact {
        object_conflict(a, b)
    } else {
        match policy {
            InexactPolicy::Order => class_conflict(a, b),
            InexactPolicy::Speculate => false,
        }
    }
}

/// Object-level test on the (sorted) resolved sets.
fn object_conflict(a: &ResolvedAccess, b: &ResolvedAccess) -> bool {
    intersects(&a.writes, &b.reads)
        || intersects(&a.writes, &b.writes)
        || intersects(&b.writes, &a.reads)
}

/// Class-level fallback: a class one side may write, the other may touch.
fn class_conflict(a: &ResolvedAccess, b: &ResolvedAccess) -> bool {
    a.write_classes.iter().any(|c| b.read_classes.contains(c))
        || b.write_classes.iter().any(|c| a.read_classes.contains(c))
}

/// Two-pointer intersection test over sorted slices.
fn intersects<T: Ord>(a: &[T], b: &[T]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Build the conflict DAG for one wave under the default pessimistic
/// policy. `accesses` is in arrival order; the pairwise test is O(n²) in
/// the wave size, which stays trivial at the tens-of-transactions waves
/// the driver uses.
pub fn plan_wave(accesses: &[ResolvedAccess]) -> WavePlan {
    plan_wave_with(accesses, InexactPolicy::Order)
}

/// [`plan_wave`] under an explicit [`InexactPolicy`].
pub fn plan_wave_with(accesses: &[ResolvedAccess], policy: InexactPolicy) -> WavePlan {
    let n = accesses.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges = 0u64;
    let mut pessimistic_edges = 0u64;
    for j in 1..n {
        for i in 0..j {
            if !conflicts_with(&accesses[i], &accesses[j], policy) {
                continue;
            }
            adj[i].push(j);
            adj[j].push(i);
            edges += 1;
            let both_exact = accesses[i].exact && accesses[j].exact;
            if !both_exact && !object_conflict(&accesses[i], &accesses[j]) {
                pessimistic_edges += 1;
            }
        }
    }
    // Welsh–Powell greedy coloring: highest conflict degree first (arrival
    // index breaks ties, keeping the plan deterministic), each vertex
    // taking the smallest color absent from its colored neighbors.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(adj[v].len()), v));
    let mut color = vec![usize::MAX; n];
    for &v in &order {
        let mut used: Vec<usize> = adj[v]
            .iter()
            .filter(|&&u| color[u] != usize::MAX)
            .map(|&u| color[u])
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut c = 0;
        for u in used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        color[v] = c;
    }
    // Orient every conflict edge from the lower color to the higher — a
    // proper coloring guarantees the endpoints differ, so the result is
    // acyclic and its critical path is bounded by the color count.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    for v in 0..n {
        for &u in &adj[v] {
            if color[v] < color[u] {
                succs[v].push(u);
                indegree[u] += 1;
            }
        }
    }
    // Exact longest-path layering: color order is a topological order, so
    // one relaxation pass settles every vertex.
    let mut layer = vec![0usize; n];
    let mut topo: Vec<usize> = (0..n).collect();
    topo.sort_by_key(|&v| (color[v], v));
    for &v in &topo {
        for &u in &succs[v] {
            layer[u] = layer[u].max(layer[v] + 1);
        }
    }
    WavePlan {
        n,
        succs,
        indegree,
        layer,
        edges,
        pessimistic_edges,
        inexact: accesses.iter().filter(|a| !a.exact).count() as u64,
        predicted: accesses
            .iter()
            .filter(|a| a.exact && !a.predicted.is_empty())
            .count() as u64,
    }
}

impl WavePlan {
    /// Number of topological layers (0 for an empty wave). This is the
    /// length of the wave's conflict critical path.
    pub fn layers(&self) -> usize {
        self.layer.iter().map(|&l| l + 1).max().unwrap_or(0)
    }

    /// Size of the widest layer — the wave's peak schedulable parallelism.
    pub fn width(&self) -> usize {
        let layers = self.layers();
        let mut count = vec![0usize; layers];
        for &l in &self.layer {
            count[l] += 1;
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// The initially dispatchable transactions (conflict indegree 0), in
    /// arrival order.
    pub fn sources(&self) -> Vec<usize> {
        (0..self.n).filter(|&i| self.indegree[i] == 0).collect()
    }
}

/// Per-run aggregate over every scheduled wave, reported by the driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveStats {
    /// Waves scheduled.
    pub waves: u64,
    /// Transactions scheduled across all waves.
    pub txns: u64,
    /// Conflict edges across all waves.
    pub edges: u64,
    /// Class-level fallback edges across all waves.
    pub pessimistic_edges: u64,
    /// Inexact (fallback-candidate) transactions across all waves.
    pub inexact_txns: u64,
    /// Sum of per-wave layer counts (divide by `waves` for the mean
    /// conflict critical path).
    pub layers: u64,
    /// Widest layer seen in any wave.
    pub max_width: u64,
    /// Cross-wave conflict edges: edges from a still-unfinished earlier
    /// transaction to a newly admitted one, added by the dispatcher when
    /// waves overlap. Not part of any [`WavePlan`].
    pub cross_edges: u64,
    /// Predicted-exact transactions across all waves (exact access sets
    /// conditional on hot-counter predictions).
    pub predicted_txns: u64,
    /// Counter predictions that failed validation at run time and were
    /// repaired by the executor. Accumulated by the dispatcher from
    /// [`crate::PredictionOutcome`] feedback, not from any [`WavePlan`].
    pub mispredicts: u64,
}

impl WaveStats {
    /// Fold one wave's plan into the running totals.
    pub fn absorb(&mut self, plan: &WavePlan) {
        self.waves += 1;
        self.txns += plan.n as u64;
        self.edges += plan.edges;
        self.pessimistic_edges += plan.pessimistic_edges;
        self.inexact_txns += plan.inexact;
        self.predicted_txns += plan.predicted;
        self.layers += plan.layers() as u64;
        self.max_width = self.max_width.max(plan.width() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_txir::{ObjClass, ObjectId};

    const A: ObjClass = ObjClass::new(0, "A");

    fn exact(reads: &[u64], writes: &[u64]) -> ResolvedAccess {
        let mut r: Vec<ObjectId> = reads.iter().map(|&i| ObjectId::new(A, i)).collect();
        let w: Vec<ObjectId> = writes.iter().map(|&i| ObjectId::new(A, i)).collect();
        r.extend(w.iter().copied());
        r.sort_unstable();
        r.dedup();
        ResolvedAccess {
            reads: r,
            writes: w,
            read_classes: vec![0],
            write_classes: if writes.is_empty() { vec![] } else { vec![0] },
            exact: true,
            predicted: Vec::new(),
            blind: Vec::new(),
        }
    }

    fn inexact_on(read_classes: &[u16], write_classes: &[u16]) -> ResolvedAccess {
        ResolvedAccess {
            reads: Vec::new(),
            writes: Vec::new(),
            read_classes: read_classes.to_vec(),
            write_classes: write_classes.to_vec(),
            exact: false,
            predicted: Vec::new(),
            blind: Vec::new(),
        }
    }

    #[test]
    fn disjoint_writers_are_parallel() {
        let plan = plan_wave(&[exact(&[], &[1]), exact(&[], &[2]), exact(&[], &[3])]);
        assert_eq!(plan.edges, 0);
        assert_eq!(plan.layers(), 1);
        assert_eq!(plan.width(), 3);
        assert_eq!(plan.sources(), vec![0, 1, 2]);
    }

    #[test]
    fn write_write_and_read_write_conflicts_are_ordered() {
        // 0 writes {1}; 1 reads {1}; 2 writes {9} (independent).
        let plan = plan_wave(&[exact(&[], &[1]), exact(&[1], &[]), exact(&[], &[9])]);
        assert_eq!(plan.edges, 1);
        assert_eq!(plan.succs[0], vec![1]);
        assert_eq!(plan.indegree, vec![0, 1, 0]);
        assert_eq!(plan.layer, vec![0, 1, 0]);
        assert_eq!(plan.layers(), 2);
        assert_eq!(plan.sources(), vec![0, 2]);
    }

    #[test]
    fn read_read_overlap_is_not_a_conflict() {
        let plan = plan_wave(&[exact(&[5], &[]), exact(&[5], &[])]);
        assert_eq!(plan.edges, 0);
    }

    #[test]
    fn chain_layers_accumulate() {
        // 0→1→2 via the same written object.
        let w = |i| exact(&[], &[i]);
        let plan = plan_wave(&[w(7), w(7), w(7)]);
        assert_eq!(plan.edges, 3, "transitive pairs conflict too");
        assert_eq!(plan.layer, vec![0, 1, 2]);
        assert_eq!(plan.layers(), 3);
        assert_eq!(plan.width(), 1);
    }

    #[test]
    fn coloring_shortens_arrival_chains() {
        // Path graph 0–1–2–3 via shared written objects. Arrival-order
        // orientation would chain it into 4 layers; coloring 2-colors the
        // path, so both odd (or even) vertices dispatch together.
        let plan = plan_wave(&[
            exact(&[], &[1]),
            exact(&[], &[1, 2]),
            exact(&[], &[2, 3]),
            exact(&[], &[3, 4]),
        ]);
        assert_eq!(plan.edges, 3);
        assert_eq!(plan.layers(), 2, "a path is 2-colorable");
        assert_eq!(plan.width(), 2);
        // Every conflicting pair still has exactly one directed edge.
        for (i, j) in [(0, 1), (1, 2), (2, 3)] {
            assert!(
                plan.succs[i].contains(&j) ^ plan.succs[j].contains(&i),
                "pair ({i},{j}) must be ordered exactly once"
            );
        }
    }

    #[test]
    fn inexact_txn_falls_back_to_class_edges() {
        // Writer on class 0 objects; inexact reader that may touch class 0.
        let a = exact(&[], &[1]);
        let b = inexact_on(&[0], &[]);
        assert!(conflicts(&a, &b));
        let plan = plan_wave(&[a, b]);
        assert_eq!(plan.edges, 1);
        assert_eq!(plan.pessimistic_edges, 1, "object sets alone were disjoint");
        assert_eq!(plan.inexact, 1);
    }

    #[test]
    fn inexact_pair_on_disjoint_classes_stays_parallel() {
        let a = inexact_on(&[0], &[0]);
        let b = inexact_on(&[1], &[1]);
        assert!(!conflicts(&a, &b));
        let plan = plan_wave(&[a, b]);
        assert_eq!(plan.edges, 0);
    }

    #[test]
    fn empty_wave_is_empty_plan() {
        let plan = plan_wave(&[]);
        assert_eq!(plan.n, 0);
        assert_eq!(plan.layers(), 0);
        assert_eq!(plan.width(), 0);
        assert!(plan.sources().is_empty());
    }

    #[test]
    fn wave_stats_aggregate() {
        let mut ws = WaveStats::default();
        ws.absorb(&plan_wave(&[exact(&[], &[1]), exact(&[1], &[])]));
        ws.absorb(&plan_wave(&[exact(&[], &[2]), exact(&[], &[3])]));
        assert_eq!(ws.waves, 2);
        assert_eq!(ws.txns, 4);
        assert_eq!(ws.edges, 1);
        assert_eq!(ws.layers, 2 + 1);
        assert_eq!(ws.max_width, 2);
    }
}
