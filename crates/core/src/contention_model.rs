//! Contention models: from per-object levels to Block-level decisions.
//!
//! "ACN allows programmers to provide custom models for calculating the
//! contention level of a Block starting from the contention level of all
//! the objects accessed in its UnitBlocks." The default used in the paper
//! approximates an object's contention by its write count in the last time
//! window and derives a Block's abort probability with the fast analytic
//! model of di Sanzo et al. — both shapes are provided here.

/// Combine the contention levels of the objects a Block opens into the
/// Block's own contention level. Implementations must be cheap: the model
/// is evaluated inside the periodic Algorithm Module on client nodes, and
/// "expensive computations are usually not suited for online transaction
/// processing".
pub trait ContentionModel: Send + Sync {
    /// `unit_levels` carries one level per UnitBlock in the Block (each
    /// UnitBlock opens exactly one shared object).
    fn block_level(&self, unit_levels: &[f64]) -> f64;
}

/// Sum of member levels — the default. A Block is as hot as the combined
/// write pressure on everything it opens, which is the natural reading of
/// "the number of write requests happened in the last time window".
#[derive(Debug, Clone, Copy, Default)]
pub struct SumModel;

impl ContentionModel for SumModel {
    fn block_level(&self, unit_levels: &[f64]) -> f64 {
        unit_levels.iter().sum()
    }
}

/// Maximum of member levels — a Block is as hot as its hottest object.
/// Useful when merged blocks should not look artificially hotter than
/// their members.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxModel;

impl ContentionModel for MaxModel {
    fn block_level(&self, unit_levels: &[f64]) -> f64 {
        unit_levels.iter().copied().fold(0.0, f64::max)
    }
}

/// Analytic abort-probability model in the style of di Sanzo et al.'s
/// commit-time-locking analysis: treating each object's write rate λ as a
/// Poisson intensity, the probability that a Block observing the object
/// for `exposure` time units gets invalidated is `1 - e^(-λ·exposure)`,
/// and the Block aborts if *any* member object is invalidated.
#[derive(Debug, Clone, Copy)]
pub struct AbortProbabilityModel {
    /// Exposure window in the same time units as the contention levels
    /// (levels are writes per contention window, so `exposure` is the
    /// fraction of a window a block's objects stay in the read-set).
    pub exposure: f64,
}

impl Default for AbortProbabilityModel {
    fn default() -> Self {
        AbortProbabilityModel { exposure: 0.1 }
    }
}

impl ContentionModel for AbortProbabilityModel {
    fn block_level(&self, unit_levels: &[f64]) -> f64 {
        let survive: f64 = unit_levels
            .iter()
            .map(|&l| (-l.max(0.0) * self.exposure).exp())
            .product();
        1.0 - survive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_model_sums() {
        assert_eq!(SumModel.block_level(&[1.0, 2.5, 0.5]), 4.0);
        assert_eq!(SumModel.block_level(&[]), 0.0);
    }

    #[test]
    fn max_model_takes_hottest() {
        assert_eq!(MaxModel.block_level(&[1.0, 7.0, 2.0]), 7.0);
        assert_eq!(MaxModel.block_level(&[]), 0.0);
    }

    #[test]
    fn abort_probability_is_a_probability() {
        let m = AbortProbabilityModel { exposure: 0.2 };
        let p = m.block_level(&[3.0, 10.0]);
        assert!((0.0..=1.0).contains(&p), "p = {p}");
        assert_eq!(m.block_level(&[]), 0.0);
        assert_eq!(m.block_level(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn abort_probability_is_monotone() {
        let m = AbortProbabilityModel { exposure: 0.2 };
        assert!(m.block_level(&[1.0]) < m.block_level(&[2.0]));
        assert!(m.block_level(&[1.0]) < m.block_level(&[1.0, 1.0]));
    }

    #[test]
    fn abort_probability_handles_negative_inputs() {
        // Defensive: a (buggy) negative level must not yield p > 1 or NaN.
        let m = AbortProbabilityModel { exposure: 1.0 };
        let p = m.block_level(&[-5.0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn abort_probability_matches_closed_form() {
        let m = AbortProbabilityModel { exposure: 1.0 };
        let p = m.block_level(&[1.0]);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn models_are_object_safe() {
        let models: Vec<Box<dyn ContentionModel>> = vec![
            Box::new(SumModel),
            Box::new(MaxModel),
            Box::new(AbortProbabilityModel::default()),
        ];
        for m in &models {
            let _ = m.block_level(&[1.0]);
        }
    }
}
