//! Blocks and Block sequences — the unit of closed-nested execution.
//!
//! "Multiple UnitBlocks can be combined to form a Block. […] A Block
//! enclosing multiple UnitBlocks represents a piece of code to be
//! executed. […] Each Block represents a closed-nested transaction."

use acn_txir::{lift_edges, DependencyModel, StmtIdx, UnitBlockId};
use std::collections::BTreeSet;

/// An executable decomposition of one transaction template: Blocks in
/// execution order, each carrying the statements it runs (in program
/// order) and the UnitBlocks it was composed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSeq {
    /// Statement schedule: `blocks[i]` is executed as the i-th closed-nested
    /// transaction; statements within a block run in program order.
    pub blocks: Vec<Vec<StmtIdx>>,
    /// UnitBlock composition of each block (diagnostics / tests).
    pub block_units: Vec<Vec<UnitBlockId>>,
}

impl BlockSeq {
    /// Flat nesting: the whole transaction is one block — the QR-DTM
    /// baseline ("flat nesting does not yield any performance improvement
    /// over non-nested transactions": it *is* a non-nested transaction).
    pub fn flat(dm: &DependencyModel) -> BlockSeq {
        let n = dm.program.stmts.len();
        BlockSeq {
            blocks: vec![(0..n).collect()],
            block_units: vec![(0..dm.unit_count()).collect()],
        }
    }

    /// The initial static configuration: one Block per UnitBlock, in
    /// program order, with the default statement assignment. "During
    /// initialization, a Block is created from a single UnitBlock and the
    /// sequence found in the UnitGraph is followed."
    pub fn from_units(dm: &DependencyModel) -> BlockSeq {
        let groups: Vec<Vec<UnitBlockId>> = (0..dm.unit_count()).map(|u| vec![u]).collect();
        Self::compose(dm, &groups, &dm.default_assignment)
    }

    /// Manual closed nesting (the QR-CN baseline): the "programmer"
    /// supplies the grouping of UnitBlocks into Blocks; order is as given;
    /// the default statement assignment applies.
    ///
    /// # Panics
    /// Panics if the groups are not a partition of the template's
    /// UnitBlocks or if the given order violates a data dependency.
    pub fn group_units(dm: &DependencyModel, groups: &[Vec<UnitBlockId>]) -> BlockSeq {
        let mut seen = BTreeSet::new();
        for g in groups {
            for &u in g {
                assert!(u < dm.unit_count(), "unknown UnitBlock {u}");
                assert!(seen.insert(u), "UnitBlock {u} grouped twice");
            }
        }
        assert_eq!(
            seen.len(),
            dm.unit_count(),
            "groups must cover every UnitBlock"
        );
        let seq = Self::compose(dm, groups, &dm.default_assignment);
        seq.assert_respects_dependencies(dm);
        seq
    }

    /// Assemble a BlockSeq from unit groups (in execution order) and a
    /// statement→unit assignment.
    pub fn compose(
        dm: &DependencyModel,
        groups: &[Vec<UnitBlockId>],
        assignment: &[UnitBlockId],
    ) -> BlockSeq {
        let mut unit_to_group = vec![usize::MAX; dm.unit_count()];
        for (g, units) in groups.iter().enumerate() {
            for &u in units {
                unit_to_group[u] = g;
            }
        }
        let mut blocks: Vec<Vec<StmtIdx>> = vec![Vec::new(); groups.len()];
        for (stmt, &unit) in assignment.iter().enumerate() {
            let g = unit_to_group[unit];
            debug_assert!(g != usize::MAX, "statement assigned to ungrouped unit");
            blocks[g].push(stmt);
        }
        for b in &mut blocks {
            b.sort_unstable();
        }
        BlockSeq {
            blocks,
            block_units: groups.to_vec(),
        }
    }

    /// Number of Blocks (closed-nested transactions) in the sequence.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True for a degenerate empty sequence.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Is this a flat (single-block) schedule?
    pub fn is_flat(&self) -> bool {
        self.blocks.len() <= 1
    }

    /// Debug-check that the execution order respects every statement-level
    /// dependency of the template under this sequence's schedule.
    pub fn assert_respects_dependencies(&self, dm: &DependencyModel) {
        // Position of each statement in the flattened schedule.
        let n = dm.program.stmts.len();
        let mut pos = vec![usize::MAX; n];
        let mut p = 0;
        for b in &self.blocks {
            for &s in b {
                assert!(pos[s] == usize::MAX, "statement {s} scheduled twice");
                pos[s] = p;
                p += 1;
            }
        }
        assert_eq!(p, n, "schedule must cover every statement");
        for &(a, b) in &dm.graph.edges {
            assert!(
                pos[a] < pos[b],
                "dependency {a}→{b} violated by schedule {:?}",
                self.blocks
            );
        }
    }

    /// Human-readable rendering of the sequence: one bracket per Block
    /// listing the classes its UnitBlocks open, in execution order, e.g.
    /// `[Account,Account] [Branch,Branch]`.
    pub fn describe(&self, dm: &DependencyModel) -> String {
        self.block_units
            .iter()
            .map(|units| {
                let names: Vec<&str> = units
                    .iter()
                    .flat_map(|&u| dm.units[u].classes.iter().map(|c| c.name))
                    .collect();
                format!("[{}]", names.join(","))
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Block-level assignment implied by this sequence: statement → block
    /// position.
    pub fn stmt_to_block(&self, n_stmts: usize) -> Vec<usize> {
        let mut out = vec![usize::MAX; n_stmts];
        for (bi, b) in self.blocks.iter().enumerate() {
            for &s in b {
                out[s] = bi;
            }
        }
        out
    }
}

/// Lift the template's statement edges to *group*-level edges under a
/// given grouping and assignment, for dependency-preserving ordering of
/// candidate Blocks. Units absent from `groups` are ignored, which lets
/// the Algorithm Module's merge step check partial (prefix) groupings
/// incrementally. Returns `None` if the grouping creates a cycle.
pub fn group_edges(
    dm: &DependencyModel,
    groups: &[Vec<UnitBlockId>],
    assignment: &[UnitBlockId],
) -> Option<BTreeSet<(usize, usize)>> {
    let mut unit_to_group = vec![usize::MAX; dm.unit_count()];
    for (g, units) in groups.iter().enumerate() {
        for &u in units {
            unit_to_group[u] = g;
        }
    }
    let unit_edges = lift_edges(&dm.graph, &assignment.to_vec());
    let mut edges = BTreeSet::new();
    for &(a, b) in &unit_edges {
        let (ga, gb) = (unit_to_group[a], unit_to_group[b]);
        if ga == usize::MAX || gb == usize::MAX {
            continue; // endpoint not part of this (partial) grouping
        }
        if ga != gb {
            edges.insert((ga, gb));
        }
    }
    if acn_txir::is_acyclic(groups.len(), &edges) {
        Some(edges)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_txir::{ComputeOp, FieldId, ObjClass, ProgramBuilder};

    const A: ObjClass = ObjClass::new(0, "A");
    const B: ObjClass = ObjClass::new(1, "B");
    const F: FieldId = FieldId(0);

    /// Two units: {Open A, Get A} and {Open B, Get B, sum}.
    fn model() -> DependencyModel {
        let mut b = ProgramBuilder::new("t", 0);
        let oa = b.open_read(A, 0i64);
        let ob = b.open_read(B, 0i64);
        let va = b.get(oa, F);
        let vb = b.get(ob, F);
        let _c = b.compute(ComputeOp::Add, [va.into(), vb.into()]);
        DependencyModel::analyze(b.finish()).unwrap()
    }

    #[test]
    fn flat_covers_all_statements_in_one_block() {
        let dm = model();
        let seq = BlockSeq::flat(&dm);
        assert!(seq.is_flat());
        assert_eq!(seq.blocks, vec![vec![0, 1, 2, 3, 4]]);
        seq.assert_respects_dependencies(&dm);
    }

    #[test]
    fn from_units_is_one_block_per_unit_in_program_order() {
        let dm = model();
        let seq = BlockSeq::from_units(&dm);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.blocks[0], vec![0, 2]);
        assert_eq!(seq.blocks[1], vec![1, 3, 4]);
        seq.assert_respects_dependencies(&dm);
    }

    #[test]
    fn group_units_merges() {
        let dm = model();
        let seq = BlockSeq::group_units(&dm, &[vec![0, 1]]);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq.blocks[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "grouped twice")]
    fn group_units_rejects_duplicates() {
        let dm = model();
        let _ = BlockSeq::group_units(&dm, &[vec![0, 0], vec![1]]);
    }

    #[test]
    #[should_panic(expected = "cover every UnitBlock")]
    fn group_units_rejects_partial_cover() {
        let dm = model();
        let _ = BlockSeq::group_units(&dm, &[vec![0]]);
    }

    #[test]
    #[should_panic(expected = "violated")]
    fn group_units_rejects_dependency_violation() {
        let dm = model();
        // Unit 1 holds the sum which reads unit 0's GetField: 1 before 0 is
        // illegal.
        let _ = BlockSeq::group_units(&dm, &[vec![1], vec![0]]);
    }

    #[test]
    fn compose_respects_custom_assignment() {
        let dm = model();
        // Re-attach the sum (stmt 4) to unit 0, then order unit 1 first.
        let mut asg = dm.default_assignment.clone();
        asg[4] = 0;
        let seq = BlockSeq::compose(&dm, &[vec![1], vec![0]], &asg);
        assert_eq!(seq.blocks[0], vec![1, 3]);
        assert_eq!(seq.blocks[1], vec![0, 2, 4]);
        seq.assert_respects_dependencies(&dm);
    }

    #[test]
    fn group_edges_detects_cycles() {
        let dm = model();
        // Default: edge unit0→unit1 only; grouping each alone is acyclic.
        let groups = vec![vec![0], vec![1]];
        let edges = group_edges(&dm, &groups, &dm.default_assignment).unwrap();
        assert_eq!(edges, BTreeSet::from([(0, 1)]));
        // Re-attach stmt 4 to unit 0 (edge 1→0) *and* keep stmt 2's GetField
        // … a true cycle needs edges both ways; construct one by moving the
        // sum to unit 0 while unit 1 keeps nothing depending on unit 0 —
        // edges become {(1,0)} which is still acyclic:
        let mut asg = dm.default_assignment.clone();
        asg[4] = 0;
        let edges = group_edges(&dm, &groups, &asg).unwrap();
        assert_eq!(edges, BTreeSet::from([(1, 0)]));
    }

    #[test]
    fn stmt_to_block_inverts_schedule() {
        let dm = model();
        let seq = BlockSeq::from_units(&dm);
        assert_eq!(seq.stmt_to_block(5), vec![0, 1, 0, 1, 1]);
    }
}
