//! The Static Module: per-template analysis, run once and cached.
//!
//! "This module maintains static information of transaction code. It is
//! triggered at the beginning of the application and creates a graph model
//! of transaction code, called UnitGraph. During run-time, the graph model
//! is queried by the Algorithm Module for detecting data dependencies."

use acn_txir::{DependencyModel, Program, ValidateError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Caches the dependency model of every transaction template by name.
/// Thread-safe: many client threads share one `StaticModule`.
#[derive(Default)]
pub struct StaticModule {
    cache: RwLock<HashMap<String, Arc<DependencyModel>>>,
}

impl StaticModule {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyze `program` (or return the cached model for its name).
    ///
    /// Template names are identities: registering two different programs
    /// under one name returns the first analysis, mirroring how the
    /// paper's tool transforms each transaction's source exactly once.
    pub fn analyze(&self, program: &Program) -> Result<Arc<DependencyModel>, ValidateError> {
        if let Some(dm) = self.cache.read().get(&program.name) {
            return Ok(Arc::clone(dm));
        }
        let dm = Arc::new(DependencyModel::analyze(program.clone())?);
        let mut cache = self.cache.write();
        // Another thread may have raced the analysis; keep the first.
        Ok(Arc::clone(
            cache
                .entry(program.name.clone())
                .or_insert_with(|| Arc::clone(&dm)),
        ))
    }

    /// Fetch a previously analyzed template.
    pub fn get(&self, name: &str) -> Option<Arc<DependencyModel>> {
        self.cache.read().get(name).map(Arc::clone)
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.cache.read().len()
    }

    /// True when no template has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.cache.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_txir::{FieldId, ObjClass, ProgramBuilder};

    const C: ObjClass = ObjClass::new(0, "C");

    fn prog(name: &str) -> Program {
        let mut b = ProgramBuilder::new(name, 1);
        let o = b.open_read(C, b.param(0));
        let _v = b.get(o, FieldId(0));
        b.finish()
    }

    #[test]
    fn analysis_is_cached_by_name() {
        let sm = StaticModule::new();
        let p = prog("t1");
        let a = sm.analyze(&p).unwrap();
        let b = sm.analyze(&p).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(sm.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_models() {
        let sm = StaticModule::new();
        let a = sm.analyze(&prog("t1")).unwrap();
        let b = sm.analyze(&prog("t2")).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(sm.len(), 2);
    }

    #[test]
    fn get_returns_cached_only() {
        let sm = StaticModule::new();
        assert!(sm.get("missing").is_none());
        sm.analyze(&prog("t")).unwrap();
        assert!(sm.get("t").is_some());
    }

    #[test]
    fn concurrent_analysis_converges() {
        let sm = Arc::new(StaticModule::new());
        let models: Vec<Arc<DependencyModel>> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let sm = Arc::clone(&sm);
                    s.spawn(move || sm.analyze(&prog("shared")).unwrap())
                })
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(sm.len(), 1);
        for m in &models[1..] {
            assert!(Arc::ptr_eq(&models[0], m));
        }
    }
}
