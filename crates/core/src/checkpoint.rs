//! Checkpointing executor — the alternative partial-abort design.
//!
//! Koskinen & Herlihy (§VII of the paper) propose *checkpoints and
//! continuations* instead of nested transactions: save the whole execution
//! state at fine-grained points and, on a conflict, resume from the last
//! checkpoint *preceding the first read of the invalidated object*. The
//! paper's earlier work ([10]) found closed nesting cheaper in DTM because
//! checkpointing pays a state-snapshot on every boundary; this module
//! exists to reproduce that comparison (`benches/ablations.rs`).
//!
//! The implementation checkpoints at UnitBlock granularity — the finest
//! the paper discusses ("saving the transaction state whenever the
//! transaction issues the first read operation on a shared object") — by
//! cloning the transaction context and register file before each block.

use crate::blocks::BlockSeq;
use crate::executor::rand_like::jitter;
use crate::executor::{run_block, FlatAccess, Frame, RetryPolicy, RunError, StepError, StepGuards};
use acn_dtm::{DtmClient, DtmError, TxnCtx};
use acn_obs::{AbortKind, SpanKind, TxnEvent, TxnObserver};
use acn_txir::{ObjectId, Program, Value};
use std::collections::HashMap;
use std::time::Instant;

fn emit(obs: &mut Option<&mut TxnObserver>, ev: TxnEvent) {
    if let Some(o) = obs.as_deref_mut() {
        o.on_event(ev);
    }
}

/// Counters for checkpointed execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Transactions committed.
    pub commits: u64,
    /// Rollbacks to an intermediate checkpoint (the partial-abort analogue).
    pub rollbacks: u64,
    /// Checkpoints taken (each one paid a full state clone).
    pub checkpoints: u64,
    /// Restarts from the very beginning (conflict before any checkpoint
    /// boundary, or policy escalation).
    pub full_restarts: u64,
}

impl From<CheckpointStats> for acn_obs::CheckpointCounters {
    fn from(s: CheckpointStats) -> Self {
        acn_obs::CheckpointCounters {
            commits: s.commits,
            rollbacks: s.rollbacks,
            checkpoints: s.checkpoints,
            full_restarts: s.full_restarts,
        }
    }
}

/// Execute one instance with checkpoint-based partial rollback. `seq`
/// provides the checkpoint boundaries (normally
/// [`BlockSeq::from_units`]'s one-block-per-UnitBlock schedule).
pub fn run_checkpointed(
    client: &mut DtmClient,
    program: &Program,
    params: &[Value],
    seq: &BlockSeq,
    policy: &RetryPolicy,
    stats: &mut CheckpointStats,
) -> Result<(), RunError> {
    run_checkpointed_observed(client, program, params, seq, policy, stats, None)
}

/// [`run_checkpointed`] with an optional [`TxnObserver`]: rollbacks and
/// restarts are attributed under the checkpoint-specific abort kinds
/// ([`AbortKind::CkptRollback`] / [`AbortKind::CkptRestart`]), so a mixed
/// run never conflates the two partial-rollback designs.
#[allow(clippy::too_many_arguments)]
pub fn run_checkpointed_observed(
    client: &mut DtmClient,
    program: &Program,
    params: &[Value],
    seq: &BlockSeq,
    policy: &RetryPolicy,
    stats: &mut CheckpointStats,
    mut obs: Option<&mut TxnObserver>,
) -> Result<(), RunError> {
    let mut restarts = 0usize;
    'restart: loop {
        emit(&mut obs, TxnEvent::Begin);
        let mut ctx = TxnCtx::begin(client);
        let mut frame = Frame::new(program, params);
        // Saved states: snapshots[k] is the state *before* block k ran.
        let mut snapshots: Vec<(TxnCtx, Frame<'_>)> = Vec::with_capacity(seq.len());
        // For every object: the block at whose start it was first read.
        let mut first_read_block: HashMap<ObjectId, usize> = HashMap::new();

        let mut block_idx = 0usize;
        while block_idx < seq.len() {
            emit(
                &mut obs,
                TxnEvent::BlockStart {
                    block: block_idx as u32,
                },
            );
            snapshots.truncate(block_idx);
            snapshots.push((ctx.clone(), frame.clone()));
            stats.checkpoints += 1;

            let reads_before = ctx.reads_len();
            let mut lock_holds: u32 = 0;
            let result = {
                let mut acc = FlatAccess {
                    ctx: &mut ctx,
                    spec: None,
                    blind: &[],
                };
                let mut guards = StepGuards::none();
                guards.lock_holds = Some(&mut lock_holds);
                run_block(
                    &mut acc,
                    client,
                    &mut frame,
                    program,
                    &seq.blocks[block_idx],
                    &mut guards,
                )
            };
            // Before the terminal event, so a rollback charges this run's
            // holds to the discarded block and a completed run keeps them.
            if lock_holds > 0 {
                emit(
                    &mut obs,
                    TxnEvent::LockHolds {
                        block: Some(block_idx as u32),
                        holds: lock_holds,
                    },
                );
            }
            match result {
                Ok(()) => {
                    // Record first-read blocks for objects this block added.
                    for &(obj, _) in &ctx.read_set()[reads_before..] {
                        first_read_block.entry(obj).or_insert(block_idx);
                    }
                    block_idx += 1;
                }
                Err(StepError::Dtm(DtmError::Invalidated { objs })) => {
                    // Resume from the earliest checkpoint that precedes the
                    // first read of any invalidated object. Objects read
                    // within the *current* (incomplete) block resolve to
                    // this block's own checkpoint.
                    let target = objs
                        .iter()
                        .map(|o| first_read_block.get(o).copied().unwrap_or(block_idx))
                        .min()
                        .unwrap_or(block_idx);
                    stats.rollbacks += 1;
                    emit(
                        &mut obs,
                        TxnEvent::PartialAbort {
                            block: block_idx as u32,
                            obj: objs.first().copied(),
                            kind: AbortKind::CkptRollback,
                        },
                    );
                    let rb = Instant::now();
                    let (saved_ctx, saved_frame) = snapshots[target].clone();
                    ctx = saved_ctx;
                    frame = saved_frame;
                    // Invalidate bookkeeping past the restore point.
                    first_read_block.retain(|_, &mut b| b < target);
                    block_idx = target;
                    // The restore itself (state clone + bookkeeping) is the
                    // checkpoint design's redo overhead — span it.
                    if let Some(t) = client.tracer_mut() {
                        t.record_plain(SpanKind::CkptRollback, rb);
                    }
                }
                Err(StepError::Dtm(DtmError::Unavailable)) => return Err(RunError::Unavailable),
                Err(StepError::Dtm(e)) => {
                    stats.full_restarts += 1;
                    emit(
                        &mut obs,
                        TxnEvent::FullAbort {
                            block: Some(block_idx as u32),
                            obj: blamed_object(&e),
                            kind: AbortKind::CkptRestart,
                        },
                    );
                    restarts += 1;
                    if restarts >= policy.max_restarts {
                        return Err(RunError::RetriesExhausted);
                    }
                    jitter(policy.backoff_base, restarts);
                    continue 'restart;
                }
                Err(StepError::Eval(e)) => return Err(RunError::Eval(e)),
                Err(StepError::Mispredict { .. }) | Err(StepError::Aliased { .. }) => {
                    unreachable!("checkpoint runner executes without guards")
                }
            }
        }

        match ctx.commit(client) {
            Ok(()) => {
                stats.commits += 1;
                emit(
                    &mut obs,
                    TxnEvent::Commit {
                        restarts: restarts as u32,
                    },
                );
                return Ok(());
            }
            Err(DtmError::Unavailable) => return Err(RunError::Unavailable),
            Err(e) => {
                stats.full_restarts += 1;
                emit(
                    &mut obs,
                    TxnEvent::FullAbort {
                        block: None,
                        obj: blamed_object(&e),
                        kind: AbortKind::CkptRestart,
                    },
                );
                restarts += 1;
                if restarts >= policy.max_restarts {
                    return Err(RunError::RetriesExhausted);
                }
                jitter(policy.backoff_base, restarts);
            }
        }
    }
}

/// The first object a DTM error blames, when it blames any.
fn blamed_object(e: &DtmError) -> Option<ObjectId> {
    match e {
        DtmError::Invalidated { objs } => objs.first().copied(),
        DtmError::Conflict {
            invalid, locked, ..
        } => invalid.first().or_else(|| locked.first()).copied(),
        DtmError::LockedOut { obj } => Some(*obj),
        DtmError::Unavailable => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acn_dtm::{Cluster, ClusterConfig};
    use acn_txir::{DependencyModel, FieldId, ObjClass, ProgramBuilder};

    const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
    const BRANCH: ObjClass = ObjClass::new(0, "Branch");
    const BAL: FieldId = FieldId(0);

    fn transfer_dm() -> DependencyModel {
        let mut b = ProgramBuilder::new("cp/transfer", 3);
        let amt = b.param(2);
        let a1 = b.open_update(ACCOUNT, b.param(0));
        let v1 = b.get(a1, BAL);
        let n1 = b.sub(v1, amt);
        b.set(a1, BAL, n1);
        let br = b.open_update(BRANCH, b.param(1));
        let v2 = b.get(br, BAL);
        let n2 = b.add(v2, amt);
        b.set(br, BAL, n2);
        DependencyModel::analyze(b.finish()).unwrap()
    }

    fn read_bal(client: &mut DtmClient, obj: ObjectId) -> i64 {
        let mut ctx = TxnCtx::begin(client);
        ctx.open(client, obj, false).unwrap();
        let v = ctx.get_field(obj, BAL).as_int().unwrap();
        ctx.commit(client).unwrap();
        v
    }

    #[test]
    fn checkpointed_run_commits() {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = transfer_dm();
        let seq = BlockSeq::from_units(&dm);
        let mut stats = CheckpointStats::default();
        run_checkpointed(
            &mut client,
            &dm.program,
            &[Value::Int(1), Value::Int(2), Value::Int(25)],
            &seq,
            &RetryPolicy::default(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.checkpoints, 2, "one checkpoint per unit block");
        assert_eq!(stats.rollbacks, 0);
        assert_eq!(read_bal(&mut client, ObjectId::new(ACCOUNT, 1)), -25);
        assert_eq!(read_bal(&mut client, ObjectId::new(BRANCH, 2)), 25);
        cluster.shutdown();
    }

    #[test]
    fn rollback_resumes_midway_not_from_start() {
        let cluster = Cluster::start(ClusterConfig::test(10, 2));
        let mut c0 = cluster.client(0);
        let mut victim = cluster.client(1);
        let dm = transfer_dm();
        let seq = BlockSeq::from_units(&dm);

        // Interleave manually: run block 0 (account), then invalidate the
        // branch read by another client mid-flight. We emulate the
        // interleaving by pre-invalidating between two full runs: first a
        // conflicting run that must roll back at least once under load.
        let mut stats = CheckpointStats::default();
        // Warm state.
        run_checkpointed(
            &mut victim,
            &dm.program,
            &[Value::Int(1), Value::Int(9), Value::Int(1)],
            &seq,
            &RetryPolicy::default(),
            &mut stats,
        )
        .unwrap();
        // Concurrent hammering on the branch to force invalidations.
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut st = CheckpointStats::default();
                for _ in 0..60 {
                    run_checkpointed(
                        &mut c0,
                        &dm.program,
                        &[Value::Int(2), Value::Int(9), Value::Int(1)],
                        &seq,
                        &RetryPolicy::default(),
                        &mut st,
                    )
                    .unwrap();
                }
                done.store(true, std::sync::atomic::Ordering::Relaxed);
            });
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                run_checkpointed(
                    &mut victim,
                    &dm.program,
                    &[Value::Int(3), Value::Int(9), Value::Int(1)],
                    &seq,
                    &RetryPolicy::default(),
                    &mut stats,
                )
                .unwrap();
            }
        });
        assert!(stats.commits > 0);
        // Both writers target branch 9, so some conflicts are certain;
        // the checkpointing path resolves them via rollback or restart.
        cluster.shutdown();
    }

    #[test]
    fn observed_checkpoint_run_uses_ckpt_kinds() {
        use acn_obs::{AbortKind, TxnObserver};
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = transfer_dm();
        let seq = BlockSeq::from_units(&dm);
        let mut stats = CheckpointStats::default();
        let mut obs = TxnObserver::default();
        run_checkpointed_observed(
            &mut client,
            &dm.program,
            &[Value::Int(1), Value::Int(2), Value::Int(25)],
            &seq,
            &RetryPolicy::default(),
            &mut stats,
            Some(&mut obs),
        )
        .unwrap();
        assert!(matches!(
            obs.trace.iter().last(),
            Some(TxnEvent::Commit { .. })
        ));
        assert_eq!(
            obs.aborts
                .total_of(&[AbortKind::CkptRollback, AbortKind::CkptRestart]),
            stats.rollbacks + stats.full_restarts,
            "checkpoint aborts attribute under checkpoint kinds only"
        );
        assert_eq!(obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS), 0);
        cluster.shutdown();
    }

    #[test]
    fn checkpoint_overhead_scales_with_blocks() {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = transfer_dm();
        let per_unit = BlockSeq::from_units(&dm);
        let flat = BlockSeq::flat(&dm);
        let mut s1 = CheckpointStats::default();
        let mut s2 = CheckpointStats::default();
        run_checkpointed(
            &mut client,
            &dm.program,
            &[Value::Int(1), Value::Int(2), Value::Int(1)],
            &per_unit,
            &RetryPolicy::default(),
            &mut s1,
        )
        .unwrap();
        run_checkpointed(
            &mut client,
            &dm.program,
            &[Value::Int(1), Value::Int(2), Value::Int(1)],
            &flat,
            &RetryPolicy::default(),
            &mut s2,
        )
        .unwrap();
        assert!(s1.checkpoints > s2.checkpoints);
        cluster.shutdown();
    }
}
