//! The periodic reconfiguration controller — QR-ACN's control loop.
//!
//! One `AcnController` exists per transaction template and is shared by
//! every client thread executing that template. On each transaction the
//! thread grabs the current Block sequence; whenever the refresh period
//! has elapsed, the thread crossing the boundary samples contention
//! (Dynamic Module) and recomputes the sequence (Algorithm Module), which
//! then atomically replaces the shared one. "This algorithm is executed
//! asynchronously and periodically by clients running the transactional
//! applications."

use crate::algorithm::AlgorithmModule;
use crate::blocks::BlockSeq;
use crate::dynamic_module::DynamicModule;
use acn_dtm::DtmClient;
use acn_txir::DependencyModel;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the Dynamic Module obtains its contention samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingMode {
    /// A dedicated (small) contention query per period.
    #[default]
    Explicit,
    /// Consume the levels piggybacked on the client's ordinary remote
    /// reads ("meta-data are coupled with existing network messages" —
    /// §V-C2). Requires [`AcnController::enable_piggyback`] to have armed
    /// the client; falls back to an explicit query until a piggybacked
    /// sample has arrived.
    Piggyback,
}

/// Controller tuning.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// How often to re-assess the Block composition. The paper ran "QR-ACN's
    /// algorithm for assessing the effectiveness of the current closed
    /// nesting configuration every 10 seconds"; scaled-down simulations use
    /// 50–500 ms.
    pub period: Duration,
    /// EWMA smoothing for contention samples (1.0 = none).
    pub alpha: f64,
    /// Sample transport.
    pub sampling: SamplingMode,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            period: Duration::from_millis(200),
            alpha: 1.0,
            sampling: SamplingMode::Explicit,
        }
    }
}

/// Shared adaptive state for one transaction template.
pub struct AcnController {
    dm: Arc<DependencyModel>,
    algorithm: AlgorithmModule,
    cfg: ControllerConfig,
    seq: RwLock<Arc<BlockSeq>>,
    /// Sampler + last-refresh stamp, guarded together so only one thread
    /// refreshes per period (`try_lock`: the others keep executing).
    sampler: Mutex<SamplerState>,
    refreshes: std::sync::atomic::AtomicU64,
}

struct SamplerState {
    dynamic: DynamicModule,
    last: Instant,
}

impl AcnController {
    /// Build the controller with the initial static configuration (one
    /// Block per UnitBlock, program order).
    pub fn new(
        dm: Arc<DependencyModel>,
        algorithm: AlgorithmModule,
        cfg: ControllerConfig,
    ) -> Self {
        let classes: BTreeSet<u16> = dm
            .units
            .iter()
            .flat_map(|u| u.classes.iter().map(|c| c.id))
            .collect();
        let initial = Arc::new(BlockSeq::from_units(&dm));
        AcnController {
            algorithm,
            cfg,
            seq: RwLock::new(initial),
            sampler: Mutex::new(SamplerState {
                dynamic: DynamicModule::new(classes.into_iter().collect(), cfg.alpha),
                last: Instant::now(),
            }),
            refreshes: std::sync::atomic::AtomicU64::new(0),
            dm,
        }
    }

    /// The dependency model this controller adapts.
    pub fn model(&self) -> &Arc<DependencyModel> {
        &self.dm
    }

    /// The object classes this controller's template opens.
    pub fn classes(&self) -> Vec<u16> {
        self.sampler.lock().dynamic.classes().to_vec()
    }

    /// Arm `client` so that this controller's classes ride along on every
    /// remote read (for [`SamplingMode::Piggyback`]). When several
    /// controllers share one client, arm it once with the union of their
    /// classes instead.
    pub fn enable_piggyback(&self, client: &mut DtmClient) {
        client.set_piggyback_classes(self.classes());
    }

    /// The Block sequence to execute right now.
    pub fn current(&self) -> Arc<BlockSeq> {
        Arc::clone(&self.seq.read())
    }

    /// How many reconfigurations have been installed.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Called by client threads between transactions: if the period has
    /// elapsed (and no other thread is already refreshing), sample
    /// contention and install a new Block sequence. Returns `true` when a
    /// refresh happened.
    pub fn maybe_refresh(&self, client: &mut DtmClient) -> bool {
        let Some(mut guard) = self.sampler.try_lock() else {
            return false; // another thread is refreshing
        };
        if guard.last.elapsed() < self.cfg.period {
            return false;
        }
        guard.last = Instant::now();
        let sampled = match self.cfg.sampling {
            SamplingMode::Explicit => guard.dynamic.refresh(client).is_ok(),
            SamplingMode::Piggyback => {
                guard.dynamic.refresh_from_piggyback(client)
                    // Cold start: no read has carried a sample yet.
                    || guard.dynamic.refresh(client).is_ok()
            }
        };
        if !sampled {
            return false; // quorum hiccup: keep the old sequence
        }
        let levels = guard.dynamic.levels().clone();
        drop(guard); // release the sampler while recomputing
        let next = Arc::new(self.algorithm.recompute(&self.dm, &levels));
        let changed = {
            let mut seq = self.seq.write();
            let changed = **seq != *next;
            *seq = next;
            changed
        };
        self.refreshes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        changed
    }

    /// Force a refresh with explicit levels (tests, ablations).
    pub fn refresh_with_levels(&self, levels: &std::collections::HashMap<u16, f64>) {
        let next = Arc::new(self.algorithm.recompute(&self.dm, levels));
        *self.seq.write() = next;
        self.refreshes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention_model::SumModel;
    use acn_txir::{FieldId, ObjClass, ProgramBuilder};
    use std::collections::HashMap;

    const BRANCH: ObjClass = ObjClass::new(0, "Branch");
    const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
    const BAL: FieldId = FieldId(0);

    fn transfer_dm() -> Arc<DependencyModel> {
        let mut b = ProgramBuilder::new("t", 3);
        let amt = b.param(2);
        let br = b.open_update(BRANCH, b.param(0));
        let v = b.get(br, BAL);
        let n = b.sub(v, amt);
        b.set(br, BAL, n);
        let a = b.open_update(ACCOUNT, b.param(1));
        let w = b.get(a, BAL);
        let m = b.add(w, amt);
        b.set(a, BAL, m);
        Arc::new(DependencyModel::analyze(b.finish()).unwrap())
    }

    fn controller() -> AcnController {
        AcnController::new(
            transfer_dm(),
            AlgorithmModule::with_model(Box::new(SumModel)),
            ControllerConfig::default(),
        )
    }

    #[test]
    fn initial_sequence_is_static_per_unit() {
        let c = controller();
        let seq = c.current();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.block_units, vec![vec![0], vec![1]]);
        assert_eq!(c.refresh_count(), 0);
    }

    #[test]
    fn forced_refresh_reorders_for_hot_branch() {
        let c = controller();
        let levels: HashMap<u16, f64> = [(BRANCH.id, 9.0), (ACCOUNT.id, 0.5)].into();
        c.refresh_with_levels(&levels);
        let seq = c.current();
        assert_eq!(
            seq.block_units,
            vec![vec![1], vec![0]],
            "hot branch block moves to the commit side"
        );
        assert_eq!(c.refresh_count(), 1);
    }

    #[test]
    fn tracked_classes_cover_all_opens() {
        let c = controller();
        let guard = c.sampler.lock();
        let mut classes = guard.dynamic.classes().to_vec();
        classes.sort_unstable();
        assert_eq!(classes, vec![BRANCH.id, ACCOUNT.id]);
    }

    #[test]
    fn current_is_cheap_and_shared() {
        let c = controller();
        let a = c.current();
        let b = c.current();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
