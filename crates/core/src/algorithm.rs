//! The Algorithm Module — Steps 1–3 of §V-C3.
//!
//! Invoked periodically on client nodes with the dependency model (static)
//! and the current per-class contention levels (dynamic); produces the new
//! Block sequence for the Executor Engine.
//!
//! * **Step 1** discards the current composition, splits merged Blocks back
//!   into UnitBlocks, and re-attaches every local operation to the *most
//!   contended* UnitBlock that accesses one of the objects it manages (so
//!   hot UnitBlocks carry their dependent local work and can be shifted as
//!   a unit). A re-attachment that would create a dependency cycle falls
//!   back to the static host.
//! * **Step 2** merges adjacent UnitBlocks whose contention levels are
//!   similar (within a configured threshold), so an invalidation of one
//!   member re-executes just the merged Block instead of — once the earlier
//!   member has already committed into the parent — the entire transaction.
//!   Adjacency is taken in the contention-sorted order, which reproduces
//!   the paper's Bank illustration (both branch UnitBlocks merge, both
//!   account UnitBlocks merge) and its TPC-C narrative ("QR-ACN merges the
//!   blocks with similar contention levels").
//! * **Step 3** orders the Blocks by ascending contention level while
//!   preserving every data dependency, leaving the hottest Blocks as close
//!   to the commit phase as the dependencies allow.

use crate::blocks::{group_edges, BlockSeq};
use crate::contention_model::ContentionModel;
use acn_txir::{is_acyclic, lift_edges, topo_order_preserving, DependencyModel, UnitBlockId};
use std::collections::HashMap;

/// Tuning knobs for the Algorithm Module.
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmConfig {
    /// Relative component of the similarity band: two levels `a`, `b` are
    /// "similar" when `|a − b| ≤ abs_threshold + rel_threshold · max(a, b)`.
    pub rel_threshold: f64,
    /// Absolute floor of the similarity band.
    pub abs_threshold: f64,
}

impl Default for AlgorithmConfig {
    fn default() -> Self {
        AlgorithmConfig {
            rel_threshold: 0.5,
            abs_threshold: 1.0,
        }
    }
}

/// The Algorithm Module.
pub struct AlgorithmModule {
    cfg: AlgorithmConfig,
    model: Box<dyn ContentionModel>,
}

impl AlgorithmModule {
    /// Build with explicit thresholds and contention model.
    pub fn new(cfg: AlgorithmConfig, model: Box<dyn ContentionModel>) -> Self {
        AlgorithmModule { cfg, model }
    }

    /// Default configuration with the given contention model.
    pub fn with_model(model: Box<dyn ContentionModel>) -> Self {
        Self::new(AlgorithmConfig::default(), model)
    }

    fn similar(&self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.cfg.abs_threshold + self.cfg.rel_threshold * a.max(b)
    }

    /// Should a block boundary separate `prev` from `next` (in the sorted
    /// execution order)? Only when contention *strictly increases* beyond
    /// the similarity band. Similar neighbours merge (Step 2's letter);
    /// and a *hotter-before-colder* inversion — which the sort only
    /// produces when a data dependency forces a hot block before its
    /// dependents (e.g., TPC-C order inserts deriving ids from the hot
    /// District counter) — also merges, per Step 2's rationale: once the
    /// hot block has committed into the parent, an invalidation of its
    /// objects can only be a full restart, whereas fused with its
    /// dependents it partially rolls back.
    fn boundary(&self, prev: f64, next: f64) -> bool {
        next > prev && !self.similar(prev, next)
    }

    /// Contention level of one UnitBlock: the hottest class it opens
    /// ("each UnitBlock is composed of only one access to a shared
    /// object"; composite conditional blocks take their hottest member).
    fn unit_level(dm: &DependencyModel, u: UnitBlockId, class_levels: &HashMap<u16, f64>) -> f64 {
        dm.units[u]
            .classes
            .iter()
            .map(|c| class_levels.get(&c.id).copied().unwrap_or(0.0))
            .fold(0.0, f64::max)
    }

    /// Run Steps 1–3 and produce the new Block sequence.
    pub fn recompute(&self, dm: &DependencyModel, class_levels: &HashMap<u16, f64>) -> BlockSeq {
        let n_units = dm.unit_count();
        let levels: Vec<f64> = (0..n_units)
            .map(|u| Self::unit_level(dm, u, class_levels))
            .collect();

        // ---- Step 1: re-attach local operations to hot eligible hosts.
        let mut assignment = dm.default_assignment.clone();
        for stmt in 0..assignment.len() {
            let eligible = &dm.eligible_hosts[stmt];
            if eligible.len() < 2 {
                continue;
            }
            // Most contended eligible host; ties go to the latest open
            // (the static rule), which eligible_hosts lists last.
            let best = *eligible
                .iter()
                .max_by(|&&a, &&b| {
                    levels[a]
                        .partial_cmp(&levels[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                })
                .expect("eligible set non-empty");
            if best == assignment[stmt] {
                continue;
            }
            let prev = assignment[stmt];
            assignment[stmt] = best;
            let edges = lift_edges(&dm.graph, &assignment);
            if !is_acyclic(n_units, &edges) {
                assignment[stmt] = prev; // would deadlock the ordering
            }
        }
        let unit_edges = lift_edges(&dm.graph, &assignment);

        // ---- Step 3 (unit granularity): contention-sorted, dependency-
        // preserving order. Computed before Step 2 so "adjacent" means
        // adjacent in the order blocks will actually execute.
        let order = topo_order_preserving(n_units, &unit_edges, |u| levels[u])
            .expect("step-1 kept the unit graph acyclic");

        // ---- Step 2: merge runs of similar-contention neighbours.
        let mut groups: Vec<Vec<UnitBlockId>> = Vec::new();
        for &u in &order {
            let start_new = match groups.last() {
                None => true,
                Some(g) => {
                    let prev = *g.last().expect("groups are non-empty");
                    self.boundary(levels[prev], levels[u])
                }
            };
            if start_new {
                groups.push(vec![u]);
                continue;
            }
            // Tentatively merge; a contraction cycle forces a new group.
            groups.last_mut().expect("checked above").push(u);
            if group_edges(dm, &groups, &assignment).is_none() {
                let u = groups
                    .last_mut()
                    .expect("checked above")
                    .pop()
                    .expect("just pushed");
                groups.push(vec![u]);
            }
        }

        // ---- Step 3 (block granularity): final ordering by the block-level
        // contention model, still dependency-preserving.
        let block_levels: Vec<f64> = groups
            .iter()
            .map(|g| {
                let member_levels: Vec<f64> = g.iter().map(|&u| levels[u]).collect();
                self.model.block_level(&member_levels)
            })
            .collect();
        let bedges = group_edges(dm, &groups, &assignment).expect("merge step verified acyclicity");
        let border = topo_order_preserving(groups.len(), &bedges, |g| block_levels[g])
            .expect("group graph is acyclic");
        let ordered: Vec<Vec<UnitBlockId>> =
            border.into_iter().map(|g| groups[g].clone()).collect();

        let seq = BlockSeq::compose(dm, &ordered, &assignment);
        debug_assert!({
            seq.assert_respects_dependencies(dm);
            true
        });
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention_model::SumModel;
    use acn_txir::{FieldId, ObjClass, ProgramBuilder};

    const BRANCH: ObjClass = ObjClass::new(0, "Branch");
    const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
    const A: ObjClass = ObjClass::new(2, "A");
    const B: ObjClass = ObjClass::new(3, "B");
    const BAL: FieldId = FieldId(0);

    fn module() -> AlgorithmModule {
        AlgorithmModule::with_model(Box::new(SumModel))
    }

    fn levels(pairs: &[(u16, f64)]) -> HashMap<u16, f64> {
        pairs.iter().copied().collect()
    }

    /// The paper's Bank transfer, written flat in Figure 1 order: branches
    /// first, then accounts.
    fn bank_transfer() -> DependencyModel {
        let mut b = ProgramBuilder::new("bank/transfer", 5);
        let amt = b.param(4);
        let br1 = b.open_update(BRANCH, b.param(0)); // unit 0
        let br2 = b.open_update(BRANCH, b.param(1)); // unit 1
        let v1 = b.get(br1, BAL);
        let n1 = b.sub(v1, amt);
        b.set(br1, BAL, n1);
        let v2 = b.get(br2, BAL);
        let n2 = b.add(v2, amt);
        b.set(br2, BAL, n2);
        let a1 = b.open_update(ACCOUNT, b.param(2)); // unit 2
        let a2 = b.open_update(ACCOUNT, b.param(3)); // unit 3
        let w1 = b.get(a1, BAL);
        let m1 = b.sub(w1, amt);
        b.set(a1, BAL, m1);
        let w2 = b.get(a2, BAL);
        let m2 = b.add(w2, amt);
        b.set(a2, BAL, m2);
        DependencyModel::analyze(b.finish()).unwrap()
    }

    /// Figure 3's outcome: hot branches merge into one Block executed last;
    /// cold accounts merge into one Block executed first.
    #[test]
    fn bank_reproduces_figure_3() {
        let dm = bank_transfer();
        let seq = module().recompute(&dm, &levels(&[(BRANCH.id, 8.0), (ACCOUNT.id, 1.0)]));
        assert_eq!(seq.len(), 2, "two Blocks: accounts + branches");
        assert_eq!(seq.block_units[0], vec![2, 3], "accounts first");
        assert_eq!(seq.block_units[1], vec![0, 1], "branches by the commit");
        seq.assert_respects_dependencies(&dm);
    }

    /// When the hot set flips (accounts hot), the ordering flips too —
    /// the adaptivity the Fig 4(f) experiment exercises.
    #[test]
    fn bank_adapts_to_hot_set_shift() {
        let dm = bank_transfer();
        let seq = module().recompute(&dm, &levels(&[(BRANCH.id, 1.0), (ACCOUNT.id, 8.0)]));
        assert_eq!(seq.block_units[0], vec![0, 1], "branches first now");
        assert_eq!(seq.block_units[1], vec![2, 3], "accounts by the commit");
    }

    /// Uniform contention merges everything into a single flat-like Block
    /// (the Fig 4(d) Delivery regime where nesting cannot help).
    #[test]
    fn uniform_contention_merges_all() {
        let dm = bank_transfer();
        let seq = module().recompute(&dm, &levels(&[(BRANCH.id, 2.0), (ACCOUNT.id, 2.0)]));
        assert_eq!(seq.len(), 1);
        seq.assert_respects_dependencies(&dm);
    }

    /// The end-of-§V-C1 example: T = {Read(OA), Read(OB), var = OA + OB}.
    /// Statically `var` sits with Read(OB), so BL1 cannot move after BL2.
    /// With OA hot, Step 1 re-attaches `var` to BL1, and BL2 (cold) is
    /// executed first.
    #[test]
    fn step1_reattachment_enables_reordering() {
        let mut b = ProgramBuilder::new("t", 0);
        let oa = b.open_read(A, 0i64); // unit 0 (hot)
        let ob = b.open_read(B, 0i64); // unit 1 (cold)
        let va = b.get(oa, BAL);
        let vb = b.get(ob, BAL);
        let _c = b.add(va, vb); // stmt 4, eligible for both units
        let dm = DependencyModel::analyze(b.finish()).unwrap();

        // Large spread so Step 2 does not merge the two units.
        let seq = module().recompute(&dm, &levels(&[(A.id, 50.0), (B.id, 0.0)]));
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.block_units[0], vec![1], "cold Read(OB) first");
        assert_eq!(seq.block_units[1], vec![0], "hot Read(OA) last");
        // And the sum moved with the hot block.
        assert!(seq.blocks[1].contains(&4));
        seq.assert_respects_dependencies(&dm);
    }

    /// With OB hot instead, the static assignment already suits: `var`
    /// stays in BL2 and BL1 executes first.
    #[test]
    fn step1_keeps_static_host_when_optimal() {
        let mut b = ProgramBuilder::new("t", 0);
        let oa = b.open_read(A, 0i64);
        let ob = b.open_read(B, 0i64);
        let va = b.get(oa, BAL);
        let vb = b.get(ob, BAL);
        let _c = b.add(va, vb);
        let dm = DependencyModel::analyze(b.finish()).unwrap();
        let seq = module().recompute(&dm, &levels(&[(A.id, 0.0), (B.id, 50.0)]));
        assert_eq!(seq.block_units[0], vec![0]);
        assert_eq!(seq.block_units[1], vec![1]);
        assert!(seq.blocks[1].contains(&4));
    }

    /// Conflicting re-attachments that would create a cycle fall back to
    /// the static hosts; the result is always a legal schedule.
    #[test]
    fn step1_cycle_fallback_keeps_schedule_legal() {
        let mut b = ProgramBuilder::new("t", 0);
        let oa = b.open_read(A, 0i64); // unit 0
        let ob = b.open_read(B, 0i64); // unit 1
        let va = b.get(oa, BAL);
        let vb = b.get(ob, BAL);
        let s1 = b.add(va, vb); // wants the hotter host
        let _s2 = b.add(s1, vb); // transitively manages A and B too
        let dm = DependencyModel::analyze(b.finish()).unwrap();
        for (la, lb) in [(50.0, 0.0), (0.0, 50.0), (50.0, 50.0)] {
            let seq = module().recompute(&dm, &levels(&[(A.id, la), (B.id, lb)]));
            seq.assert_respects_dependencies(&dm);
        }
    }

    /// Unknown classes read as zero contention.
    #[test]
    fn missing_levels_default_cold() {
        let dm = bank_transfer();
        let seq = module().recompute(&dm, &HashMap::new());
        assert_eq!(seq.len(), 1, "all-cold merges into one block");
        seq.assert_respects_dependencies(&dm);
    }

    #[test]
    fn similarity_threshold_is_relative_and_absolute() {
        let m = AlgorithmModule::new(
            AlgorithmConfig {
                rel_threshold: 0.5,
                abs_threshold: 1.0,
            },
            Box::new(SumModel),
        );
        assert!(m.similar(0.0, 1.0), "within absolute floor");
        assert!(m.similar(10.0, 14.0), "within relative band");
        assert!(!m.similar(1.0, 10.0));
        assert!(m.similar(3.0, 3.0));
    }

    /// Ordering is deterministic for fixed inputs.
    #[test]
    fn recompute_is_deterministic() {
        let dm = bank_transfer();
        let l = levels(&[(BRANCH.id, 8.0), (ACCOUNT.id, 1.0)]);
        let a = module().recompute(&dm, &l);
        let b = module().recompute(&dm, &l);
        assert_eq!(a, b);
    }
}
