//! The Executor Engine: runs transaction instances over a Block sequence.
//!
//! "This module is responsible for maintaining the sequence of Blocks that
//! comprises a transaction and for executing those Blocks in that order."
//! Each Block runs as one closed-nested transaction; a single-Block
//! sequence degenerates to flat execution (the QR-DTM baseline). Partial
//! rollback, full restart and commit-time conflicts are all handled here,
//! with a bounded randomized backoff between restarts.

use crate::blocks::BlockSeq;
use acn_dtm::{AbortScope, ChildCtx, DtmClient, DtmError, SpecCache, TxnCtx};
use acn_obs::{AbortKind, SpanKind, TxnEvent, TxnObserver};
use acn_txir::{
    prefetchable_opens, AccessMode, EvalError, ObjectId, Operand, PredictedRead, Program, Stmt,
    StmtIdx, Value,
};
use rand_like::jitter;
use std::time::{Duration, Instant};

/// Record `ev` when an observer is attached; a no-op (one branch) when not,
/// so the unobserved hot path stays unchanged.
fn emit(obs: &mut Option<&mut TxnObserver>, ev: TxnEvent) {
    if let Some(o) = obs.as_deref_mut() {
        o.on_event(ev);
    }
}

/// Restart policy for the optimistic retry loops.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Full restarts before giving up with [`RunError::RetriesExhausted`].
    pub max_restarts: usize,
    /// Consecutive partial (child) retries of one Block before escalating
    /// to a full restart.
    pub max_partial_retries: usize,
    /// Base of the randomized backoff between full restarts.
    pub backoff_base: Duration,
    /// Restarts allowed on [`RunError::Unavailable`] before it is surfaced
    /// as fatal. Defaults to 0 (fail fast, the historical behavior): a
    /// healthy cluster never loses a quorum, so unavailability means
    /// misconfiguration. Chaos runs set this high — a fault schedule can
    /// partition a client away from every quorum for a while, and the run
    /// should resume once links heal rather than kill the worker.
    pub max_unavailable_retries: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_restarts: 10_000,
            max_partial_retries: 64,
            backoff_base: Duration::from_micros(100),
            max_unavailable_retries: 0,
        }
    }
}

/// Execution-path toggles, independent of the retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Fetch the statically known remote opens of each Block
    /// ([`prefetchable_opens`]) in one batched quorum round at Block start
    /// instead of one round trip per open. Data-dependent opens always fall
    /// back to single reads. On by default; turn off for the unbatched
    /// baseline in ablations.
    pub batched_reads: bool,
    /// The transaction runs under the batch scheduler's conflict-graph
    /// speculation: dynamic conflicts are mis-speculations (the static
    /// access sets missed them), so the conflict-driven abort sites emit
    /// [`AbortKind::SpecPartial`] / [`AbortKind::SpecFull`] instead of the
    /// ordinary contention kinds. Counters are untouched — only the
    /// attribution label changes, so the exactness invariant holds in both
    /// modes. Off by default (closed-loop execution).
    pub speculation: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            batched_reads: true,
            speculation: false,
        }
    }
}

/// Execution counters for one client thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Transactions committed.
    pub commits: u64,
    /// Full transaction restarts (parent scope).
    pub full_aborts: u64,
    /// Partial rollbacks (child scope only) — the closed-nesting win.
    pub partial_aborts: u64,
    /// Restarts caused by persistent `protected` objects.
    pub locked_aborts: u64,
    /// Restarts after a quorum-unavailable round (chaos/partition runs
    /// with [`RetryPolicy::max_unavailable_retries`] > 0).
    pub unavailable_retries: u64,
}

impl ExecStats {
    /// Element-wise accumulate (for merging per-thread stats).
    pub fn merge(&mut self, other: &ExecStats) {
        self.commits += other.commits;
        self.full_aborts += other.full_aborts;
        self.partial_aborts += other.partial_aborts;
        self.locked_aborts += other.locked_aborts;
        self.unavailable_retries += other.unavailable_retries;
    }
}

impl From<ExecStats> for acn_obs::ExecCounters {
    fn from(s: ExecStats) -> Self {
        acn_obs::ExecCounters {
            commits: s.commits,
            full_aborts: s.full_aborts,
            partial_aborts: s.partial_aborts,
            locked_aborts: s.locked_aborts,
            unavailable_retries: s.unavailable_retries,
        }
    }
}

/// Terminal failures of a transaction run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// No quorum available — the cluster lost too many servers.
    Unavailable,
    /// The retry policy was exhausted without a commit.
    RetriesExhausted,
    /// The program computed an ill-typed value (a workload bug).
    Eval(EvalError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Unavailable => write!(f, "quorum unavailable"),
            RunError::RetriesExhausted => write!(f, "retry policy exhausted"),
            RunError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Feedback from one predicted run (see [`ExecutorEngine::run_predicted`]):
/// what the executor actually observed at counter reads that failed
/// validation — the coordinator's predictor re-seeds from `observed +
/// delta` — plus any aliased-open degradations the run absorbed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredictionOutcome {
    /// `(prediction, observed value)` for every failed validation.
    pub mispredicts: Vec<(PredictedRead, i64)>,
    /// Aliased-open aborts that degraded the run to flat program order.
    pub aliased: u64,
}

/// A speculative access plan for one predicted instance: the objects to
/// fetch ahead in one quorum round, and the value-blind writes to open
/// with **no** fetch at all — insert-only objects whose template never
/// reads a field of the handle, presumed absent (version 0, default
/// value) and validated like any other read-set entry at commit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecSets {
    /// Objects to prefetch into the [`SpecCache`].
    pub fetch: Vec<ObjectId>,
    /// Value-blind writes, opened without fetching (disjoint from `fetch`).
    pub blind: Vec<ObjectId>,
}

/// Re-resolves a predicted instance's access plan mid-run. Called after a
/// mispredict with every `(prediction, observed value)` pair recorded so
/// far (latest observation per site wins); returns the corrected exact
/// plan, or `None` when correction is unavailable — the run then falls
/// back to one remote read per cache-missing open.
pub type RespecFn<'a> = &'a dyn Fn(&[(PredictedRead, i64)]) -> Option<SpecSets>;

pub(crate) enum StepError {
    Dtm(DtmError),
    Eval(EvalError),
    /// A predicted counter read observed a different value than the batch
    /// scheduler assumed: the wave's access sets were wrong for this
    /// instance. Handled at the abort sites (never reaches `step_error`).
    Mispredict {
        pred: PredictedRead,
        observed: i64,
    },
    /// An `Open` resolved to an object already held by a *different*
    /// handle, voiding the dependency analysis's distinct-objects
    /// assumption. Handled at the abort sites (never reaches `step_error`).
    Aliased {
        obj: ObjectId,
    },
}

impl From<DtmError> for StepError {
    fn from(e: DtmError) -> Self {
        StepError::Dtm(e)
    }
}
impl From<EvalError> for StepError {
    fn from(e: EvalError) -> Self {
        StepError::Eval(e)
    }
}

/// Uniform access to a flat context or a child-over-parent pair, so one
/// interpreter serves both execution modes.
pub(crate) trait Access {
    fn open(&mut self, client: &mut DtmClient, obj: ObjectId, update: bool)
        -> Result<(), DtmError>;
    fn get(&self, obj: ObjectId, field: acn_txir::FieldId) -> Value;
    fn set(&mut self, obj: ObjectId, field: acn_txir::FieldId, value: Value);
}

pub(crate) struct FlatAccess<'a> {
    pub(crate) ctx: &'a mut TxnCtx,
    /// Speculative whole-transaction prefetch cache, when the run carries
    /// a predicted-exact access set (see [`ExecutorEngine::run_predicted`]).
    pub(crate) spec: Option<&'a SpecCache>,
    /// Sorted value-blind write set: these opens fetch nothing at all
    /// (see [`SpecSets`]).
    pub(crate) blind: &'a [ObjectId],
}

impl Access for FlatAccess<'_> {
    fn open(
        &mut self,
        client: &mut DtmClient,
        obj: ObjectId,
        update: bool,
    ) -> Result<(), DtmError> {
        if self.blind.binary_search(&obj).is_ok() {
            self.ctx.open_blind(obj, update);
            return Ok(());
        }
        match self.spec {
            Some(cache) => self.ctx.open_spec(client, obj, update, cache),
            None => self.ctx.open(client, obj, update),
        }
    }
    fn get(&self, obj: ObjectId, field: acn_txir::FieldId) -> Value {
        self.ctx.get_field(obj, field)
    }
    fn set(&mut self, obj: ObjectId, field: acn_txir::FieldId, value: Value) {
        self.ctx.set_field(obj, field, value)
    }
}

struct ChildAccess<'a> {
    child: &'a mut ChildCtx,
    parent: &'a TxnCtx,
    spec: Option<&'a SpecCache>,
    /// Sorted value-blind write set (see [`SpecSets`]).
    blind: &'a [ObjectId],
}

impl Access for ChildAccess<'_> {
    fn open(
        &mut self,
        client: &mut DtmClient,
        obj: ObjectId,
        update: bool,
    ) -> Result<(), DtmError> {
        if self.blind.binary_search(&obj).is_ok() {
            self.child.open_blind(self.parent, obj, update);
            return Ok(());
        }
        match self.spec {
            Some(cache) => self
                .child
                .open_spec(client, self.parent, obj, update, cache),
            None => self.child.open(client, self.parent, obj, update),
        }
    }
    fn get(&self, obj: ObjectId, field: acn_txir::FieldId) -> Value {
        self.child.get_field(self.parent, obj, field)
    }
    fn set(&mut self, obj: ObjectId, field: acn_txir::FieldId, value: Value) {
        self.child.set_field(self.parent, obj, field, value)
    }
}

/// Register file plus object-handle table for one transaction attempt.
#[derive(Clone)]
pub(crate) struct Frame<'p> {
    params: &'p [Value],
    env: Vec<Value>,
    handles: Vec<Option<ObjectId>>,
}

impl<'p> Frame<'p> {
    pub(crate) fn new(program: &Program, params: &'p [Value]) -> Self {
        Frame {
            params,
            env: vec![Value::Unit; program.vars as usize],
            handles: vec![None; program.vars as usize],
        }
    }

    fn eval(&self, op: &Operand) -> Value {
        match op {
            Operand::Const(v) => v.clone(),
            Operand::Var(v) => self.env[v.0 as usize].clone(),
            Operand::Param(p) => self.params[p.0 as usize].clone(),
        }
    }

    fn handle(&self, var: acn_txir::VarId) -> ObjectId {
        self.handles[var.0 as usize].expect("handle used before open")
    }
}

/// Run-time guards threaded through statement execution: the attempt's
/// still-active counter predictions (validated at the real read) and the
/// aliased-open check (nested mode only — flat program order is
/// alias-safe, and so is the checkpoint runner's snapshot replay).
pub(crate) struct StepGuards<'a> {
    pub(crate) preds: Option<&'a mut Vec<PredictedRead>>,
    pub(crate) alias_check: bool,
    /// When observing, counts update-mode opens (commit-time lock claims)
    /// for the wasted-work ledger's `LockHolds` event.
    pub(crate) lock_holds: Option<&'a mut u32>,
}

impl StepGuards<'_> {
    pub(crate) fn none() -> StepGuards<'static> {
        StepGuards {
            preds: None,
            alias_check: false,
            lock_holds: None,
        }
    }
}

fn run_stmt<A: Access>(
    acc: &mut A,
    client: &mut DtmClient,
    frame: &mut Frame<'_>,
    stmt: &Stmt,
    guards: &mut StepGuards<'_>,
) -> Result<(), StepError> {
    match stmt {
        Stmt::Open {
            var,
            class,
            index,
            mode,
        } => {
            let idx = frame.eval(index).as_int()? as u64;
            let obj = ObjectId::new(*class, idx);
            if guards.alias_check {
                // Handle slots from a rolled-back child run may be stale
                // (a re-run can take the other Cond branch), so this scan
                // can false-positive — safe, since the only consequence is
                // degrading the attempt to the flat program-order path.
                let slot = var.0 as usize;
                if frame
                    .handles
                    .iter()
                    .enumerate()
                    .any(|(i, h)| i != slot && *h == Some(obj))
                {
                    return Err(StepError::Aliased { obj });
                }
            }
            let update = matches!(mode, AccessMode::Update);
            acc.open(client, obj, update)?;
            if update {
                if let Some(holds) = guards.lock_holds.as_deref_mut() {
                    *holds += 1;
                }
            }
            frame.handles[var.0 as usize] = Some(obj);
        }
        Stmt::GetField { var, obj, field } => {
            let handle = frame.handle(*obj);
            let value = acc.get(handle, *field);
            if let Some(preds) = guards.preds.as_deref_mut() {
                if let Some(pos) = preds
                    .iter()
                    .position(|p| p.obj == handle && p.field == *field)
                {
                    let p = preds[pos];
                    match value.as_int() {
                        Ok(v) if v == p.value => {
                            // Validated: retire the prediction so later
                            // re-reads (after the counter advanced) don't
                            // compare against the pre-advance value.
                            preds.swap_remove(pos);
                        }
                        Ok(v) => {
                            return Err(StepError::Mispredict {
                                pred: p,
                                observed: v,
                            })
                        }
                        Err(_) => {
                            return Err(StepError::Mispredict {
                                pred: p,
                                observed: 0,
                            })
                        }
                    }
                }
            }
            frame.env[var.0 as usize] = value;
        }
        Stmt::SetField { obj, field, value } => {
            let v = frame.eval(value);
            acc.set(frame.handle(*obj), *field, v);
        }
        Stmt::Compute { out, op, ins } => {
            let args: Vec<Value> = ins.iter().map(|o| frame.eval(o)).collect();
            frame.env[out.0 as usize] = op.eval(&args)?;
        }
        Stmt::Cond {
            pred,
            then_br,
            else_br,
        } => {
            let branch = if frame.eval(pred).as_bool()? {
                then_br
            } else {
                else_br
            };
            for s in branch {
                run_stmt(acc, client, frame, s, guards)?;
            }
        }
    }
    Ok(())
}

/// Resolve each Block's statically known remote opens to concrete
/// `ObjectId`s for one instance: per Block (in schedule order), the deduped
/// targets of its prefetchable opens under `params`. An operand that fails
/// to evaluate (e.g. a mistyped parameter) is silently skipped here — the
/// `Open` statement itself will surface the error when it executes, keeping
/// eval-error semantics identical with and without batching.
fn prefetch_plan(program: &Program, params: &[Value], seq: &BlockSeq) -> Vec<Vec<ObjectId>> {
    let candidates = prefetchable_opens(program);
    seq.blocks
        .iter()
        .map(|block| {
            let mut objs: Vec<ObjectId> = Vec::new();
            for c in &candidates {
                if block.binary_search(&c.stmt).is_err() {
                    continue;
                }
                let idx = match &c.index {
                    Operand::Const(v) => v.as_int(),
                    Operand::Param(p) => params[p.0 as usize].as_int(),
                    Operand::Var(_) => unreachable!("prefetchable opens never use registers"),
                };
                if let Ok(i) = idx {
                    let obj = ObjectId::new(c.class, i as u64);
                    if !objs.contains(&obj) {
                        objs.push(obj);
                    }
                }
            }
            objs
        })
        .collect()
}

pub(crate) fn run_block<A: Access>(
    acc: &mut A,
    client: &mut DtmClient,
    frame: &mut Frame<'_>,
    program: &Program,
    stmts: &[StmtIdx],
    guards: &mut StepGuards<'_>,
) -> Result<(), StepError> {
    for &i in stmts {
        run_stmt(acc, client, frame, &program.stmts[i], guards)?;
    }
    Ok(())
}

/// The Executor Engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecutorEngine {
    policy: RetryPolicy,
    config: ExecutorConfig,
}

impl ExecutorEngine {
    /// Build with an explicit retry policy and default execution config.
    pub fn new(policy: RetryPolicy) -> Self {
        Self::with_config(policy, ExecutorConfig::default())
    }

    /// Build with explicit retry policy and execution config.
    pub fn with_config(policy: RetryPolicy, config: ExecutorConfig) -> Self {
        ExecutorEngine { policy, config }
    }

    /// [`ExecutorEngine::run`] plus end-to-end latency recording: the
    /// duration from first attempt to successful commit (including all
    /// retries and backoff) lands in `latency`.
    pub fn run_timed(
        &self,
        client: &mut DtmClient,
        program: &Program,
        params: &[Value],
        seq: &BlockSeq,
        stats: &mut ExecStats,
        latency: &mut crate::histogram::LatencyHistogram,
    ) -> Result<(), RunError> {
        self.run_timed_observed(client, program, params, seq, stats, latency, None)
    }

    /// [`ExecutorEngine::run_timed`] with an optional [`TxnObserver`]
    /// recording structured events and abort attribution.
    #[allow(clippy::too_many_arguments)]
    pub fn run_timed_observed(
        &self,
        client: &mut DtmClient,
        program: &Program,
        params: &[Value],
        seq: &BlockSeq,
        stats: &mut ExecStats,
        latency: &mut crate::histogram::LatencyHistogram,
        obs: Option<&mut TxnObserver>,
    ) -> Result<(), RunError> {
        let start = std::time::Instant::now();
        let out = self.run_observed(client, program, params, seq, stats, obs);
        if out.is_ok() {
            latency.record(start.elapsed());
        }
        out
    }

    /// Execute one transaction instance (`program` + `params`) over the
    /// Block sequence `seq`, retrying on aborts per the policy. Statistics
    /// are accumulated into `stats`.
    pub fn run(
        &self,
        client: &mut DtmClient,
        program: &Program,
        params: &[Value],
        seq: &BlockSeq,
        stats: &mut ExecStats,
    ) -> Result<(), RunError> {
        self.run_observed(client, program, params, seq, stats, None)
    }

    /// [`ExecutorEngine::run`] with an optional [`TxnObserver`]. Every
    /// `stats` abort increment emits exactly one matching abort event, so
    /// the observer's attribution table reconciles against `stats` to the
    /// unit (`total_of(EXECUTOR_KINDS) == full + partial + locked`).
    pub fn run_observed(
        &self,
        client: &mut DtmClient,
        program: &Program,
        params: &[Value],
        seq: &BlockSeq,
        stats: &mut ExecStats,
        obs: Option<&mut TxnObserver>,
    ) -> Result<(), RunError> {
        self.run_loop(client, program, params, seq, stats, obs, None)
    }

    /// [`ExecutorEngine::run_timed_observed`] under batch-scheduler counter
    /// predictions: each [`PredictedRead`] is validated at the instance's
    /// real read of that counter. On mismatch the attempt is repaired — a
    /// partial rollback of the offending Block on a nested schedule
    /// ([`AbortKind::SpecMispredict`]), a full restart on the flat arm —
    /// with the failed prediction dropped so the re-run reads freely, and
    /// the observed value reported through `outcome` so the coordinator's
    /// predictor can resynchronize. Aliased opens degrade the run to flat
    /// program order ([`AbortKind::AliasedOpen`]) and are counted there too.
    ///
    /// `spec_objs` is the instance's resolved access set (empty to opt
    /// out): every attempt fetches it in **one** quorum round into a side
    /// cache that `Open` statements install from ([`SpecCache`]), so a
    /// predicted-exact instance — Var-indexed opens included — pays a
    /// single read round instead of one per Block plus one per
    /// data-dependent open. Mispredicted objects are simply never
    /// installed; the real open misses the cache and reads remotely.
    #[allow(clippy::too_many_arguments)]
    pub fn run_predicted(
        &self,
        client: &mut DtmClient,
        program: &Program,
        params: &[Value],
        seq: &BlockSeq,
        preds: &[PredictedRead],
        spec_objs: &[ObjectId],
        blind: &[ObjectId],
        respec: Option<RespecFn<'_>>,
        stats: &mut ExecStats,
        latency: &mut crate::histogram::LatencyHistogram,
        obs: Option<&mut TxnObserver>,
        outcome: &mut PredictionOutcome,
    ) -> Result<(), RunError> {
        let start = std::time::Instant::now();
        let out = self.run_loop(
            client,
            program,
            params,
            seq,
            stats,
            obs,
            Some((preds, spec_objs, blind, respec, outcome)),
        );
        if out.is_ok() {
            latency.record(start.elapsed());
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn run_loop(
        &self,
        client: &mut DtmClient,
        program: &Program,
        params: &[Value],
        seq: &BlockSeq,
        stats: &mut ExecStats,
        mut obs: Option<&mut TxnObserver>,
        preds: Option<PredInput<'_>>,
    ) -> Result<(), RunError> {
        assert_eq!(
            params.len(),
            program.params as usize,
            "instance must bind every parameter"
        );
        // The plan depends only on the template, the instance parameters
        // and the schedule — all fixed for the whole retry loop — so it is
        // computed once per run, not per attempt.
        let plan = if self.config.batched_reads {
            Some(prefetch_plan(program, params, seq))
        } else {
            None
        };
        // Predictions persist across attempts: a prediction dropped after a
        // mispredict stays dropped, so a restarted attempt cannot trip over
        // the same wrong value again.
        let mut pred_state = preds.map(|(p, objs, blind, respec, outcome)| PredState {
            active: p.to_vec(),
            spec_objs: if self.config.batched_reads {
                objs.to_vec()
            } else {
                Vec::new()
            },
            blind: if self.config.batched_reads {
                let mut b = blind.to_vec();
                b.sort_unstable();
                b
            } else {
                Vec::new()
            },
            unblinded: Vec::new(),
            respec,
            outcome,
        });
        let mut forced_flat = false;
        let mut restarts = 0usize;
        let mut unavailable = 0usize;
        loop {
            match self.attempt(
                client,
                program,
                params,
                seq,
                plan.as_deref(),
                stats,
                obs.as_deref_mut(),
                pred_state.as_mut(),
                &mut forced_flat,
            ) {
                Ok(()) => {
                    stats.commits += 1;
                    emit(
                        &mut obs,
                        TxnEvent::Commit {
                            restarts: restarts as u32,
                        },
                    );
                    return Ok(());
                }
                Err(AttemptError::Restart) => {
                    restarts += 1;
                    if restarts >= self.policy.max_restarts {
                        return Err(RunError::RetriesExhausted);
                    }
                    let bo = Instant::now();
                    jitter(self.policy.backoff_base, restarts);
                    if let Some(t) = client.tracer_mut() {
                        t.record_plain(SpanKind::Backoff, bo);
                    }
                }
                Err(AttemptError::Fatal(RunError::Unavailable))
                    if unavailable < self.policy.max_unavailable_retries =>
                {
                    // A fault window may have cut this client off from every
                    // quorum; back off (the window is typically much longer
                    // than a conflict) and restart the attempt from scratch.
                    unavailable += 1;
                    stats.unavailable_retries += 1;
                    emit(&mut obs, TxnEvent::UnavailableRetry);
                    let bo = Instant::now();
                    jitter(self.policy.backoff_base.saturating_mul(8), unavailable);
                    if let Some(t) = client.tracer_mut() {
                        t.record_plain(SpanKind::Backoff, bo);
                    }
                }
                Err(AttemptError::Fatal(e)) => return Err(e),
            }
        }
    }
}

enum AttemptError {
    /// Full abort — retry from the beginning.
    Restart,
    Fatal(RunError),
}

/// The prediction inputs a caller hands [`ExecutorEngine::run_predicted`]:
/// predictions, speculative fetch set, blind set, re-resolver, feedback sink.
type PredInput<'a> = (
    &'a [PredictedRead],
    &'a [ObjectId],
    &'a [ObjectId],
    Option<RespecFn<'a>>,
    &'a mut PredictionOutcome,
);

/// Per-run prediction state: the still-active predictions (mutated as they
/// validate or fail), the resolved access set to prefetch speculatively
/// (empty when batched reads are off), and the caller's feedback sink.
struct PredState<'a> {
    active: Vec<PredictedRead>,
    spec_objs: Vec<ObjectId>,
    /// Sorted value-blind write set ([`SpecSets::blind`]).
    blind: Vec<ObjectId>,
    /// Blind objects that turned out to exist (their presumed version-0
    /// read failed validation): demoted to fetched opens, and never
    /// re-blinded by a later correction.
    unblinded: Vec<ObjectId>,
    respec: Option<RespecFn<'a>>,
    outcome: &'a mut PredictionOutcome,
}

impl PredState<'_> {
    /// After a mispredict: re-resolve the access plan under the observed
    /// counter values so the next speculative fetch targets the objects
    /// the re-run will actually open. Returns the corrected fetch set
    /// when the run speculates and the caller's re-resolution succeeds.
    fn correct_spec(&mut self) -> Option<Vec<ObjectId>> {
        if self.spec_objs.is_empty() && self.blind.is_empty() {
            return None;
        }
        let mut sets = (self.respec?)(&self.outcome.mispredicts)?;
        sets.blind.sort_unstable();
        // An object demoted by `unblind` stays demoted: re-blinding a
        // known-existing object would just invalidate again.
        for o in &self.unblinded {
            if let Ok(i) = sets.blind.binary_search(o) {
                sets.blind.remove(i);
                if !sets.fetch.contains(o) {
                    sets.fetch.push(*o);
                }
            }
        }
        self.spec_objs.clone_from(&sets.fetch);
        self.blind = sets.blind;
        Some(sets.fetch)
    }

    /// Demote invalidated blind opens to ordinary fetched opens: the
    /// presumed-absent object exists, so the retry must read its real
    /// version and value.
    fn unblind(&mut self, objs: &[ObjectId]) {
        for o in objs {
            if let Ok(i) = self.blind.binary_search(o) {
                self.blind.remove(i);
                if let Err(j) = self.unblinded.binary_search(o) {
                    self.unblinded.insert(j, *o);
                }
                if !self.spec_objs.contains(o) {
                    self.spec_objs.push(*o);
                }
            }
        }
    }
}

impl ExecutorEngine {
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        client: &mut DtmClient,
        program: &Program,
        params: &[Value],
        seq: &BlockSeq,
        plan: Option<&[Vec<ObjectId>]>,
        stats: &mut ExecStats,
        mut obs: Option<&mut TxnObserver>,
        mut preds: Option<&mut PredState<'_>>,
        forced_flat: &mut bool,
    ) -> Result<(), AttemptError> {
        emit(&mut obs, TxnEvent::Begin);
        let mut ctx = TxnCtx::begin(client);
        let mut frame = Frame::new(program, params);

        // Speculative whole-transaction prefetch: one quorum round fetches
        // the instance's resolved access set into a side cache that the
        // `Open` statements below install from. It supersedes the static
        // per-Block plan — a resolved-exact set covers the statically known
        // opens too — so with it active no other read round is issued
        // unless a prediction was wrong (cache miss at the real open).
        let mut spec = match preds.as_deref_mut() {
            Some(p) if !p.spec_objs.is_empty() => {
                // `preds` is mutably borrowed here, but a fresh context has
                // an empty read-set — this fetch cannot surface a blind
                // invalidation, so there is nothing to unblind.
                let cache = ctx
                    .fetch_spec(client, &p.spec_objs)
                    .map_err(|e| self.step_error(StepError::Dtm(e), stats, None, None, &mut obs))?;
                if !cache.is_empty() {
                    emit(
                        &mut obs,
                        TxnEvent::BatchedRead {
                            block: None,
                            objs: cache.len() as u32,
                        },
                    );
                }
                Some(cache)
            }
            _ => None,
        };
        // The static plan only drives prefetch rounds when the speculative
        // cache is absent — and it must also stand down while any blind
        // opens are pending, or it would fetch the presumed-absent objects
        // before the blind check at `Access::open` ever runs.
        let plan = if spec.is_none() && preds.as_deref().is_none_or(|p| p.blind.is_empty()) {
            plan
        } else {
            None
        };

        if seq.is_flat() || *forced_flat {
            if let Some(plan) = plan {
                // Flat execution has a single Block: prefetch the union of
                // every statically known open in one quorum round.
                let mut union: Vec<ObjectId> = Vec::new();
                for obj in plan.iter().flatten() {
                    if !union.contains(obj) {
                        union.push(*obj);
                    }
                }
                ctx.open_batch(client, &union).map_err(|e| {
                    self.step_error(
                        StepError::Dtm(e),
                        stats,
                        None,
                        preds.as_deref_mut(),
                        &mut obs,
                    )
                })?;
                if !union.is_empty() {
                    emit(
                        &mut obs,
                        TxnEvent::BatchedRead {
                            block: None,
                            objs: union.len() as u32,
                        },
                    );
                }
            }
            // Program order, not schedule order: a genuinely flat sequence
            // is already sorted, and the aliased-open degrade path relies
            // on re-running a reordered nested schedule in program order,
            // where aliasing is harmless.
            let mut all: Vec<StmtIdx> = seq.blocks.iter().flatten().copied().collect();
            all.sort_unstable();
            let mut lock_holds: u32 = 0;
            let result = {
                let (active, blind) = match preds.as_deref_mut() {
                    Some(p) => (Some(&mut p.active), p.blind.as_slice()),
                    None => (None, &[][..]),
                };
                let mut guards = StepGuards {
                    preds: active,
                    alias_check: false,
                    lock_holds: Some(&mut lock_holds),
                };
                let mut acc = FlatAccess {
                    ctx: &mut ctx,
                    spec: spec.as_ref(),
                    blind,
                };
                run_block(&mut acc, client, &mut frame, program, &all, &mut guards)
            };
            // Charged before any terminal event so the wasted-work ledger
            // attributes these holds to whatever this attempt becomes —
            // a commit or the discarded side of the abort below.
            if lock_holds > 0 {
                emit(
                    &mut obs,
                    TxnEvent::LockHolds {
                        block: None,
                        holds: lock_holds,
                    },
                );
            }
            if let Err(e) = result {
                if let StepError::Mispredict { pred, observed } = &e {
                    // Flat arm: no child scope to repair — full restart,
                    // with the prediction dropped and fed back.
                    if let Some(p) = preds.as_deref_mut() {
                        p.active
                            .retain(|q| !(q.obj == pred.obj && q.field == pred.field));
                        p.outcome.mispredicts.push((*pred, *observed));
                        // Correct the speculative fetch set so the restart
                        // refetches the objects the re-run will actually
                        // open — still one round, no per-open cache misses.
                        p.correct_spec();
                    }
                    stats.full_aborts += 1;
                    emit(
                        &mut obs,
                        TxnEvent::FullAbort {
                            block: None,
                            obj: Some(pred.obj),
                            kind: AbortKind::SpecMispredict,
                        },
                    );
                    return Err(AttemptError::Restart);
                }
                return Err(self.step_error(e, stats, None, preds.as_deref_mut(), &mut obs));
            }
        } else {
            for (bi, block) in seq.blocks.iter().enumerate() {
                let mut partial_tries = 0usize;
                loop {
                    emit(&mut obs, TxnEvent::BlockStart { block: bi as u32 });
                    if let Some(t) = client.tracer_mut() {
                        t.block_start(bi as u32);
                    }
                    let mut child = ctx.child();
                    // Prefetch this Block's known opens through the child:
                    // the fetches become child-first reads, so a later
                    // invalidation of a prefetched object still rolls back
                    // only this Block.
                    let prefetched = match plan {
                        Some(plan) => child
                            .open_batch(client, &mut ctx, &plan[bi])
                            .map_err(StepError::Dtm),
                        None => Ok(()),
                    };
                    if prefetched.is_ok() {
                        if let Some(plan) = plan {
                            if !plan[bi].is_empty() {
                                emit(
                                    &mut obs,
                                    TxnEvent::BatchedRead {
                                        block: Some(bi as u32),
                                        objs: plan[bi].len() as u32,
                                    },
                                );
                            }
                        }
                    }
                    let mut lock_holds: u32 = 0;
                    let result = prefetched.and_then(|()| {
                        let (active, blind) = match preds.as_deref_mut() {
                            Some(p) => (Some(&mut p.active), p.blind.as_slice()),
                            None => (None, &[][..]),
                        };
                        let mut guards = StepGuards {
                            preds: active,
                            alias_check: true,
                            lock_holds: Some(&mut lock_holds),
                        };
                        let mut acc = ChildAccess {
                            child: &mut child,
                            parent: &ctx,
                            spec: spec.as_ref(),
                            blind,
                        };
                        run_block(&mut acc, client, &mut frame, program, block, &mut guards)
                    });
                    // Emitted before the Block's terminal event: a partial
                    // abort must charge this run's holds to the discarded
                    // Block, a completed run keeps them with the Block.
                    if lock_holds > 0 {
                        emit(
                            &mut obs,
                            TxnEvent::LockHolds {
                                block: Some(bi as u32),
                                holds: lock_holds,
                            },
                        );
                    }
                    match result {
                        Ok(()) => {
                            child.commit_into(&mut ctx);
                            if let Some(t) = client.tracer_mut() {
                                t.block_end(false);
                            }
                            break;
                        }
                        Err(e) => {
                            // Every error path abandons this Block run —
                            // whether it retries the Block, escalates, or
                            // surfaces a fatal error — so the open Block
                            // span always closes as rolled back.
                            if let Some(t) = client.tracer_mut() {
                                t.block_end(true);
                            }
                            if let StepError::Aliased { obj } = e {
                                // The distinct-objects assumption behind
                                // Block reordering is void for this
                                // instance: full abort, then re-run the
                                // whole transaction as a flat program-order
                                // sequence where aliasing is harmless.
                                stats.full_aborts += 1;
                                emit(
                                    &mut obs,
                                    TxnEvent::FullAbort {
                                        block: Some(bi as u32),
                                        obj: Some(obj),
                                        kind: AbortKind::AliasedOpen,
                                    },
                                );
                                *forced_flat = true;
                                if let Some(p) = preds.as_deref_mut() {
                                    p.outcome.aliased += 1;
                                }
                                return Err(AttemptError::Restart);
                            }
                            let (scope, blamed, kind) = match &e {
                                StepError::Dtm(DtmError::Invalidated { objs }) => (
                                    Some(child.classify(&ctx, objs)),
                                    objs.first().copied(),
                                    if self.config.speculation {
                                        AbortKind::SpecPartial
                                    } else {
                                        AbortKind::Partial
                                    },
                                ),
                                // A mispredict is always repairable from
                                // this Block: dropping the child discards
                                // nothing the parent needs, and dropping
                                // the prediction guarantees the re-run
                                // cannot trip over the same value again.
                                StepError::Mispredict { pred, observed } => {
                                    if let Some(p) = preds.as_deref_mut() {
                                        p.active.retain(|q| {
                                            !(q.obj == pred.obj && q.field == pred.field)
                                        });
                                        p.outcome.mispredicts.push((*pred, *observed));
                                    }
                                    (
                                        Some(AbortScope::Child),
                                        Some(pred.obj),
                                        AbortKind::SpecMispredict,
                                    )
                                }
                                _ => (None, None, AbortKind::Partial),
                            };
                            match scope {
                                Some(AbortScope::Child) => {
                                    // A blind open whose presumed-absent
                                    // object exists fails validation as a
                                    // child-first read: demote it so the
                                    // Block retry fetches the real value.
                                    if let (
                                        StepError::Dtm(DtmError::Invalidated { objs }),
                                        Some(p),
                                    ) = (&e, preds.as_deref_mut())
                                    {
                                        p.unblind(objs);
                                    }
                                    stats.partial_aborts += 1;
                                    emit(
                                        &mut obs,
                                        TxnEvent::PartialAbort {
                                            block: bi as u32,
                                            obj: blamed,
                                            kind,
                                        },
                                    );
                                    partial_tries += 1;
                                    if partial_tries >= self.policy.max_partial_retries {
                                        // Livelocked child: escalate.
                                        stats.full_aborts += 1;
                                        emit(
                                            &mut obs,
                                            TxnEvent::FullAbort {
                                                block: Some(bi as u32),
                                                obj: blamed,
                                                kind: AbortKind::Escalated,
                                            },
                                        );
                                        return Err(AttemptError::Restart);
                                    }
                                    // Mispredict repair refill: re-resolve
                                    // the access set under the observed
                                    // counter value and refetch, in one
                                    // batched round, whatever the cache no
                                    // longer holds — the aborted child
                                    // consumed its own installs (counter
                                    // included, which thus comes back
                                    // fresh), and the corrected derived
                                    // objects were never fetched at all.
                                    if matches!(kind, AbortKind::SpecMispredict) {
                                        let mut fetch_err = None;
                                        if let (Some(p), Some(cache)) =
                                            (preds.as_deref_mut(), spec.as_mut())
                                        {
                                            if let Some(objs) = p.correct_spec() {
                                                let missing: Vec<ObjectId> = objs
                                                    .into_iter()
                                                    .filter(|o| !cache.contains(o))
                                                    .collect();
                                                match ctx.fetch_spec(client, &missing) {
                                                    Ok(fresh) => {
                                                        if !fresh.is_empty() {
                                                            emit(
                                                                &mut obs,
                                                                TxnEvent::BatchedRead {
                                                                    block: Some(bi as u32),
                                                                    objs: fresh.len() as u32,
                                                                },
                                                            );
                                                        }
                                                        cache.absorb(fresh);
                                                    }
                                                    Err(e) => fetch_err = Some(e),
                                                }
                                            }
                                        }
                                        if let Some(e) = fetch_err {
                                            // A parent-level read that
                                            // invalidates the parent's
                                            // history is a full abort, as
                                            // at the initial fetch.
                                            return Err(self.step_error(
                                                StepError::Dtm(e),
                                                stats,
                                                None,
                                                preds.as_deref_mut(),
                                                &mut obs,
                                            ));
                                        }
                                    }
                                    continue; // re-run just this Block
                                }
                                _ => {
                                    return Err(self.step_error(
                                        e,
                                        stats,
                                        Some(bi as u32),
                                        preds.as_deref_mut(),
                                        &mut obs,
                                    ))
                                }
                            }
                        }
                    }
                }
            }
        }

        match ctx.commit(client) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.step_error(StepError::Dtm(e), stats, None, preds, &mut obs)),
        }
    }

    /// Map a step (or commit) error to its retry decision, bumping the
    /// matching `stats` counter and emitting the matching abort event —
    /// one event per increment, which is what keeps attribution exact.
    fn step_error(
        &self,
        e: StepError,
        stats: &mut ExecStats,
        block: Option<u32>,
        preds: Option<&mut PredState<'_>>,
        obs: &mut Option<&mut TxnObserver>,
    ) -> AttemptError {
        match e {
            StepError::Dtm(DtmError::Invalidated { objs }) => {
                // Invalidated blind opens (the presumed-absent object
                // exists) are demoted before the restart so the next
                // attempt fetches their real versions.
                if let Some(p) = preds {
                    p.unblind(&objs);
                }
                stats.full_aborts += 1;
                emit(
                    obs,
                    TxnEvent::FullAbort {
                        block,
                        obj: objs.first().copied(),
                        kind: if self.config.speculation {
                            AbortKind::SpecFull
                        } else {
                            AbortKind::ReadInvalid
                        },
                    },
                );
                AttemptError::Restart
            }
            StepError::Dtm(DtmError::LockedOut { obj }) => {
                stats.locked_aborts += 1;
                emit(
                    obs,
                    TxnEvent::FullAbort {
                        block,
                        obj: Some(obj),
                        kind: AbortKind::LockedOut,
                    },
                );
                AttemptError::Restart
            }
            StepError::Dtm(DtmError::Conflict {
                invalid,
                locked,
                syncing,
                wal_refused,
            }) => {
                // A blind open can surface here too: prepare found the
                // presumed-absent object already written.
                if let Some(p) = preds {
                    p.unblind(&invalid);
                }
                stats.full_aborts += 1;
                // A conflict that names no stale and no locked object and
                // was flagged `syncing` is pure recovery back-pressure — a
                // replica refused to vote while catching up after a
                // crash-with-amnesia. Same shape flagged `wal_refused` is
                // storage back-pressure: a replica's WAL could not make the
                // grant durable. Attribute both separately so chaos runs
                // can tell recovery/storage stalls from data contention.
                let kind = if syncing && invalid.is_empty() && locked.is_empty() {
                    AbortKind::SyncRefused
                } else if wal_refused && invalid.is_empty() && locked.is_empty() {
                    AbortKind::WalRefused
                } else if self.config.speculation {
                    AbortKind::SpecFull
                } else {
                    AbortKind::CommitConflict
                };
                emit(
                    obs,
                    TxnEvent::FullAbort {
                        block,
                        // Stale reads outrank lock conflicts for blame; a
                        // pure lock conflict blames the locked object.
                        obj: invalid.first().or_else(|| locked.first()).copied(),
                        kind,
                    },
                );
                AttemptError::Restart
            }
            StepError::Dtm(DtmError::Unavailable) => AttemptError::Fatal(RunError::Unavailable),
            StepError::Eval(e) => AttemptError::Fatal(RunError::Eval(e)),
            StepError::Mispredict { .. } | StepError::Aliased { .. } => {
                unreachable!("guard errors are attributed at their abort sites")
            }
        }
    }
}

/// Tiny local randomized backoff, avoiding a hard dependency on `rand`'s
/// thread-local generator in the hot retry path.
pub(crate) mod rand_like {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// Global thread counter: each thread that touches the generator draws
    /// a distinct sequence number to seed from. Seeding every thread with
    /// the same constant (the old behavior) made contending workers back
    /// off in lockstep — the jitter existed but did not decorrelate them.
    static THREAD_SEQ: AtomicU64 = AtomicU64::new(0);

    /// splitmix64 finalizer: spreads consecutive integers into
    /// well-separated 64-bit states.
    fn splitmix64(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    thread_local! {
        // `| 1` keeps the state nonzero — zero is xorshift's fixed point.
        static STATE: Cell<u64> =
            Cell::new(splitmix64(THREAD_SEQ.fetch_add(1, Ordering::Relaxed)) | 1);
    }

    /// Advance this thread's xorshift64* state and return the next draw.
    pub(crate) fn next_u64() -> u64 {
        STATE.with(|s| {
            let mut x = s.get();
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            s.set(x);
            x.wrapping_mul(0x2545F4914F6CDD1D)
        })
    }

    /// Sleep a uniformly random duration in `[0, base · min(attempt, 16))`.
    pub fn jitter(base: Duration, attempt: usize) {
        if base.is_zero() {
            return;
        }
        let cap = base.as_nanos() as u64 * attempt.min(16) as u64;
        std::thread::sleep(Duration::from_nanos(next_u64() % cap.max(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::BlockSeq;
    use acn_dtm::{Cluster, ClusterConfig};
    use acn_txir::{ComputeOp, DependencyModel, FieldId, ObjClass, ProgramBuilder};

    const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
    const BAL: FieldId = FieldId(0);

    /// deposit(account_id, amount): bal += amount.
    fn deposit_model() -> DependencyModel {
        let mut b = ProgramBuilder::new("deposit", 2);
        let acc = b.open_update(ACCOUNT, b.param(0));
        let bal = b.get(acc, BAL);
        let nb = b.add(bal, b.param(1));
        b.set(acc, BAL, nb);
        DependencyModel::analyze(b.finish()).unwrap()
    }

    /// transfer(a, b, amount): two accounts, two unit blocks.
    fn transfer_model() -> DependencyModel {
        let mut b = ProgramBuilder::new("transfer", 3);
        let amt = b.param(2);
        let a1 = b.open_update(ACCOUNT, b.param(0));
        let v1 = b.get(a1, BAL);
        let n1 = b.sub(v1, amt);
        b.set(a1, BAL, n1);
        let a2 = b.open_update(ACCOUNT, b.param(1));
        let v2 = b.get(a2, BAL);
        let n2 = b.add(v2, amt);
        b.set(a2, BAL, n2);
        DependencyModel::analyze(b.finish()).unwrap()
    }

    fn read_bal(client: &mut DtmClient, i: u64) -> i64 {
        let mut ctx = TxnCtx::begin(client);
        let obj = ObjectId::new(ACCOUNT, i);
        ctx.open(client, obj, false).unwrap();
        let v = ctx.get_field(obj, BAL).as_int().unwrap();
        ctx.commit(client).unwrap();
        v
    }

    #[test]
    fn flat_execution_commits() {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = deposit_model();
        let seq = BlockSeq::flat(&dm);
        let engine = ExecutorEngine::default();
        let mut stats = ExecStats::default();
        for _ in 0..5 {
            engine
                .run(
                    &mut client,
                    &dm.program,
                    &[Value::Int(7), Value::Int(10)],
                    &seq,
                    &mut stats,
                )
                .unwrap();
        }
        assert_eq!(stats.commits, 5);
        assert_eq!(read_bal(&mut client, 7), 50);
        cluster.shutdown();
    }

    #[test]
    fn nested_execution_commits_identically() {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = transfer_model();
        let engine = ExecutorEngine::default();
        let mut stats = ExecStats::default();
        // Seed account 1 with 100 via flat deposit.
        let dep = deposit_model();
        engine
            .run(
                &mut client,
                &dep.program,
                &[Value::Int(1), Value::Int(100)],
                &BlockSeq::flat(&dep),
                &mut stats,
            )
            .unwrap();
        // Transfer 30 from 1 to 2 with per-unit nesting.
        let seq = BlockSeq::from_units(&dm);
        assert_eq!(seq.len(), 2);
        engine
            .run(
                &mut client,
                &dm.program,
                &[Value::Int(1), Value::Int(2), Value::Int(30)],
                &seq,
                &mut stats,
            )
            .unwrap();
        assert_eq!(read_bal(&mut client, 1), 70);
        assert_eq!(read_bal(&mut client, 2), 30);
        cluster.shutdown();
    }

    #[test]
    fn conditional_statements_execute_taken_branch_only() {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        // withdraw-if-sufficient: bal >= amt ? bal -= amt : flag := 1.
        let mut b = ProgramBuilder::new("guarded", 2);
        let acc = b.open_update(ACCOUNT, b.param(0));
        let bal = b.get(acc, BAL);
        let ok = b.compute(ComputeOp::Ge, [bal.into(), b.param(1).into()]);
        b.cond(
            ok,
            |b| {
                let nb = b.sub(bal, b.param(1));
                b.set(acc, BAL, nb);
            },
            |b| {
                b.set(acc, BAL, -1i64);
            },
        );
        let dm = DependencyModel::analyze(b.finish()).unwrap();
        let engine = ExecutorEngine::default();
        let mut stats = ExecStats::default();
        let seq = BlockSeq::flat(&dm);
        // Insufficient funds: else branch writes -1.
        engine
            .run(
                &mut client,
                &dm.program,
                &[Value::Int(3), Value::Int(10)],
                &seq,
                &mut stats,
            )
            .unwrap();
        assert_eq!(read_bal(&mut client, 3), -1);
        cluster.shutdown();
    }

    #[test]
    fn concurrent_transfers_conserve_money() {
        let cluster = Cluster::start(ClusterConfig::test(10, 4));
        let dm = std::sync::Arc::new(transfer_model());
        let dep = deposit_model();
        let engine = ExecutorEngine::default();
        {
            let mut client = cluster.client(0);
            let mut stats = ExecStats::default();
            for i in 0..4 {
                engine
                    .run(
                        &mut client,
                        &dep.program,
                        &[Value::Int(i), Value::Int(1000)],
                        &BlockSeq::flat(&dep),
                        &mut stats,
                    )
                    .unwrap();
            }
        }
        let total_stats: Vec<ExecStats> = std::thread::scope(|s| {
            (0..4)
                .map(|t| {
                    let mut client = cluster.client(t);
                    let dm = std::sync::Arc::clone(&dm);
                    s.spawn(move || {
                        let engine = ExecutorEngine::default();
                        let seq = BlockSeq::from_units(&dm);
                        let mut stats = ExecStats::default();
                        for k in 0..25u64 {
                            let from = (t as u64 + k) % 4;
                            let to = (from + 1) % 4;
                            engine
                                .run(
                                    &mut client,
                                    &dm.program,
                                    &[
                                        Value::Int(from as i64),
                                        Value::Int(to as i64),
                                        Value::Int(3),
                                    ],
                                    &seq,
                                    &mut stats,
                                )
                                .unwrap();
                        }
                        stats
                    })
                })
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        let mut merged = ExecStats::default();
        for s in &total_stats {
            merged.merge(s);
        }
        assert_eq!(merged.commits, 100);
        let mut client = cluster.client(0);
        let total: i64 = (0..4).map(|i| read_bal(&mut client, i)).sum();
        assert_eq!(total, 4000, "money conserved under contention");
        cluster.shutdown();
    }

    #[test]
    fn flat_batched_prefetch_commits_and_batches() {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = transfer_model();
        let seq = BlockSeq::flat(&dm);
        // Seed account 1 so the transfer has funds to move.
        let dep = deposit_model();
        let mut stats = ExecStats::default();
        ExecutorEngine::default()
            .run(
                &mut client,
                &dep.program,
                &[Value::Int(1), Value::Int(100)],
                &BlockSeq::flat(&dep),
                &mut stats,
            )
            .unwrap();
        let before = client.stats().batched_reads;
        // Both transfer opens are Param-indexed → one batched round for two
        // objects on the flat schedule.
        ExecutorEngine::default()
            .run(
                &mut client,
                &dm.program,
                &[Value::Int(1), Value::Int(2), Value::Int(30)],
                &seq,
                &mut stats,
            )
            .unwrap();
        assert!(
            client.stats().batched_reads > before,
            "two prefetchable opens must go through the batch path"
        );
        assert_eq!(read_bal(&mut client, 1), 70);
        assert_eq!(read_bal(&mut client, 2), 30);
        cluster.shutdown();
    }

    #[test]
    fn unbatched_config_never_batches() {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = transfer_model();
        let engine = ExecutorEngine::with_config(
            RetryPolicy::default(),
            ExecutorConfig {
                batched_reads: false,
                ..ExecutorConfig::default()
            },
        );
        let mut stats = ExecStats::default();
        engine
            .run(
                &mut client,
                &dm.program,
                &[Value::Int(1), Value::Int(2), Value::Int(5)],
                &BlockSeq::flat(&dm),
                &mut stats,
            )
            .unwrap();
        assert_eq!(client.stats().batched_reads, 0);
        assert_eq!(read_bal(&mut client, 1), -5);
        assert_eq!(read_bal(&mut client, 2), 5);
        cluster.shutdown();
    }

    #[test]
    fn nested_blocks_prefetch_through_the_child() {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        // Three deposits; group the first two units into one Block so that
        // Block prefetches two objects as child-first reads.
        let mut b = ProgramBuilder::new("triple", 3);
        for i in 0..3u16 {
            let acc = b.open_update(ACCOUNT, b.param(i));
            let bal = b.get(acc, BAL);
            let nb = b.add(bal, 10i64);
            b.set(acc, BAL, nb);
        }
        let dm = DependencyModel::analyze(b.finish()).unwrap();
        let seq = BlockSeq::group_units(&dm, &[vec![0, 1], vec![2]]);
        assert_eq!(seq.len(), 2, "nested schedule");
        let mut stats = ExecStats::default();
        ExecutorEngine::default()
            .run(
                &mut client,
                &dm.program,
                &[Value::Int(4), Value::Int(5), Value::Int(6)],
                &seq,
                &mut stats,
            )
            .unwrap();
        assert!(client.stats().batched_reads > 0, "block 0 batches 2 opens");
        for i in 4..7 {
            assert_eq!(read_bal(&mut client, i), 10);
        }
        cluster.shutdown();
    }

    #[test]
    fn data_dependent_opens_fall_back_to_single_reads() {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        // Pointer chase: the second open's index is read from the first
        // object — not prefetchable, must still execute correctly.
        let mut b = ProgramBuilder::new("chase", 1);
        let head = b.open_read(ACCOUNT, b.param(0));
        let next = b.get(head, BAL);
        let tail = b.open_update(ACCOUNT, next);
        let tv = b.get(tail, BAL);
        let nv = b.add(tv, 1i64);
        b.set(tail, BAL, nv);
        let dm = DependencyModel::analyze(b.finish()).unwrap();
        assert_eq!(dm.prefetch.len(), 1, "only the head open is static");
        // Seed: account 8's balance names account 9.
        let dep = deposit_model();
        let mut stats = ExecStats::default();
        ExecutorEngine::default()
            .run(
                &mut client,
                &dep.program,
                &[Value::Int(8), Value::Int(9)],
                &BlockSeq::flat(&dep),
                &mut stats,
            )
            .unwrap();
        ExecutorEngine::default()
            .run(
                &mut client,
                &dm.program,
                &[Value::Int(8)],
                &BlockSeq::flat(&dm),
                &mut stats,
            )
            .unwrap();
        assert_eq!(read_bal(&mut client, 9), 1, "chased object updated");
        cluster.shutdown();
    }

    #[test]
    fn prefetch_skips_bad_operands_so_eval_errors_stay_fatal() {
        let cluster = Cluster::start(ClusterConfig::test(1, 1));
        let mut client = cluster.client(0);
        // The open's index parameter is a string: the prefetch pass must
        // skip it silently and the Open statement itself must fail the run
        // exactly as in the unbatched path.
        let dm = deposit_model();
        let mut stats = ExecStats::default();
        let err = ExecutorEngine::default()
            .run(
                &mut client,
                &dm.program,
                &[Value::str("oops"), Value::Int(1)],
                &BlockSeq::flat(&dm),
                &mut stats,
            )
            .unwrap_err();
        assert!(matches!(err, RunError::Eval(_)));
        assert_eq!(client.stats().batched_reads, 0, "nothing was prefetched");
        cluster.shutdown();
    }

    #[test]
    fn param_count_is_checked() {
        let dm = deposit_model();
        let cluster = Cluster::start(ClusterConfig::test(1, 1));
        let mut client = cluster.client(0);
        let engine = ExecutorEngine::default();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut stats = ExecStats::default();
            let _ = engine.run(
                &mut client,
                &dm.program,
                &[Value::Int(1)], // missing amount
                &BlockSeq::flat(&dm),
                &mut stats,
            );
        }));
        assert!(r.is_err());
        cluster.shutdown();
    }

    #[test]
    fn eval_errors_are_fatal_not_retried() {
        let cluster = Cluster::start(ClusterConfig::test(1, 1));
        let mut client = cluster.client(0);
        // amount is a string → Add fails.
        let dm = deposit_model();
        let engine = ExecutorEngine::default();
        let mut stats = ExecStats::default();
        let err = engine
            .run(
                &mut client,
                &dm.program,
                &[Value::Int(1), Value::str("oops")],
                &BlockSeq::flat(&dm),
                &mut stats,
            )
            .unwrap_err();
        assert!(matches!(err, RunError::Eval(_)));
        assert_eq!(stats.commits, 0);
        cluster.shutdown();
    }

    #[test]
    fn backoff_sequences_differ_across_threads() {
        // Regression: every thread used to seed its xorshift state with the
        // same constant, so contending workers drew identical backoff
        // sequences and kept colliding in lockstep.
        let draws: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                std::thread::spawn(|| (0..8).map(|_| rand_like::next_u64()).collect::<Vec<u64>>())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        assert_ne!(
            draws[0], draws[1],
            "two fresh threads must draw distinct jitter sequences"
        );
    }

    #[test]
    fn unavailable_retries_are_bounded_by_policy() {
        // Fully partition the client from every server: each attempt must
        // fail a quorum round, burn one unavailable retry, and the run must
        // surface Unavailable after exactly `max_unavailable_retries`
        // re-attempts — not loop forever and not give up early.
        let mut cfg = ClusterConfig::test(4, 1);
        cfg.client_cfg.rpc_timeout = Duration::from_millis(5);
        cfg.client_cfg.quorum_retries = 0;
        cfg.client_cfg.retry_backoff = Duration::ZERO;
        let cluster = Cluster::start(cfg);
        for rank in 0..4 {
            cluster.fail_server(rank);
        }
        let mut client = cluster.client(0);
        let dm = deposit_model();
        let seq = BlockSeq::flat(&dm);
        let engine = ExecutorEngine::new(RetryPolicy {
            max_unavailable_retries: 3,
            backoff_base: Duration::ZERO,
            ..RetryPolicy::default()
        });
        let mut stats = ExecStats::default();
        let err = engine
            .run(
                &mut client,
                &dm.program,
                &[Value::Int(7), Value::Int(10)],
                &seq,
                &mut stats,
            )
            .unwrap_err();
        assert_eq!(err, RunError::Unavailable);
        assert_eq!(
            stats.unavailable_retries, 3,
            "exactly max_unavailable_retries re-attempts before surfacing"
        );
        assert_eq!(stats.commits, 0);
        cluster.shutdown();
    }

    #[test]
    fn unavailable_fails_fast_with_default_policy() {
        // The default policy keeps the historical fail-fast contract:
        // zero unavailable retries, first quorum loss is fatal.
        let mut cfg = ClusterConfig::test(4, 1);
        cfg.client_cfg.rpc_timeout = Duration::from_millis(5);
        cfg.client_cfg.quorum_retries = 0;
        cfg.client_cfg.retry_backoff = Duration::ZERO;
        let cluster = Cluster::start(cfg);
        for rank in 0..4 {
            cluster.fail_server(rank);
        }
        let mut client = cluster.client(0);
        let dm = deposit_model();
        let seq = BlockSeq::flat(&dm);
        let engine = ExecutorEngine::default();
        let mut stats = ExecStats::default();
        let err = engine
            .run(
                &mut client,
                &dm.program,
                &[Value::Int(7), Value::Int(10)],
                &seq,
                &mut stats,
            )
            .unwrap_err();
        assert_eq!(err, RunError::Unavailable);
        assert_eq!(stats.unavailable_retries, 0);
        cluster.shutdown();
    }

    #[test]
    fn jitter_caps_the_exponent_at_large_attempt_counts() {
        // jitter sleeps uniformly in [0, base · min(attempt, 16)): a huge
        // attempt count must neither overflow the nanosecond product nor
        // stretch the backoff past the 16× ceiling.
        let base = Duration::from_nanos(100);
        let start = std::time::Instant::now();
        for _ in 0..32 {
            rand_like::jitter(base, usize::MAX);
        }
        // 32 sleeps of < 1.6µs each: generous margin for scheduler slop,
        // but orders of magnitude below an uncapped base·attempt product.
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "jitter at attempt=usize::MAX must stay capped at 16x base"
        );
    }

    #[test]
    fn observed_run_records_commits_and_reads() {
        use acn_obs::{TxnEvent, TxnObserver};
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = transfer_model();
        let engine = ExecutorEngine::default();
        let mut stats = ExecStats::default();
        let mut obs = TxnObserver::default();
        let seq = BlockSeq::from_units(&dm);
        engine
            .run_observed(
                &mut client,
                &dm.program,
                &[Value::Int(1), Value::Int(2), Value::Int(30)],
                &seq,
                &mut stats,
                Some(&mut obs),
            )
            .unwrap();
        let events: Vec<&TxnEvent> = obs.trace.iter().collect();
        assert!(matches!(events.first(), Some(TxnEvent::Begin)));
        assert!(matches!(events.last(), Some(TxnEvent::Commit { .. })));
        let blocks = events
            .iter()
            .filter(|e| matches!(e, TxnEvent::BlockStart { .. }))
            .count();
        assert_eq!(blocks, 2, "one BlockStart per Block of the schedule");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TxnEvent::BatchedRead { .. })),
            "prefetchable opens must show up as batched-read rounds"
        );
        cluster.shutdown();
    }

    #[test]
    fn observed_contention_attribution_matches_stats() {
        use acn_obs::{AbortKind, TxnObserver};
        // Hammer one hot account from 4 threads so aborts actually happen,
        // then check the invariant the whole layer is built around: one
        // attributed event per stats increment.
        let cluster = Cluster::start(ClusterConfig::test(10, 4));
        let dm = std::sync::Arc::new(transfer_model());
        let (stats, obs) = std::thread::scope(|s| {
            (0..4)
                .map(|t| {
                    let mut client = cluster.client(t);
                    let dm = std::sync::Arc::clone(&dm);
                    s.spawn(move || {
                        let engine = ExecutorEngine::default();
                        let seq = BlockSeq::from_units(&dm);
                        let mut stats = ExecStats::default();
                        let mut obs = TxnObserver::default();
                        for k in 0..25u64 {
                            let from = (t as u64 + k) % 2;
                            engine
                                .run_observed(
                                    &mut client,
                                    &dm.program,
                                    &[
                                        Value::Int(from as i64),
                                        Value::Int((1 - from) as i64),
                                        Value::Int(1),
                                    ],
                                    &seq,
                                    &mut stats,
                                    Some(&mut obs),
                                )
                                .unwrap();
                        }
                        (stats, obs)
                    })
                })
                .map(|h| h.join().unwrap())
                .fold(
                    (ExecStats::default(), acn_obs::AbortTable::new()),
                    |(mut st, mut tb), (s, o)| {
                        st.merge(&s);
                        tb.merge(&o.aborts);
                        (st, tb)
                    },
                )
        });
        assert_eq!(stats.commits, 100);
        assert_eq!(
            obs.total_of(&AbortKind::EXECUTOR_KINDS),
            stats.full_aborts + stats.partial_aborts + stats.locked_aborts,
            "attribution must reconcile against ExecStats to the unit"
        );
        cluster.shutdown();
    }

    #[test]
    fn aliased_open_degrades_to_flat_and_still_commits() {
        use acn_obs::{AbortKind, TxnObserver};
        // Deliberately alias: transfer(1, 1, 30) opens ACCOUNT 1 through
        // two different handles. The nested schedule must detect the alias
        // at the second open, abort once with AliasedOpen, and re-run the
        // whole instance in flat program order (net effect: -30 then +30).
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = transfer_model();
        let dep = deposit_model();
        let engine = ExecutorEngine::default();
        let mut stats = ExecStats::default();
        engine
            .run(
                &mut client,
                &dep.program,
                &[Value::Int(1), Value::Int(100)],
                &BlockSeq::flat(&dep),
                &mut stats,
            )
            .unwrap();
        let seq = BlockSeq::from_units(&dm);
        assert_eq!(seq.len(), 2);
        let mut stats = ExecStats::default();
        let mut obs = TxnObserver::default();
        engine
            .run_observed(
                &mut client,
                &dm.program,
                &[Value::Int(1), Value::Int(1), Value::Int(30)],
                &seq,
                &mut stats,
                Some(&mut obs),
            )
            .unwrap();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.full_aborts, 1, "exactly one aliased-open abort");
        assert_eq!(stats.partial_aborts, 0);
        assert_eq!(obs.aborts.total_of(&[AbortKind::AliasedOpen]), 1);
        assert_eq!(
            obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS),
            stats.full_aborts + stats.partial_aborts + stats.locked_aborts,
            "attribution stays exact through the degrade path"
        );
        assert_eq!(read_bal(&mut client, 1), 100, "self-transfer is a no-op");
        cluster.shutdown();
    }

    #[test]
    fn distinct_objects_do_not_trip_the_alias_check() {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = transfer_model();
        let mut stats = ExecStats::default();
        ExecutorEngine::default()
            .run(
                &mut client,
                &dm.program,
                &[Value::Int(1), Value::Int(2), Value::Int(30)],
                &BlockSeq::from_units(&dm),
                &mut stats,
            )
            .unwrap();
        assert_eq!(stats.full_aborts, 0);
        assert_eq!(read_bal(&mut client, 1), -30);
        assert_eq!(read_bal(&mut client, 2), 30);
        cluster.shutdown();
    }

    #[test]
    fn correct_prediction_validates_silently() {
        use acn_obs::TxnObserver;
        use acn_txir::PredictedRead;
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = deposit_model();
        let engine = ExecutorEngine::default();
        let mut stats = ExecStats::default();
        // Never-written fields read as Int(0), so 0 is the right first
        // prediction — the same rule the coordinator's predictor seeds from.
        let pred = PredictedRead {
            obj: ObjectId::new(ACCOUNT, 7),
            field: BAL,
            value: 0,
            delta: 10,
        };
        let mut latency = crate::histogram::LatencyHistogram::default();
        let mut obs = TxnObserver::default();
        let mut outcome = PredictionOutcome::default();
        engine
            .run_predicted(
                &mut client,
                &dm.program,
                &[Value::Int(7), Value::Int(10)],
                &BlockSeq::flat(&dm),
                &[pred],
                &[],
                &[],
                None,
                &mut stats,
                &mut latency,
                Some(&mut obs),
                &mut outcome,
            )
            .unwrap();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.full_aborts + stats.partial_aborts, 0);
        assert!(outcome.mispredicts.is_empty());
        assert_eq!(outcome.aliased, 0);
        assert_eq!(read_bal(&mut client, 7), 10);
        cluster.shutdown();
    }

    #[test]
    fn nested_mispredict_repairs_by_partial_rollback() {
        use acn_obs::{AbortKind, TxnObserver};
        use acn_txir::PredictedRead;
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = transfer_model();
        let engine = ExecutorEngine::default();
        // Wrong prediction for the first Block's balance read: the Block
        // must partial-abort once under SpecMispredict, drop the
        // prediction, and commit on the re-run.
        let pred = PredictedRead {
            obj: ObjectId::new(ACCOUNT, 1),
            field: BAL,
            value: 999,
            delta: -5,
        };
        let mut stats = ExecStats::default();
        let mut latency = crate::histogram::LatencyHistogram::default();
        let mut obs = TxnObserver::default();
        let mut outcome = PredictionOutcome::default();
        engine
            .run_predicted(
                &mut client,
                &dm.program,
                &[Value::Int(1), Value::Int(2), Value::Int(5)],
                &BlockSeq::from_units(&dm),
                &[pred],
                &[],
                &[],
                None,
                &mut stats,
                &mut latency,
                Some(&mut obs),
                &mut outcome,
            )
            .unwrap();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.partial_aborts, 1, "repaired from the Block");
        assert_eq!(stats.full_aborts, 0, "no full restart needed");
        assert_eq!(obs.aborts.total_of(&[AbortKind::SpecMispredict]), 1);
        assert_eq!(
            obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS),
            stats.full_aborts + stats.partial_aborts + stats.locked_aborts,
        );
        assert_eq!(outcome.mispredicts, vec![(pred, 0)], "observed fed back");
        assert_eq!(read_bal(&mut client, 1), -5);
        cluster.shutdown();
    }

    #[test]
    fn flat_mispredict_restarts_once() {
        use acn_obs::{AbortKind, TxnObserver};
        use acn_txir::PredictedRead;
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = deposit_model();
        let engine = ExecutorEngine::default();
        let pred = PredictedRead {
            obj: ObjectId::new(ACCOUNT, 7),
            field: BAL,
            value: 42,
            delta: 10,
        };
        let mut stats = ExecStats::default();
        let mut latency = crate::histogram::LatencyHistogram::default();
        let mut obs = TxnObserver::default();
        let mut outcome = PredictionOutcome::default();
        engine
            .run_predicted(
                &mut client,
                &dm.program,
                &[Value::Int(7), Value::Int(10)],
                &BlockSeq::flat(&dm),
                &[pred],
                &[],
                &[],
                None,
                &mut stats,
                &mut latency,
                Some(&mut obs),
                &mut outcome,
            )
            .unwrap();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.full_aborts, 1, "flat arm restarts on mispredict");
        assert_eq!(obs.aborts.total_of(&[AbortKind::SpecMispredict]), 1);
        assert_eq!(outcome.mispredicts, vec![(pred, 0)]);
        assert_eq!(read_bal(&mut client, 7), 10);
        cluster.shutdown();
    }

    #[test]
    fn blind_open_commits_with_zero_read_rounds() {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = deposit_model();
        let engine = ExecutorEngine::default();
        let obj = ObjectId::new(ACCOUNT, 7);
        let before = {
            let s = client.stats();
            s.remote_reads + s.batched_reads
        };
        let mut stats = ExecStats::default();
        let mut latency = crate::histogram::LatencyHistogram::default();
        let mut outcome = PredictionOutcome::default();
        engine
            .run_predicted(
                &mut client,
                &dm.program,
                &[Value::Int(7), Value::Int(10)],
                &BlockSeq::flat(&dm),
                &[],
                &[],
                &[obj],
                None,
                &mut stats,
                &mut latency,
                None,
                &mut outcome,
            )
            .unwrap();
        let after = {
            let s = client.stats();
            s.remote_reads + s.batched_reads
        };
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.full_aborts + stats.partial_aborts, 0);
        assert_eq!(after, before, "a correct blind presumption reads nothing");
        assert_eq!(read_bal(&mut client, 7), 10, "deposit onto the default 0");
        cluster.shutdown();
    }

    #[test]
    fn wrong_blind_presumption_demotes_and_retries() {
        use acn_obs::TxnObserver;
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let dm = deposit_model();
        let engine = ExecutorEngine::default();
        let obj = ObjectId::new(ACCOUNT, 7);
        // The object exists — the blind presumption (version 0, value 0)
        // is wrong and must be caught at prepare, not silently clobber
        // the stored balance.
        let mut seed_stats = ExecStats::default();
        engine
            .run(
                &mut client,
                &dm.program,
                &[Value::Int(7), Value::Int(100)],
                &BlockSeq::flat(&dm),
                &mut seed_stats,
            )
            .unwrap();
        let mut stats = ExecStats::default();
        let mut latency = crate::histogram::LatencyHistogram::default();
        let mut obs = TxnObserver::default();
        let mut outcome = PredictionOutcome::default();
        engine
            .run_predicted(
                &mut client,
                &dm.program,
                &[Value::Int(7), Value::Int(10)],
                &BlockSeq::flat(&dm),
                &[],
                &[],
                &[obj],
                None,
                &mut stats,
                &mut latency,
                Some(&mut obs),
                &mut outcome,
            )
            .unwrap();
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.full_aborts, 1, "one commit-time rejection");
        assert_eq!(
            obs.aborts.total_of(&AbortKind::EXECUTOR_KINDS),
            stats.full_aborts + stats.partial_aborts + stats.locked_aborts,
        );
        assert_eq!(
            read_bal(&mut client, 7),
            110,
            "the retry reads the real balance (unblinded) and adds to it"
        );
        cluster.shutdown();
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ExecStats {
            commits: 1,
            full_aborts: 2,
            partial_aborts: 3,
            locked_aborts: 4,
            unavailable_retries: 5,
        };
        a.merge(&ExecStats {
            commits: 10,
            full_aborts: 20,
            partial_aborts: 30,
            locked_aborts: 40,
            unavailable_retries: 50,
        });
        assert_eq!(a.commits, 11);
        assert_eq!(a.full_aborts, 22);
        assert_eq!(a.partial_aborts, 33);
        assert_eq!(a.locked_aborts, 44);
        assert_eq!(a.unavailable_retries, 55);
    }
}
