//! A small log-bucketed latency histogram.
//!
//! The driver reports commit-latency percentiles next to throughput;
//! buckets grow geometrically (~8 % per step) so the histogram spans
//! microseconds to seconds in 256 fixed slots with bounded error — cheap
//! enough to record on every commit of a saturation benchmark.

use std::time::Duration;

const BUCKETS: usize = 256;
/// Geometric growth factor per bucket (≈ 8 %).
const GROWTH: f64 = 1.08;
/// Lower bound of bucket 0.
const BASE_NANOS: f64 = 1_000.0; // 1 µs

/// Fixed-size log-bucketed histogram of durations.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LatencyHistogram {{ n: {}, p50: {:?}, p99: {:?} }}",
            self.total,
            self.percentile(0.50),
            self.percentile(0.99)
        )
    }
}

fn bucket_of(d: Duration) -> usize {
    let nanos = d.as_nanos() as f64;
    if nanos <= BASE_NANOS {
        return 0;
    }
    let b = (nanos / BASE_NANOS).log(GROWTH).floor() as usize;
    b.min(BUCKETS - 1)
}

fn bucket_upper_bound(b: usize) -> Duration {
    Duration::from_nanos((BASE_NANOS * GROWTH.powi(b as i32 + 1)) as u64)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.counts[bucket_of(d)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The value at quantile `q` (0.0–1.0), or `None` when empty. Reported
    /// as the upper bound of the bucket containing the quantile, so the
    /// estimate errs at most one growth step (~8 %) high.
    pub fn percentile(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper_bound(b));
            }
        }
        Some(bucket_upper_bound(BUCKETS - 1))
    }

    /// Merge another histogram into this one (per-thread collection).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Integer-nanosecond percentile summary for the metrics export
    /// (zeroes when empty).
    pub fn summary(&self) -> acn_obs::LatencySummary {
        let nanos = |q: f64| self.percentile(q).map(|d| d.as_nanos() as u64).unwrap_or(0);
        acn_obs::LatencySummary {
            samples: self.total,
            p50_nanos: nanos(0.50),
            p95_nanos: nanos(0.95),
            p99_nanos: nanos(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        let p50 = h.percentile(0.5).unwrap();
        let p999 = h.percentile(0.999).unwrap();
        assert_eq!(p50, p999);
        // Bucketing error is bounded by one growth step.
        assert!(p50 >= Duration::from_micros(100));
        assert!(p50 <= Duration::from_micros(120), "{p50:?}");
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i * 10));
        }
        let p10 = h.percentile(0.10).unwrap();
        let p50 = h.percentile(0.50).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p10 <= p50 && p50 <= p99, "{p10:?} {p50:?} {p99:?}");
        // p50 of a uniform 10µs..10ms spread lands near 5 ms.
        assert!(p50 >= Duration::from_micros(4_000) && p50 <= Duration::from_micros(6_500));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(10_000));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(a.percentile(0.99).unwrap() > Duration::from_micros(9_000));
        assert!(a.percentile(0.25).unwrap() < Duration::from_micros(100));
    }

    #[test]
    fn extremes_clamp_to_edge_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(3600));
        assert_eq!(h.len(), 2);
        assert!(h.percentile(1.0).is_some());
    }

    #[test]
    fn sub_microsecond_lands_in_bucket_zero() {
        assert_eq!(bucket_of(Duration::from_nanos(1)), 0);
        assert_eq!(bucket_of(Duration::from_nanos(999)), 0);
    }
}
