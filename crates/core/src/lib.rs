#![warn(missing_docs)]

//! # acn-core — ACN: Automated Closed Nesting
//!
//! The paper's contribution: a framework that **automatically decomposes
//! programmer-written flat transactions into closed-nested transactions**
//! and keeps the decomposition tuned to the live workload, so partial
//! rollback pays off without manual sub-transaction design.
//!
//! The moving parts map one-to-one onto the paper's §V:
//!
//! * [`StaticModule`] — runs the `acn-txir` analysis once per transaction
//!   template and caches the [`acn_txir::DependencyModel`] (UnitBlocks +
//!   dependency edges + eligible hosts).
//! * [`DynamicModule`] — samples per-class contention levels from the
//!   quorum servers through the DTM client.
//! * [`AlgorithmModule`] — recomputes the **Block sequence**: Step 1 splits
//!   merged blocks and re-attaches each local operation to its most
//!   contended eligible UnitBlock; Step 2 merges adjacent dependent
//!   UnitBlocks with similar contention; Step 3 sorts blocks by ascending
//!   contention while preserving data dependencies, pushing hot blocks
//!   toward the commit phase.
//! * [`ExecutorEngine`] — interprets a transaction instance over a
//!   [`BlockSeq`], running each Block as one closed-nested transaction
//!   with QR-CN partial rollback, or flat for the QR-DTM baseline.
//! * [`AcnController`] — the periodic trigger tying the above together: at
//!   every period boundary a client thread refreshes contention and swaps
//!   in the new Block sequence for all threads running that template.
//!
//! Baselines for the evaluation ship here too: flat execution (QR-DTM) and
//! manual closed nesting (QR-CN) via [`BlockSeq::flat`] /
//! [`BlockSeq::group_units`], plus a checkpointing executor
//! (`checkpoint`) reproducing the alternative partial-abort design the
//! paper contrasts against (§VII, Koskinen & Herlihy).

mod algorithm;
mod blocks;
mod checkpoint;
mod contention_model;
mod controller;
mod dynamic_module;
mod executor;
mod histogram;
mod scheduler;
mod static_module;

pub use algorithm::{AlgorithmConfig, AlgorithmModule};
pub use blocks::BlockSeq;
pub use checkpoint::{run_checkpointed, CheckpointStats};
pub use contention_model::{AbortProbabilityModel, ContentionModel, MaxModel, SumModel};
pub use controller::{AcnController, ControllerConfig, SamplingMode};
pub use dynamic_module::{DynamicModule, LevelMetric};
pub use executor::{
    ExecStats, ExecutorConfig, ExecutorEngine, PredictionOutcome, RespecFn, RetryPolicy, RunError,
    SpecSets,
};
pub use histogram::LatencyHistogram;
pub use scheduler::{
    conflicts, conflicts_with, plan_wave, plan_wave_with, InexactPolicy, WavePlan, WaveStats,
};
pub use static_module::StaticModule;
