//! Classic recursive Agrawal–El Abbadi tree quorums.
//!
//! * A **read quorum** for a subtree is its root if alive, otherwise the
//!   union of read quorums of a majority of its children.
//! * A **write quorum** for a subtree is its root **plus** write quorums of
//!   a majority of its children, recursively to the leaves; a dead node on
//!   the required path makes writes unavailable for that subtree.
//!
//! The DTM uses the level-majority variant ([`crate::LevelQuorums`]); this
//! module exists for protocol comparison (the original protocol degrades
//! read quorum size gracefully as nodes fail) and to cross-check the
//! intersection property in tests.

use crate::tree::{majority, DaryTree};

/// Classic tree read quorum, or `None` if unavailable.
pub fn read_quorum(tree: &DaryTree, alive: &dyn Fn(usize) -> bool) -> Option<Vec<usize>> {
    let mut out = read_subtree(tree, 0, alive)?;
    out.sort_unstable();
    out.dedup();
    Some(out)
}

fn read_subtree(tree: &DaryTree, root: usize, alive: &dyn Fn(usize) -> bool) -> Option<Vec<usize>> {
    if alive(root) {
        return Some(vec![root]);
    }
    let children: Vec<usize> = tree.children(root).collect();
    if children.is_empty() {
        return None; // dead leaf
    }
    let need = majority(children.len());
    let mut out = Vec::new();
    let mut got = 0;
    for c in children {
        if let Some(sub) = read_subtree(tree, c, alive) {
            out.extend(sub);
            got += 1;
            if got == need {
                return Some(out);
            }
        }
    }
    None
}

/// Classic tree write quorum, or `None` if unavailable.
pub fn write_quorum(tree: &DaryTree, alive: &dyn Fn(usize) -> bool) -> Option<Vec<usize>> {
    let mut out = write_subtree(tree, 0, alive)?;
    out.sort_unstable();
    out.dedup();
    Some(out)
}

fn write_subtree(
    tree: &DaryTree,
    root: usize,
    alive: &dyn Fn(usize) -> bool,
) -> Option<Vec<usize>> {
    if !alive(root) {
        return None;
    }
    let children: Vec<usize> = tree.children(root).collect();
    let mut out = vec![root];
    if children.is_empty() {
        return Some(out);
    }
    let need = majority(children.len());
    let mut got = 0;
    for c in children {
        if let Some(sub) = write_subtree(tree, c, alive) {
            out.extend(sub);
            got += 1;
            if got == need {
                return Some(out);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersects;

    fn all_alive(_: usize) -> bool {
        true
    }

    #[test]
    fn healthy_tree_reads_from_root_only() {
        let t = DaryTree::ternary(13);
        assert_eq!(read_quorum(&t, &all_alive).unwrap(), vec![0]);
    }

    #[test]
    fn root_failure_degrades_read_to_children() {
        let t = DaryTree::ternary(13);
        let alive = |r: usize| r != 0;
        let q = read_quorum(&t, &alive).unwrap();
        // Majority (2 of 3) of the root's children.
        assert_eq!(q.len(), 2);
        assert!(q.iter().all(|&r| (1..4).contains(&r)));
    }

    #[test]
    fn cascading_failures_descend_further() {
        let t = DaryTree::ternary(13);
        // Root and child 1 dead: quorum uses majority of child 1's children
        // plus one other level-1 node (or two other level-1 nodes).
        let alive = |r: usize| r != 0 && r != 1;
        let q = read_quorum(&t, &alive).unwrap();
        assert!(q.iter().all(|&r| alive(r)));
        assert!(!q.is_empty());
    }

    #[test]
    fn write_includes_root_and_majorities() {
        let t = DaryTree::ternary(13);
        let q = write_quorum(&t, &all_alive).unwrap();
        assert!(q.contains(&0), "write quorum always contains the root");
        // Root + 2 children + 2 grandchildren each = 1 + 2 + 4 = 7.
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn write_unavailable_without_root() {
        let t = DaryTree::ternary(13);
        let alive = |r: usize| r != 0;
        assert!(write_quorum(&t, &alive).is_none());
    }

    #[test]
    fn read_write_intersection_under_failures() {
        let t = DaryTree::ternary(13);
        // Any failure set under which BOTH quorums exist must intersect,
        // provided writes succeeded before the read's failures. Classic
        // protocol guarantees R ∩ W ≠ ∅ for quorums over the same failure
        // view; exhaustively test single and double failures.
        let n = 13;
        for f1 in 0..n {
            for f2 in 0..n {
                let alive = |r: usize| r != f1 && r != f2;
                if let (Some(r), Some(w)) = (read_quorum(&t, &alive), write_quorum(&t, &alive)) {
                    assert!(intersects(&r, &w), "f1={f1} f2={f2} r={r:?} w={w:?}");
                }
            }
        }
    }

    #[test]
    fn two_writes_always_intersect() {
        let t = DaryTree::ternary(13);
        for f in 0..13 {
            let alive_a = |r: usize| r != f;
            let alive_b = all_alive;
            if let (Some(a), Some(b)) = (write_quorum(&t, &alive_a), write_quorum(&t, &alive_b)) {
                assert!(intersects(&a, &b), "f={f}");
            }
        }
    }

    #[test]
    fn single_node_tree() {
        let t = DaryTree::ternary(1);
        assert_eq!(read_quorum(&t, &all_alive).unwrap(), vec![0]);
        assert_eq!(write_quorum(&t, &all_alive).unwrap(), vec![0]);
        let dead = |_: usize| false;
        assert!(read_quorum(&t, &dead).is_none());
        assert!(write_quorum(&t, &dead).is_none());
    }

    #[test]
    fn all_leaves_dead_still_reads_from_root() {
        let t = DaryTree::ternary(13);
        let alive = |r: usize| r < 4;
        assert_eq!(read_quorum(&t, &alive).unwrap(), vec![0]);
        // Writes need leaf majorities under each selected child ⇒ unavailable.
        assert!(write_quorum(&t, &alive).is_none());
    }
}
