//! Level-majority quorums — the variant QR-DTM deploys.
//!
//! A **read quorum** is a majority of the live nodes at *one* level of the
//! tree; a **write quorum** is a majority at *every* level. Because a write
//! quorum holds a majority at the read quorum's level, the two always
//! intersect, and any two write quorums intersect at every level.

use crate::tree::{majority, DaryTree};

/// Which level a client's designated read quorum is drawn from.
///
/// The paper says each node "is designated a read quorum and a write
/// quorum"; the policy plus the client seed make that designation
/// deterministic per client while spreading load across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadLevelPolicy {
    /// Always quorum over the deepest level (most members ⇒ most load
    /// spreading; this is the default and matches a leaf-majority read).
    #[default]
    Deepest,
    /// Always quorum over a fixed level (clamped to the tree depth).
    Fixed(usize),
    /// Rotate the level per client seed.
    Rotate,
}

/// Quorum construction over a [`DaryTree`] using level majorities.
#[derive(Debug, Clone)]
pub struct LevelQuorums {
    tree: DaryTree,
    levels: Vec<Vec<usize>>,
    policy: ReadLevelPolicy,
}

impl LevelQuorums {
    /// Build with the default read-level policy.
    pub fn new(tree: DaryTree) -> Self {
        Self::with_policy(tree, ReadLevelPolicy::default())
    }

    /// Build with an explicit read-level policy.
    pub fn with_policy(tree: DaryTree, policy: ReadLevelPolicy) -> Self {
        let levels = tree.levels();
        LevelQuorums {
            tree,
            levels,
            policy,
        }
    }

    /// The underlying logical tree.
    pub fn tree(&self) -> &DaryTree {
        &self.tree
    }

    /// Select `need` live members from `group`, starting at a seed-dependent
    /// rotation so different clients hit different replicas.
    fn pick_rotated(
        group: &[usize],
        need: usize,
        seed: u64,
        alive: &dyn Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        let k = group.len();
        let start = (seed as usize) % k;
        let mut out = Vec::with_capacity(need);
        for i in 0..k {
            let rank = group[(start + i) % k];
            if alive(rank) {
                out.push(rank);
                if out.len() == need {
                    out.sort_unstable();
                    return Some(out);
                }
            }
        }
        None
    }

    /// The read quorum designated for a client with `seed`: a majority of
    /// one level's members, skipping failed nodes. Falls back to other
    /// levels (deepest first) if the designated level cannot muster a
    /// majority of *its total* size — majorities are always computed over
    /// the level's full membership, never the live subset, or intersection
    /// with concurrent writers that still see those nodes would break.
    ///
    /// Returns `None` when no level has a live majority.
    pub fn read_quorum(&self, seed: u64, alive: &dyn Fn(usize) -> bool) -> Option<Vec<usize>> {
        let depth = self.levels.len();
        let preferred = match self.policy {
            ReadLevelPolicy::Deepest => depth - 1,
            ReadLevelPolicy::Fixed(l) => l.min(depth - 1),
            ReadLevelPolicy::Rotate => (seed as usize) % depth,
        };
        // Try the preferred level first, then the rest deepest-first.
        let mut order = vec![preferred];
        order.extend((0..depth).rev().filter(|&l| l != preferred));
        for lvl in order {
            let group = &self.levels[lvl];
            let need = majority(group.len());
            if let Some(q) = Self::pick_rotated(group, need, seed, alive) {
                return Some(q);
            }
        }
        None
    }

    /// The write quorum for a client with `seed`: a majority of every
    /// level's full membership, all members live. Returns `None` when any
    /// level cannot muster a live majority (writes are then unavailable —
    /// the availability/consistency trade-off of tree quorums).
    pub fn write_quorum(&self, seed: u64, alive: &dyn Fn(usize) -> bool) -> Option<Vec<usize>> {
        let mut out = Vec::new();
        for group in &self.levels {
            let need = majority(group.len());
            let q = Self::pick_rotated(group, need, seed, alive)?;
            out.extend(q);
        }
        out.sort_unstable();
        Some(out)
    }

    /// The full *contact group* for an early-returning read: every live
    /// member of the designated level, plus the number of matching replies
    /// that constitute a read quorum (`need` = a majority of the level's
    /// full membership).
    ///
    /// Soundness: any `need`-sized subset of one level is a valid read
    /// quorum — majorities are computed over the level's total size, and a
    /// write quorum holds a majority at every level — so a client may fan a
    /// request out to the whole group and stop waiting at the first `need`
    /// replies, whichever members they come from. Level selection and
    /// fallback mirror [`LevelQuorums::read_quorum`].
    ///
    /// Returns `None` when no level has a live majority.
    pub fn read_group(
        &self,
        seed: u64,
        alive: &dyn Fn(usize) -> bool,
    ) -> Option<(Vec<usize>, usize)> {
        let depth = self.levels.len();
        let preferred = match self.policy {
            ReadLevelPolicy::Deepest => depth - 1,
            ReadLevelPolicy::Fixed(l) => l.min(depth - 1),
            ReadLevelPolicy::Rotate => (seed as usize) % depth,
        };
        let mut order = vec![preferred];
        order.extend((0..depth).rev().filter(|&l| l != preferred));
        for lvl in order {
            let group = &self.levels[lvl];
            let need = majority(group.len());
            let live: Vec<usize> = group.iter().copied().filter(|&r| alive(r)).collect();
            if live.len() >= need {
                return Some((live, need));
            }
        }
        None
    }

    /// Size of the write quorum when all nodes are alive.
    pub fn write_quorum_size(&self) -> usize {
        self.levels.iter().map(|g| majority(g.len())).sum()
    }

    /// Size of the default read quorum when all nodes are alive.
    pub fn read_quorum_size(&self) -> usize {
        let lvl = match self.policy {
            ReadLevelPolicy::Deepest | ReadLevelPolicy::Rotate => self.levels.len() - 1,
            ReadLevelPolicy::Fixed(l) => l.min(self.levels.len() - 1),
        };
        majority(self.levels[lvl].len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersects;

    fn all_alive(_: usize) -> bool {
        true
    }

    #[test]
    fn paper_testbed_sizes() {
        // 10 servers, ternary: levels of size 1/3/6 ⇒ write = 1+2+4 = 7,
        // deepest-level read = 4.
        let q = LevelQuorums::new(DaryTree::ternary(10));
        assert_eq!(q.write_quorum_size(), 7);
        assert_eq!(q.read_quorum_size(), 4);
        assert_eq!(q.write_quorum(0, &all_alive).unwrap().len(), 7);
        assert_eq!(q.read_quorum(0, &all_alive).unwrap().len(), 4);
    }

    #[test]
    fn read_and_write_intersect_all_seeds() {
        let q = LevelQuorums::new(DaryTree::ternary(13));
        for rs in 0..20u64 {
            for ws in 0..20u64 {
                let r = q.read_quorum(rs, &all_alive).unwrap();
                let w = q.write_quorum(ws, &all_alive).unwrap();
                assert!(intersects(&r, &w), "rs={rs} ws={ws} r={r:?} w={w:?}");
            }
        }
    }

    #[test]
    fn two_writes_intersect_all_seeds() {
        let q = LevelQuorums::new(DaryTree::ternary(10));
        for a in 0..15u64 {
            for b in 0..15u64 {
                let wa = q.write_quorum(a, &all_alive).unwrap();
                let wb = q.write_quorum(b, &all_alive).unwrap();
                assert!(intersects(&wa, &wb));
            }
        }
    }

    #[test]
    fn rotation_spreads_read_load() {
        let q = LevelQuorums::new(DaryTree::ternary(10));
        let mut seen = std::collections::HashSet::new();
        for seed in 0..6u64 {
            for r in q.read_quorum(seed, &all_alive).unwrap() {
                seen.insert(r);
            }
        }
        // All six leaves should appear across rotations.
        assert_eq!(seen, (4..10).collect());
    }

    #[test]
    fn read_survives_leaf_failures() {
        let q = LevelQuorums::new(DaryTree::ternary(10));
        // Fail 2 of the 6 leaves: majority of 6 is 4, still available.
        let alive = |r: usize| r != 4 && r != 9;
        let rq = q.read_quorum(0, &alive).unwrap();
        assert_eq!(rq.len(), 4);
        assert!(rq.iter().all(|&r| alive(r)));
    }

    #[test]
    fn read_falls_back_to_another_level() {
        let q = LevelQuorums::new(DaryTree::ternary(10));
        // Fail 3 of 6 leaves: leaf level can't make 4, but level 1 can.
        let alive = |r: usize| !(4..7).contains(&r);
        let rq = q.read_quorum(0, &alive).unwrap();
        assert!(rq.iter().all(|&r| alive(r)));
        // And it must still intersect every write quorum that could have
        // committed *before* the failures.
        let w = q.write_quorum(0, &all_alive).unwrap();
        assert!(intersects(&rq, &w));
    }

    #[test]
    fn root_failure_blocks_writes_but_not_reads() {
        let q = LevelQuorums::new(DaryTree::ternary(10));
        let alive = |r: usize| r != 0;
        assert!(q.write_quorum(0, &alive).is_none());
        assert!(q.read_quorum(0, &alive).is_some());
    }

    #[test]
    fn write_unavailable_when_level_majority_dead() {
        let q = LevelQuorums::new(DaryTree::ternary(10));
        // Kill 2 of the 3 mid-level nodes ⇒ no majority of 3.
        let alive = |r: usize| r != 1 && r != 2;
        assert!(q.write_quorum(0, &alive).is_none());
    }

    #[test]
    fn single_node_tree_quorums_are_the_node() {
        let q = LevelQuorums::new(DaryTree::ternary(1));
        assert_eq!(q.read_quorum(7, &all_alive).unwrap(), vec![0]);
        assert_eq!(q.write_quorum(7, &all_alive).unwrap(), vec![0]);
    }

    #[test]
    fn fixed_policy_reads_from_requested_level() {
        let q = LevelQuorums::with_policy(DaryTree::ternary(10), ReadLevelPolicy::Fixed(1));
        let rq = q.read_quorum(0, &all_alive).unwrap();
        assert_eq!(rq.len(), 2); // majority of {1,2,3}
        assert!(rq.iter().all(|&r| (1..4).contains(&r)));
    }

    #[test]
    fn rotate_policy_changes_level_with_seed() {
        let q = LevelQuorums::with_policy(DaryTree::ternary(13), ReadLevelPolicy::Rotate);
        let sizes: std::collections::HashSet<usize> = (0..3u64)
            .map(|s| q.read_quorum(s, &all_alive).unwrap().len())
            .collect();
        assert!(sizes.len() > 1, "rotation should visit different levels");
    }

    #[test]
    fn read_group_is_live_level_with_full_membership_majority() {
        let q = LevelQuorums::new(DaryTree::ternary(10));
        let (group, need) = q.read_group(0, &all_alive).unwrap();
        assert_eq!(group, (4..10).collect::<Vec<_>>());
        assert_eq!(need, 4);
        // With 2 of 6 leaves down the group shrinks but `need` must stay a
        // majority of the FULL level, or quorum intersection would break.
        let alive = |r: usize| r != 4 && r != 9;
        let (group, need) = q.read_group(0, &alive).unwrap();
        assert_eq!(group, vec![5, 6, 7, 8]);
        assert_eq!(need, 4);
    }

    #[test]
    fn read_group_falls_back_levels_and_any_majority_intersects_writes() {
        let q = LevelQuorums::new(DaryTree::ternary(10));
        // 3 of 6 leaves down: the leaf level cannot reach `need`, so the
        // group must come from another level.
        let alive = |r: usize| !(4..7).contains(&r);
        let (group, need) = q.read_group(0, &alive).unwrap();
        assert!(group.iter().all(|&r| alive(r)));
        assert!(group.len() >= need);
        // Every need-sized subset of the group must intersect every write
        // quorum — this is what makes early return at `need` replies sound.
        let w = q.write_quorum(3, &all_alive).unwrap();
        for skip in 0..group.len() {
            let subset: Vec<usize> = group
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, r)| r)
                .take(need)
                .collect();
            if subset.len() == need {
                assert!(intersects(&subset, &w), "subset {subset:?} missed {w:?}");
            }
        }
        // No level with a live majority ⇒ no read group. Live set {1,4,5}
        // leaves every level (sizes 1/3/6) short of its full majority.
        let sparse = |r: usize| matches!(r, 1 | 4 | 5);
        assert!(q.read_group(0, &sparse).is_none());
    }

    #[test]
    fn quorums_are_sorted_and_unique() {
        let q = LevelQuorums::new(DaryTree::ternary(22));
        for seed in 0..10u64 {
            let w = q.write_quorum(seed, &all_alive).unwrap();
            let mut sorted = w.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(w, sorted);
        }
    }
}
