#![warn(missing_docs)]

//! # acn-quorum — tree quorum protocol
//!
//! QR-DTM (and thus QR-CN / QR-ACN) manages replicated transactional
//! meta-data with quorums built over a **logical ternary tree** of server
//! nodes, following Agrawal & El Abbadi's tree quorum protocol (VLDB '90).
//! The paper describes the variant actually deployed:
//!
//! > "A read quorum is the majority of children at a level of the tree,
//! >  while a write quorum is the majority of children at every level."
//!
//! This crate implements both that **level-majority** variant (the one the
//! DTM uses, [`LevelQuorums`]) and the **classic recursive** tree protocol
//! ([`classic`]) for comparison and testing. The crucial safety property —
//! every read quorum intersects every write quorum, and any two write
//! quorums intersect — is unit- and property-tested for both.
//!
//! Quorum members are plain `usize` server ranks `0..n`; the DTM layer maps
//! ranks to network node ids.
//!
//! ```
//! use acn_quorum::{DaryTree, LevelQuorums};
//!
//! // The paper's test-bed: 10 servers in a ternary tree.
//! let sys = LevelQuorums::new(DaryTree::ternary(10));
//! let alive = |_rank: usize| true;
//! let read = sys.read_quorum(0, &alive).unwrap();
//! let write = sys.write_quorum(0, &alive).unwrap();
//! assert!(read.iter().any(|r| write.contains(r)), "quorums intersect");
//! ```

mod classic_impl;
mod level;
mod tree;

pub use level::{LevelQuorums, ReadLevelPolicy};
pub use tree::DaryTree;

/// Classic recursive Agrawal–El Abbadi tree quorums.
pub mod classic {
    pub use crate::classic_impl::{read_quorum, write_quorum};
}

/// Verify that two quorums intersect (share at least one member).
pub fn intersects(a: &[usize], b: &[usize]) -> bool {
    a.iter().any(|x| b.contains(x))
}
