//! The logical d-ary tree over server ranks.

/// A complete d-ary tree laid out breadth-first over ranks `0..n`.
///
/// Rank 0 is the root; the children of rank `i` are
/// `arity*i + 1 ..= arity*i + arity` (those below `n`). QR-DTM uses a
/// ternary tree (`arity == 3`); other arities are supported for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaryTree {
    n: usize,
    arity: usize,
}

impl DaryTree {
    /// Create a tree over `n` ranks with the given arity.
    ///
    /// # Panics
    /// Panics if `n == 0` or `arity == 0`.
    pub fn new(n: usize, arity: usize) -> Self {
        assert!(n > 0, "tree needs at least one node");
        assert!(arity > 0, "arity must be positive");
        DaryTree { n, arity }
    }

    /// The ternary tree the paper uses.
    pub fn ternary(n: usize) -> Self {
        Self::new(n, 3)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the tree has exactly one node.
    pub fn is_empty(&self) -> bool {
        false // n > 0 is an invariant; method exists to satisfy len/is_empty pairing
    }

    /// Tree arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Parent of `rank`, or `None` for the root.
    pub fn parent(&self, rank: usize) -> Option<usize> {
        debug_assert!(rank < self.n);
        if rank == 0 {
            None
        } else {
            Some((rank - 1) / self.arity)
        }
    }

    /// Children of `rank` that exist in the tree.
    pub fn children(&self, rank: usize) -> impl Iterator<Item = usize> + '_ {
        debug_assert!(rank < self.n);
        let first = self.arity * rank + 1;
        (first..first + self.arity).take_while(move |&c| c < self.n)
    }

    /// Depth of `rank` (root is level 0).
    pub fn level_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.n);
        // Level ℓ starts at (arity^ℓ - 1)/(arity - 1) for arity > 1.
        if self.arity == 1 {
            return rank;
        }
        let mut level = 0;
        let mut level_start = 0usize;
        let mut level_size = 1usize;
        loop {
            if rank < level_start + level_size {
                return level;
            }
            level_start += level_size;
            level_size *= self.arity;
            level += 1;
        }
    }

    /// Number of levels in the tree.
    pub fn depth(&self) -> usize {
        self.level_of(self.n - 1) + 1
    }

    /// Ranks grouped by level, shallowest first.
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.depth()];
        if self.arity == 1 {
            for (r, lvl) in out.iter_mut().enumerate().take(self.n) {
                lvl.push(r);
            }
            return out;
        }
        let mut level_start = 0usize;
        let mut level_size = 1usize;
        for lvl in out.iter_mut() {
            let end = (level_start + level_size).min(self.n);
            lvl.extend(level_start..end);
            level_start += level_size;
            level_size *= self.arity;
        }
        out
    }
}

/// Majority count for a group of `k` members: `⌊k/2⌋ + 1`.
pub(crate) fn majority(k: usize) -> usize {
    k / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_ten_matches_paper_testbed() {
        // 10 servers: root, 3 children, 6 grandchildren.
        let t = DaryTree::ternary(10);
        let levels = t.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![0]);
        assert_eq!(levels[1], vec![1, 2, 3]);
        assert_eq!(levels[2], vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn parent_child_are_inverse() {
        let t = DaryTree::ternary(40);
        for r in 0..40 {
            for c in t.children(r) {
                assert_eq!(t.parent(c), Some(r), "child {c} of {r}");
            }
        }
        assert_eq!(t.parent(0), None);
    }

    #[test]
    fn level_of_is_consistent_with_levels() {
        for n in [1, 2, 3, 4, 5, 10, 13, 27, 100] {
            let t = DaryTree::ternary(n);
            for (lvl, ranks) in t.levels().into_iter().enumerate() {
                for r in ranks {
                    assert_eq!(t.level_of(r), lvl, "n={n} rank={r}");
                }
            }
        }
    }

    #[test]
    fn levels_partition_all_ranks() {
        for n in [1, 2, 7, 10, 31] {
            let t = DaryTree::ternary(n);
            let mut all: Vec<usize> = t.levels().into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn binary_tree_levels() {
        let t = DaryTree::new(7, 2);
        assert_eq!(t.levels(), vec![vec![0], vec![1, 2], vec![3, 4, 5, 6]]);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn unary_tree_is_a_chain() {
        let t = DaryTree::new(4, 1);
        assert_eq!(t.depth(), 4);
        assert_eq!(t.level_of(3), 3);
        assert_eq!(t.parent(3), Some(2));
        assert_eq!(t.children(1).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn single_node_tree() {
        let t = DaryTree::ternary(1);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.children(0).count(), 0);
        assert_eq!(t.levels(), vec![vec![0]]);
    }

    #[test]
    fn majority_counts() {
        assert_eq!(majority(1), 1);
        assert_eq!(majority(2), 2);
        assert_eq!(majority(3), 2);
        assert_eq!(majority(4), 3);
        assert_eq!(majority(6), 4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = DaryTree::ternary(0);
    }
}
