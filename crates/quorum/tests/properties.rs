//! Property tests for the quorum intersection invariants.
//!
//! These are the safety properties 1-copy serializability rests on:
//! * every read quorum intersects every write quorum, and
//! * any two write quorums intersect,
//!
//! over arbitrary tree sizes, arities, seeds and failure sets.

use acn_quorum::{classic, intersects, DaryTree, LevelQuorums, ReadLevelPolicy};
use proptest::prelude::*;
use std::collections::HashSet;

fn failure_set(n: usize) -> impl Strategy<Value = HashSet<usize>> {
    prop::collection::hash_set(0..n, 0..=n.min(5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Level-majority: R ∩ W ≠ ∅ for all seeds, sizes and failure sets
    /// (whenever both quorums are available).
    #[test]
    fn level_read_write_intersect(
        n in 1usize..60,
        arity in 2usize..5,
        rseed in any::<u64>(),
        wseed in any::<u64>(),
        policy in prop_oneof![
            Just(ReadLevelPolicy::Deepest),
            Just(ReadLevelPolicy::Rotate),
            (0usize..6).prop_map(ReadLevelPolicy::Fixed),
        ],
        failed in failure_set(60),
    ) {
        let q = LevelQuorums::with_policy(DaryTree::new(n, arity), policy);
        let alive = |r: usize| !failed.contains(&r);
        if let (Some(r), Some(w)) = (q.read_quorum(rseed, &alive), q.write_quorum(wseed, &alive)) {
            prop_assert!(intersects(&r, &w), "r={r:?} w={w:?}");
        }
    }

    /// Level-majority: any two write quorums intersect even when taken
    /// under *different* failure views (the invariant that serialises
    /// committed writes across time).
    #[test]
    fn level_two_writes_intersect(
        n in 1usize..60,
        arity in 2usize..5,
        s1 in any::<u64>(),
        s2 in any::<u64>(),
        f1 in failure_set(60),
        f2 in failure_set(60),
    ) {
        let q = LevelQuorums::new(DaryTree::new(n, arity));
        let a1 = |r: usize| !f1.contains(&r);
        let a2 = |r: usize| !f2.contains(&r);
        if let (Some(w1), Some(w2)) = (q.write_quorum(s1, &a1), q.write_quorum(s2, &a2)) {
            prop_assert!(intersects(&w1, &w2), "w1={w1:?} w2={w2:?}");
        }
    }

    /// Level-majority read/write intersection across different failure
    /// views: a read after new failures still meets any previously
    /// committed write.
    #[test]
    fn level_read_meets_older_write(
        n in 1usize..60,
        arity in 2usize..5,
        rseed in any::<u64>(),
        wseed in any::<u64>(),
        later_failures in failure_set(60),
    ) {
        let q = LevelQuorums::new(DaryTree::new(n, arity));
        let all = |_: usize| true;
        let later = |r: usize| !later_failures.contains(&r);
        if let (Some(w), Some(r)) = (q.write_quorum(wseed, &all), q.read_quorum(rseed, &later)) {
            prop_assert!(intersects(&r, &w), "r={r:?} w={w:?}");
        }
    }

    /// Quorum members are always alive and within range.
    #[test]
    fn level_members_valid(
        n in 1usize..60,
        arity in 2usize..5,
        seed in any::<u64>(),
        failed in failure_set(60),
    ) {
        let q = LevelQuorums::new(DaryTree::new(n, arity));
        let alive = |r: usize| !failed.contains(&r);
        if let Some(r) = q.read_quorum(seed, &alive) {
            prop_assert!(r.iter().all(|&x| x < n && alive(x)));
        }
        if let Some(w) = q.write_quorum(seed, &alive) {
            prop_assert!(w.iter().all(|&x| x < n && alive(x)));
        }
    }

    /// Classic protocol: R ∩ W ≠ ∅ under a shared failure view.
    #[test]
    fn classic_read_write_intersect(
        n in 1usize..60,
        arity in 2usize..5,
        failed in failure_set(60),
    ) {
        let t = DaryTree::new(n, arity);
        let alive = |r: usize| !failed.contains(&r);
        if let (Some(r), Some(w)) = (classic::read_quorum(&t, &alive), classic::write_quorum(&t, &alive)) {
            prop_assert!(intersects(&r, &w), "r={r:?} w={w:?}");
        }
    }

    /// Classic protocol: two write quorums under different views intersect.
    #[test]
    fn classic_two_writes_intersect(
        n in 1usize..60,
        arity in 2usize..5,
        f1 in failure_set(60),
        f2 in failure_set(60),
    ) {
        let t = DaryTree::new(n, arity);
        let a1 = |r: usize| !f1.contains(&r);
        let a2 = |r: usize| !f2.contains(&r);
        if let (Some(w1), Some(w2)) = (classic::write_quorum(&t, &a1), classic::write_quorum(&t, &a2)) {
            prop_assert!(intersects(&w1, &w2), "w1={w1:?} w2={w2:?}");
        }
    }

    /// Classic read quorum grows but stays available as long as some
    /// root-to-majority structure survives; all members alive.
    #[test]
    fn classic_members_valid(
        n in 1usize..60,
        arity in 2usize..5,
        failed in failure_set(60),
    ) {
        let t = DaryTree::new(n, arity);
        let alive = |r: usize| !failed.contains(&r);
        if let Some(r) = classic::read_quorum(&t, &alive) {
            prop_assert!(r.iter().all(|&x| x < n && alive(x)));
        }
    }

    /// Healthy-tree classic read quorum is exactly the root — the protocol's
    /// headline read-cost property.
    #[test]
    fn classic_healthy_read_is_root(n in 1usize..60, arity in 2usize..5) {
        let t = DaryTree::new(n, arity);
        prop_assert_eq!(classic::read_quorum(&t, &|_| true).unwrap(), vec![0]);
    }
}

/// Seed rotation spreads read load across replicas: over many client
/// seeds, no single leaf serves wildly more read quorums than another —
/// the "designated quorum per node" mechanism must not re-create a hot
/// replica while eliminating hot objects.
#[test]
fn read_rotation_balances_leaf_load() {
    let q = LevelQuorums::new(DaryTree::ternary(13)); // leaves 4..13
    let mut hits = std::collections::HashMap::new();
    for seed in 0..900u64 {
        for r in q.read_quorum(seed, &|_| true).unwrap() {
            *hits.entry(r).or_insert(0u64) += 1;
        }
    }
    let counts: Vec<u64> = (4..13)
        .map(|r| hits.get(&r).copied().unwrap_or(0))
        .collect();
    let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
    assert!(min > 0, "every leaf serves some quorums: {counts:?}");
    assert!(
        max <= min * 2,
        "load skew exceeds 2× across leaves: {counts:?}"
    );
}
