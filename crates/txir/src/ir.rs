//! The transaction intermediate representation.

use crate::object::{FieldId, ObjClass};
use crate::value::{EvalError, Value};
use std::fmt;

/// A transaction-local register. The IR is SSA: every register is assigned
/// by exactly one statement, which is what makes partial rollback of the
/// register file trivial — re-executing a sub-transaction simply recomputes
/// its own definitions and can never clobber an earlier block's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u16);

/// A per-instance transaction parameter (account ids, amounts, …). The
/// program is a *template*; an instance binds concrete parameter values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub u16);

/// Index of a top-level statement within a [`Program`].
pub type StmtIdx = usize;

/// A statement operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// An immediate value baked into the template.
    Const(Value),
    /// A transaction-local register.
    Var(VarId),
    /// A per-instance parameter.
    Param(ParamId),
}

impl Operand {
    /// The register this operand reads, if any.
    pub fn var(&self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}
impl From<ParamId> for Operand {
    fn from(p: ParamId) -> Self {
        Operand::Param(p)
    }
}
impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Const(Value::Int(v))
    }
}
impl From<bool> for Operand {
    fn from(v: bool) -> Self {
        Operand::Const(Value::Bool(v))
    }
}

/// How an object is opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read-only: enters the read-set.
    Read,
    /// Read-write: fetched like a read, but also enters the write-set and
    /// its buffered copy may be mutated with [`Stmt::SetField`].
    Update,
}

/// Pure operations over [`Value`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division; zero divisor is an [`EvalError`].
    Div,
    /// Integer remainder; zero divisor is an [`EvalError`].
    Mod,
    /// Minimum of two integers.
    Min,
    /// Maximum of two integers.
    Max,
    /// Integer negation.
    Neg,
    /// Equality over any value type.
    Eq,
    /// Inequality over any value type.
    Ne,
    /// Integer less-than.
    Lt,
    /// Integer less-or-equal.
    Le,
    /// Integer greater-than.
    Gt,
    /// Integer greater-or-equal.
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,
    /// `Select(cond, a, b)` — value-level conditional, covering the common
    /// "pick the cheaper reservation" style logic without control flow.
    Select,
    /// String concatenation.
    Concat,
    /// Identity — used to give a constant/parameter a register name.
    Id,
}

impl ComputeOp {
    /// Operation name for diagnostics and error messages.
    pub fn name(self) -> &'static str {
        match self {
            ComputeOp::Add => "Add",
            ComputeOp::Sub => "Sub",
            ComputeOp::Mul => "Mul",
            ComputeOp::Div => "Div",
            ComputeOp::Mod => "Mod",
            ComputeOp::Min => "Min",
            ComputeOp::Max => "Max",
            ComputeOp::Neg => "Neg",
            ComputeOp::Eq => "Eq",
            ComputeOp::Ne => "Ne",
            ComputeOp::Lt => "Lt",
            ComputeOp::Le => "Le",
            ComputeOp::Gt => "Gt",
            ComputeOp::Ge => "Ge",
            ComputeOp::And => "And",
            ComputeOp::Or => "Or",
            ComputeOp::Not => "Not",
            ComputeOp::Select => "Select",
            ComputeOp::Concat => "Concat",
            ComputeOp::Id => "Id",
        }
    }

    fn arity(self) -> usize {
        match self {
            ComputeOp::Neg | ComputeOp::Not | ComputeOp::Id => 1,
            ComputeOp::Select => 3,
            _ => 2,
        }
    }

    /// Evaluate the operation over concrete values.
    pub fn eval(self, args: &[Value]) -> Result<Value, EvalError> {
        if args.len() != self.arity() {
            return Err(EvalError::ArityMismatch {
                op: self.name(),
                expected: self.arity(),
                got: args.len(),
            });
        }
        use ComputeOp::*;
        Ok(match self {
            Add => Value::Int(args[0].as_int()?.wrapping_add(args[1].as_int()?)),
            Sub => Value::Int(args[0].as_int()?.wrapping_sub(args[1].as_int()?)),
            Mul => Value::Int(args[0].as_int()?.wrapping_mul(args[1].as_int()?)),
            Div => {
                let d = args[1].as_int()?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Value::Int(args[0].as_int()?.wrapping_div(d))
            }
            Mod => {
                let d = args[1].as_int()?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Value::Int(args[0].as_int()?.wrapping_rem(d))
            }
            Min => Value::Int(args[0].as_int()?.min(args[1].as_int()?)),
            Max => Value::Int(args[0].as_int()?.max(args[1].as_int()?)),
            Neg => Value::Int(args[0].as_int()?.wrapping_neg()),
            Eq => Value::Bool(args[0] == args[1]),
            Ne => Value::Bool(args[0] != args[1]),
            Lt => Value::Bool(args[0].as_int()? < args[1].as_int()?),
            Le => Value::Bool(args[0].as_int()? <= args[1].as_int()?),
            Gt => Value::Bool(args[0].as_int()? > args[1].as_int()?),
            Ge => Value::Bool(args[0].as_int()? >= args[1].as_int()?),
            And => Value::Bool(args[0].as_bool()? && args[1].as_bool()?),
            Or => Value::Bool(args[0].as_bool()? || args[1].as_bool()?),
            Not => Value::Bool(!args[0].as_bool()?),
            Select => {
                if args[0].as_bool()? {
                    args[1].clone()
                } else {
                    args[2].clone()
                }
            }
            Concat => {
                let mut s = String::from(args[0].as_str()?);
                s.push_str(args[1].as_str()?);
                Value::str(s)
            }
            Id => args[0].clone(),
        })
    }
}

/// One statement of a transaction program.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A remote object invocation: fetch the latest copy of
    /// `class[index]` through a read quorum and bind its handle to `var`.
    /// This is the one statement that costs network round trips, and is the
    /// anchor of a UnitBlock.
    Open {
        /// Register receiving the object handle.
        var: VarId,
        /// Class of the object to open.
        class: ObjClass,
        /// Index of the object within its class (evaluated per instance).
        index: Operand,
        /// Read-only or read-write access.
        mode: AccessMode,
    },
    /// Read a field of an opened object into a register (local).
    GetField {
        /// Register receiving the field value.
        var: VarId,
        /// Handle of the opened object.
        obj: VarId,
        /// Which field to read.
        field: FieldId,
    },
    /// Mutate a field of an object opened with [`AccessMode::Update`]
    /// (local: the write is buffered in the write-set until commit).
    SetField {
        /// Handle of the opened (update-mode) object.
        obj: VarId,
        /// Which field to write.
        field: FieldId,
        /// The value to buffer.
        value: Operand,
    },
    /// Pure local computation: `out = op(ins…)`.
    Compute {
        /// Register receiving the result.
        out: VarId,
        /// The operation.
        op: ComputeOp,
        /// Operands, in the operation's argument order.
        ins: Vec<Operand>,
    },
    /// Effect-level conditional. Registers defined inside the branches are
    /// branch-local; value-level conditionals should use
    /// [`ComputeOp::Select`] instead. A `Cond` containing `Open`s forms a
    /// single composite UnitBlock (it cannot be split, because which opens
    /// execute is only known at run time).
    Cond {
        /// Boolean predicate selecting the branch.
        pred: Operand,
        /// Statements executed when the predicate is true.
        then_br: Vec<Stmt>,
        /// Statements executed when the predicate is false.
        else_br: Vec<Stmt>,
    },
}

/// A transaction template: straight-line SSA statements over `params`
/// parameters and `vars` registers.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Template name, e.g. `"bank/transfer"` or `"tpcc/neworder/5"`.
    pub name: String,
    /// Number of parameters an instance must bind.
    pub params: u16,
    /// Number of registers (exclusive upper bound on `VarId`).
    pub vars: u16,
    /// Top-level statements in program order.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Iterate over top-level statements with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (StmtIdx, &Stmt)> {
        self.stmts.iter().enumerate()
    }

    /// Count remote opens, including those nested in `Cond` branches.
    pub fn open_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Open { .. } => 1,
                    Stmt::Cond {
                        then_br, else_br, ..
                    } => count(then_br) + count(else_br),
                    _ => 0,
                })
                .sum()
        }
        count(&self.stmts)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} (params={})", self.name, self.params)?;
        for (i, s) in self.iter() {
            writeln!(f, "  [{i}] {s:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        use ComputeOp::*;
        let i = |v| Value::Int(v);
        assert_eq!(Add.eval(&[i(2), i(3)]).unwrap(), i(5));
        assert_eq!(Sub.eval(&[i(2), i(3)]).unwrap(), i(-1));
        assert_eq!(Mul.eval(&[i(4), i(3)]).unwrap(), i(12));
        assert_eq!(Div.eval(&[i(9), i(2)]).unwrap(), i(4));
        assert_eq!(Mod.eval(&[i(9), i(2)]).unwrap(), i(1));
        assert_eq!(Min.eval(&[i(9), i(2)]).unwrap(), i(2));
        assert_eq!(Max.eval(&[i(9), i(2)]).unwrap(), i(9));
        assert_eq!(Neg.eval(&[i(9)]).unwrap(), i(-9));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(
            ComputeOp::Div.eval(&[Value::Int(1), Value::Int(0)]),
            Err(EvalError::DivisionByZero)
        );
        assert_eq!(
            ComputeOp::Mod.eval(&[Value::Int(1), Value::Int(0)]),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn comparisons_and_logic() {
        use ComputeOp::*;
        let i = |v| Value::Int(v);
        let b = |v| Value::Bool(v);
        assert_eq!(Lt.eval(&[i(1), i(2)]).unwrap(), b(true));
        assert_eq!(Ge.eval(&[i(2), i(2)]).unwrap(), b(true));
        assert_eq!(Eq.eval(&[i(2), i(2)]).unwrap(), b(true));
        assert_eq!(
            Ne.eval(&[Value::str("a"), Value::str("b")]).unwrap(),
            b(true)
        );
        assert_eq!(And.eval(&[b(true), b(false)]).unwrap(), b(false));
        assert_eq!(Or.eval(&[b(true), b(false)]).unwrap(), b(true));
        assert_eq!(Not.eval(&[b(false)]).unwrap(), b(true));
    }

    #[test]
    fn select_picks_branch() {
        let got = ComputeOp::Select
            .eval(&[Value::Bool(true), Value::Int(1), Value::Int(2)])
            .unwrap();
        assert_eq!(got, Value::Int(1));
        let got = ComputeOp::Select
            .eval(&[Value::Bool(false), Value::Int(1), Value::Int(2)])
            .unwrap();
        assert_eq!(got, Value::Int(2));
    }

    #[test]
    fn concat_and_id() {
        assert_eq!(
            ComputeOp::Concat
                .eval(&[Value::str("ab"), Value::str("cd")])
                .unwrap(),
            Value::str("abcd")
        );
        assert_eq!(ComputeOp::Id.eval(&[Value::Int(7)]).unwrap(), Value::Int(7));
    }

    #[test]
    fn arity_is_enforced() {
        assert!(matches!(
            ComputeOp::Add.eval(&[Value::Int(1)]),
            Err(EvalError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
        assert!(ComputeOp::Not.eval(&[]).is_err());
        assert!(ComputeOp::Select.eval(&[Value::Bool(true)]).is_err());
    }

    #[test]
    fn type_errors_surface() {
        assert!(ComputeOp::Add
            .eval(&[Value::Bool(true), Value::Int(1)])
            .is_err());
        assert!(ComputeOp::And
            .eval(&[Value::Int(1), Value::Bool(true)])
            .is_err());
        assert!(ComputeOp::Concat
            .eval(&[Value::Int(1), Value::str("x")])
            .is_err());
    }

    #[test]
    fn wrapping_semantics() {
        assert_eq!(
            ComputeOp::Add
                .eval(&[Value::Int(i64::MAX), Value::Int(1)])
                .unwrap(),
            Value::Int(i64::MIN)
        );
    }

    #[test]
    fn open_count_includes_cond_branches() {
        const C: ObjClass = ObjClass::new(0, "C");
        let open = |v: u16| Stmt::Open {
            var: VarId(v),
            class: C,
            index: Operand::from(0i64),
            mode: AccessMode::Read,
        };
        let p = Program {
            name: "t".into(),
            params: 0,
            vars: 3,
            stmts: vec![
                open(0),
                Stmt::Cond {
                    pred: Operand::from(true),
                    then_br: vec![open(1)],
                    else_br: vec![open(2)],
                },
            ],
        };
        assert_eq!(p.open_count(), 3);
    }
}
