//! Well-formedness checking for transaction programs.

use crate::ir::{Operand, Program, Stmt, VarId};
use std::collections::HashSet;
use std::fmt;

/// Why a program is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A register is assigned more than once (the IR is SSA).
    DoubleDefinition(VarId),
    /// A register is read before (or without) being defined.
    UseBeforeDef(VarId),
    /// A register defined inside a `Cond` branch escapes the branch.
    BranchLocalEscape(VarId),
    /// A parameter index is out of range.
    ParamOutOfRange(u16),
    /// A register index is outside the program's declared register count.
    VarOutOfRange(VarId),
    /// `SetField` targets an object opened read-only.
    WriteToReadOnly(VarId),
    /// An object handle is used as a plain value operand.
    HandleUsedAsValue(VarId),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::DoubleDefinition(v) => write!(f, "register {v:?} defined twice"),
            ValidateError::UseBeforeDef(v) => write!(f, "register {v:?} used before definition"),
            ValidateError::BranchLocalEscape(v) => {
                write!(f, "branch-local register {v:?} used outside its branch")
            }
            ValidateError::ParamOutOfRange(p) => write!(f, "parameter {p} out of range"),
            ValidateError::VarOutOfRange(v) => write!(f, "register {v:?} out of range"),
            ValidateError::WriteToReadOnly(v) => {
                write!(f, "SetField on read-only handle {v:?}")
            }
            ValidateError::HandleUsedAsValue(v) => {
                write!(f, "object handle {v:?} used as a value operand")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

struct Checker {
    params: u16,
    vars: u16,
    /// Registers defined so far, program-wide (SSA check).
    defined_anywhere: HashSet<VarId>,
    /// Handles opened read-only / read-write.
    read_handles: HashSet<VarId>,
    write_handles: HashSet<VarId>,
}

impl Checker {
    fn check_operand(&self, op: &Operand, in_scope: &HashSet<VarId>) -> Result<(), ValidateError> {
        match op {
            Operand::Const(_) => Ok(()),
            Operand::Param(p) => {
                if p.0 >= self.params {
                    Err(ValidateError::ParamOutOfRange(p.0))
                } else {
                    Ok(())
                }
            }
            Operand::Var(v) => {
                if v.0 >= self.vars {
                    return Err(ValidateError::VarOutOfRange(*v));
                }
                if !in_scope.contains(v) {
                    return Err(ValidateError::UseBeforeDef(*v));
                }
                if self.read_handles.contains(v) || self.write_handles.contains(v) {
                    return Err(ValidateError::HandleUsedAsValue(*v));
                }
                Ok(())
            }
        }
    }

    fn define(&mut self, v: VarId, in_scope: &mut HashSet<VarId>) -> Result<(), ValidateError> {
        if v.0 >= self.vars {
            return Err(ValidateError::VarOutOfRange(v));
        }
        if !self.defined_anywhere.insert(v) {
            return Err(ValidateError::DoubleDefinition(v));
        }
        in_scope.insert(v);
        Ok(())
    }

    fn check_handle(&self, v: VarId, in_scope: &HashSet<VarId>) -> Result<(), ValidateError> {
        if v.0 >= self.vars {
            return Err(ValidateError::VarOutOfRange(v));
        }
        if !in_scope.contains(&v) {
            return Err(ValidateError::UseBeforeDef(v));
        }
        Ok(())
    }

    fn check_block(
        &mut self,
        stmts: &[Stmt],
        in_scope: &mut HashSet<VarId>,
    ) -> Result<(), ValidateError> {
        for stmt in stmts {
            match stmt {
                Stmt::Open {
                    var, index, mode, ..
                } => {
                    self.check_operand(index, in_scope)?;
                    self.define(*var, in_scope)?;
                    match mode {
                        crate::ir::AccessMode::Read => self.read_handles.insert(*var),
                        crate::ir::AccessMode::Update => self.write_handles.insert(*var),
                    };
                }
                Stmt::GetField { var, obj, .. } => {
                    self.check_handle(*obj, in_scope)?;
                    self.define(*var, in_scope)?;
                }
                Stmt::SetField { obj, value, .. } => {
                    self.check_handle(*obj, in_scope)?;
                    if self.read_handles.contains(obj) {
                        return Err(ValidateError::WriteToReadOnly(*obj));
                    }
                    self.check_operand(value, in_scope)?;
                }
                Stmt::Compute { out, ins, .. } => {
                    for op in ins {
                        self.check_operand(op, in_scope)?;
                    }
                    self.define(*out, in_scope)?;
                }
                Stmt::Cond {
                    pred,
                    then_br,
                    else_br,
                } => {
                    self.check_operand(pred, in_scope)?;
                    // Each branch gets a scope copy: defs inside do not
                    // escape (branch-local rule). SSA is still global, so a
                    // register cannot be defined in both branches either.
                    let mut then_scope = in_scope.clone();
                    self.check_block(then_br, &mut then_scope)?;
                    let mut else_scope = in_scope.clone();
                    self.check_block(else_br, &mut else_scope)?;
                }
            }
        }
        Ok(())
    }
}

/// Check that `program` is well-formed: SSA, no use-before-def, branch-local
/// registers stay local, parameters/registers in range, no writes through
/// read-only handles, and object handles only used as `GetField`/`SetField`
/// targets.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    let mut checker = Checker {
        params: program.params,
        vars: program.vars,
        defined_anywhere: HashSet::new(),
        read_handles: HashSet::new(),
        write_handles: HashSet::new(),
    };
    let mut scope = HashSet::new();
    checker.check_block(&program.stmts, &mut scope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AccessMode, ComputeOp, Operand};
    use crate::object::{FieldId, ObjClass};

    const C: ObjClass = ObjClass::new(0, "C");
    const F: FieldId = FieldId(0);

    fn prog(vars: u16, stmts: Vec<Stmt>) -> Program {
        Program {
            name: "t".into(),
            params: 2,
            vars,
            stmts,
        }
    }

    fn open(var: u16, mode: AccessMode) -> Stmt {
        Stmt::Open {
            var: VarId(var),
            class: C,
            index: Operand::from(0i64),
            mode,
        }
    }

    #[test]
    fn accepts_well_formed() {
        let p = prog(
            3,
            vec![
                open(0, AccessMode::Update),
                Stmt::GetField {
                    var: VarId(1),
                    obj: VarId(0),
                    field: F,
                },
                Stmt::Compute {
                    out: VarId(2),
                    op: ComputeOp::Add,
                    ins: vec![
                        Operand::Var(VarId(1)),
                        Operand::Param(crate::ir::ParamId(1)),
                    ],
                },
                Stmt::SetField {
                    obj: VarId(0),
                    field: F,
                    value: Operand::Var(VarId(2)),
                },
            ],
        );
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn rejects_double_definition() {
        let p = prog(
            1,
            vec![
                Stmt::Compute {
                    out: VarId(0),
                    op: ComputeOp::Id,
                    ins: vec![Operand::from(1i64)],
                },
                Stmt::Compute {
                    out: VarId(0),
                    op: ComputeOp::Id,
                    ins: vec![Operand::from(2i64)],
                },
            ],
        );
        assert_eq!(validate(&p), Err(ValidateError::DoubleDefinition(VarId(0))));
    }

    #[test]
    fn rejects_use_before_def() {
        let p = prog(
            2,
            vec![Stmt::Compute {
                out: VarId(0),
                op: ComputeOp::Id,
                ins: vec![Operand::Var(VarId(1))],
            }],
        );
        assert_eq!(validate(&p), Err(ValidateError::UseBeforeDef(VarId(1))));
    }

    #[test]
    fn rejects_branch_local_escape() {
        let p = prog(
            2,
            vec![
                Stmt::Cond {
                    pred: Operand::from(true),
                    then_br: vec![Stmt::Compute {
                        out: VarId(0),
                        op: ComputeOp::Id,
                        ins: vec![Operand::from(1i64)],
                    }],
                    else_br: vec![],
                },
                Stmt::Compute {
                    out: VarId(1),
                    op: ComputeOp::Id,
                    ins: vec![Operand::Var(VarId(0))],
                },
            ],
        );
        // Escape manifests as use-before-def in the outer scope.
        assert_eq!(validate(&p), Err(ValidateError::UseBeforeDef(VarId(0))));
    }

    #[test]
    fn rejects_write_through_read_handle() {
        let p = prog(
            1,
            vec![
                open(0, AccessMode::Read),
                Stmt::SetField {
                    obj: VarId(0),
                    field: F,
                    value: Operand::from(1i64),
                },
            ],
        );
        assert_eq!(validate(&p), Err(ValidateError::WriteToReadOnly(VarId(0))));
    }

    #[test]
    fn rejects_handle_as_value() {
        let p = prog(
            2,
            vec![
                open(0, AccessMode::Read),
                Stmt::Compute {
                    out: VarId(1),
                    op: ComputeOp::Id,
                    ins: vec![Operand::Var(VarId(0))],
                },
            ],
        );
        assert_eq!(
            validate(&p),
            Err(ValidateError::HandleUsedAsValue(VarId(0)))
        );
    }

    #[test]
    fn rejects_param_out_of_range() {
        let p = prog(
            1,
            vec![Stmt::Compute {
                out: VarId(0),
                op: ComputeOp::Id,
                ins: vec![Operand::Param(crate::ir::ParamId(9))],
            }],
        );
        assert_eq!(validate(&p), Err(ValidateError::ParamOutOfRange(9)));
    }

    #[test]
    fn rejects_var_out_of_range() {
        let p = prog(0, vec![open(5, AccessMode::Read)]);
        assert_eq!(validate(&p), Err(ValidateError::VarOutOfRange(VarId(5))));
    }

    #[test]
    fn same_register_cannot_be_defined_in_both_branches() {
        let def = |v: u16, val: i64| Stmt::Compute {
            out: VarId(v),
            op: ComputeOp::Id,
            ins: vec![Operand::from(val)],
        };
        let p = prog(
            1,
            vec![Stmt::Cond {
                pred: Operand::from(true),
                then_br: vec![def(0, 1)],
                else_br: vec![def(0, 2)],
            }],
        );
        assert_eq!(validate(&p), Err(ValidateError::DoubleDefinition(VarId(0))));
    }

    #[test]
    fn branch_may_read_outer_registers() {
        let p = prog(
            2,
            vec![
                Stmt::Compute {
                    out: VarId(0),
                    op: ComputeOp::Id,
                    ins: vec![Operand::from(1i64)],
                },
                Stmt::Cond {
                    pred: Operand::from(true),
                    then_br: vec![Stmt::Compute {
                        out: VarId(1),
                        op: ComputeOp::Id,
                        ins: vec![Operand::Var(VarId(0))],
                    }],
                    else_br: vec![],
                },
            ],
        );
        assert_eq!(validate(&p), Ok(()));
    }
}
