//! The UnitGraph: statement-level dependency graph.
//!
//! This is our equivalent of the Soot UnitGraph plus the data-flow analysis
//! the paper runs on top of it: "for every node in the UnitGraph, the
//! in-flow and out-flow data is tracked to create data dependency edges
//! among the nodes". Nodes are top-level statements (a `Cond` is a single
//! composite node); edges are
//!
//! * **flow** edges (def → use of a register), and
//! * **object-state** edges, ordering buffered reads and writes of the same
//!   opened object so that reordering cannot change what a `GetField`
//!   observes (read-after-write, write-after-read, write-after-write).

use crate::ir::{Operand, Program, Stmt, StmtIdx, VarId};
use crate::object::ObjClass;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Summary of one top-level statement's effects, with `Cond` branches
/// conservatively folded in (branch-local registers excluded).
#[derive(Debug, Clone, Default)]
pub struct StmtInfo {
    /// Registers this statement reads (including object handles).
    pub uses: Vec<VarId>,
    /// Registers this statement defines (branch-local defs excluded).
    pub defs: Vec<VarId>,
    /// Object handles whose buffered state is read (`GetField`).
    pub obj_reads: Vec<VarId>,
    /// Object handles whose buffered state is written (`SetField`).
    pub obj_writes: Vec<VarId>,
    /// Objects opened by this statement: handle register and class.
    pub opens: Vec<(VarId, ObjClass)>,
}

impl StmtInfo {
    /// Does this statement perform at least one remote invocation?
    pub fn is_open(&self) -> bool {
        !self.opens.is_empty()
    }
}

/// The statement dependency graph of one program.
#[derive(Debug, Clone)]
pub struct UnitGraph {
    /// Per-statement effect summaries, indexed by [`StmtIdx`].
    pub stmts: Vec<StmtInfo>,
    /// Dependency edges `(u, v)`: statement `u` must execute before `v`.
    pub edges: BTreeSet<(StmtIdx, StmtIdx)>,
    /// For each register: the top-level statement defining it.
    pub def_site: HashMap<VarId, StmtIdx>,
}

fn collect_branch(stmts: &[Stmt], local: &mut HashSet<VarId>, info: &mut StmtInfo) {
    let use_op = |op: &Operand, local: &HashSet<VarId>, info: &mut StmtInfo| {
        if let Some(v) = op.var() {
            if !local.contains(&v) {
                info.uses.push(v);
            }
        }
    };
    for s in stmts {
        match s {
            Stmt::Open {
                var, index, class, ..
            } => {
                use_op(index, local, info);
                local.insert(*var);
                info.opens.push((*var, *class));
            }
            Stmt::GetField { var, obj, .. } => {
                if !local.contains(obj) {
                    info.uses.push(*obj);
                    info.obj_reads.push(*obj);
                }
                local.insert(*var);
            }
            Stmt::SetField { obj, value, .. } => {
                if !local.contains(obj) {
                    info.uses.push(*obj);
                    info.obj_writes.push(*obj);
                }
                use_op(value, local, info);
            }
            Stmt::Compute { out, ins, .. } => {
                for op in ins {
                    use_op(op, local, info);
                }
                local.insert(*out);
            }
            Stmt::Cond {
                pred,
                then_br,
                else_br,
            } => {
                use_op(pred, local, info);
                let mut then_local = local.clone();
                collect_branch(then_br, &mut then_local, info);
                let mut else_local = local.clone();
                collect_branch(else_br, &mut else_local, info);
            }
        }
    }
}

fn summarize(stmt: &Stmt) -> StmtInfo {
    let mut info = StmtInfo::default();
    match stmt {
        Stmt::Open {
            var, index, class, ..
        } => {
            if let Some(v) = index.var() {
                info.uses.push(v);
            }
            info.defs.push(*var);
            info.opens.push((*var, *class));
        }
        Stmt::GetField { var, obj, .. } => {
            info.uses.push(*obj);
            info.obj_reads.push(*obj);
            info.defs.push(*var);
        }
        Stmt::SetField { obj, value, .. } => {
            info.uses.push(*obj);
            info.obj_writes.push(*obj);
            if let Some(v) = value.var() {
                info.uses.push(v);
            }
        }
        Stmt::Compute { out, ins, .. } => {
            for op in ins {
                if let Some(v) = op.var() {
                    info.uses.push(v);
                }
            }
            info.defs.push(*out);
        }
        Stmt::Cond {
            pred,
            then_br,
            else_br,
        } => {
            if let Some(v) = pred.var() {
                info.uses.push(v);
            }
            let mut local = HashSet::new();
            collect_branch(then_br, &mut local.clone(), &mut info);
            collect_branch(else_br, &mut local, &mut info);
            // A composite node both reads and writes every object handle it
            // touches inside a branch: which effects actually run is a
            // run-time question, so ordering must assume the strongest.
            let touched: Vec<VarId> = info
                .obj_reads
                .iter()
                .chain(info.obj_writes.iter())
                .copied()
                .collect();
            for v in touched {
                if !info.obj_reads.contains(&v) {
                    info.obj_reads.push(v);
                }
                if !info.obj_writes.contains(&v) {
                    info.obj_writes.push(v);
                }
            }
        }
    }
    info.uses.sort_unstable();
    info.uses.dedup();
    info
}

impl UnitGraph {
    /// Build the dependency graph of `program`. The program must already be
    /// validated ([`crate::validate`]).
    pub fn build(program: &Program) -> UnitGraph {
        let stmts: Vec<StmtInfo> = program.stmts.iter().map(summarize).collect();
        let mut def_site: HashMap<VarId, StmtIdx> = HashMap::new();
        for (i, info) in stmts.iter().enumerate() {
            for &d in &info.defs {
                def_site.insert(d, i);
            }
        }

        let mut edges: BTreeSet<(StmtIdx, StmtIdx)> = BTreeSet::new();
        // Flow edges: def → use.
        for (i, info) in stmts.iter().enumerate() {
            for u in &info.uses {
                if let Some(&d) = def_site.get(u) {
                    if d != i {
                        edges.insert((d, i));
                    }
                }
            }
        }
        // Object-state edges per handle: a read depends on the last write;
        // a write depends on the last write and every read since it.
        struct ObjState {
            last_write: Option<StmtIdx>,
            reads_since: Vec<StmtIdx>,
        }
        let mut state: HashMap<VarId, ObjState> = HashMap::new();
        for (i, info) in stmts.iter().enumerate() {
            // Reads first at a given statement would self-order against its
            // own writes; composite nodes list a handle in both sets, which
            // is fine because self-edges are skipped.
            for &h in &info.obj_reads {
                let st = state.entry(h).or_insert(ObjState {
                    last_write: None,
                    reads_since: Vec::new(),
                });
                if let Some(w) = st.last_write {
                    if w != i {
                        edges.insert((w, i));
                    }
                }
                st.reads_since.push(i);
            }
            for &h in &info.obj_writes {
                let st = state.entry(h).or_insert(ObjState {
                    last_write: None,
                    reads_since: Vec::new(),
                });
                if let Some(w) = st.last_write {
                    if w != i {
                        edges.insert((w, i));
                    }
                }
                for &r in &st.reads_since {
                    if r != i {
                        edges.insert((r, i));
                    }
                }
                st.last_write = Some(i);
                st.reads_since.clear();
            }
        }

        UnitGraph {
            stmts,
            edges,
            def_site,
        }
    }

    /// Direct dependencies of statement `v` (statements that must precede it).
    pub fn preds(&self, v: StmtIdx) -> impl Iterator<Item = StmtIdx> + '_ {
        self.edges
            .iter()
            .filter(move |&&(_, b)| b == v)
            .map(|&(a, _)| a)
    }

    /// Statements that depend on `u`.
    pub fn succs(&self, u: StmtIdx) -> impl Iterator<Item = StmtIdx> + '_ {
        self.edges.range((u, 0)..(u + 1, 0)).map(|&(_, b)| b)
    }

    /// For every register, the set of opens whose values transitively flow
    /// into it — `src_opens[v]` is the set of `Open` statement indices the
    /// paper's rules call "the shared objects managed by" a computation on
    /// `v`. Handles map to their own open; `GetField` results inherit the
    /// handle's open; `Compute` unions its operands.
    pub fn source_opens(&self, program: &Program) -> HashMap<VarId, BTreeSet<StmtIdx>> {
        let mut src: HashMap<VarId, BTreeSet<StmtIdx>> = HashMap::new();
        for (i, stmt) in program.stmts.iter().enumerate() {
            match stmt {
                Stmt::Open { var, .. } => {
                    src.insert(*var, BTreeSet::from([i]));
                }
                Stmt::GetField { var, obj, .. } => {
                    let s = src.get(obj).cloned().unwrap_or_default();
                    src.insert(*var, s);
                }
                Stmt::Compute { out, ins, .. } => {
                    let mut s = BTreeSet::new();
                    for op in ins {
                        if let Some(v) = op.var() {
                            if let Some(os) = src.get(&v) {
                                s.extend(os.iter().copied());
                            }
                        }
                    }
                    src.insert(*out, s);
                }
                Stmt::SetField { .. } | Stmt::Cond { .. } => {}
            }
        }
        src
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::ComputeOp;
    use crate::object::{FieldId, ObjClass};

    const A: ObjClass = ObjClass::new(0, "A");
    const B: ObjClass = ObjClass::new(1, "B");
    const F: FieldId = FieldId(0);

    /// The paper's §I-A example Tp1: {Read(OA), Read(OB), C = OA+OB, D = C+φ}.
    fn tp1() -> (Program, UnitGraph) {
        let mut b = ProgramBuilder::new("tp1", 0);
        let oa = b.open_read(A, 0i64);
        let ob = b.open_read(B, 0i64);
        let va = b.get(oa, F);
        let vb = b.get(ob, F);
        let c = b.add(va, vb);
        let _d = b.add(c, 42i64);
        let p = b.finish();
        let g = UnitGraph::build(&p);
        (p, g)
    }

    #[test]
    fn flow_edges_follow_def_use() {
        let (_, g) = tp1();
        // GetField(va) [2] depends on Open(oa) [0]; C=va+vb [4] on [2],[3];
        // D=C+42 [5] on [4].
        assert!(g.edges.contains(&(0, 2)));
        assert!(g.edges.contains(&(1, 3)));
        assert!(g.edges.contains(&(2, 4)));
        assert!(g.edges.contains(&(3, 4)));
        assert!(g.edges.contains(&(4, 5)));
        assert!(!g.edges.contains(&(0, 1)), "independent opens have no edge");
    }

    #[test]
    fn def_sites_recorded() {
        let (_, g) = tp1();
        assert_eq!(g.def_site[&crate::ir::VarId(0)], 0);
        assert_eq!(g.def_site[&crate::ir::VarId(4)], 4);
    }

    #[test]
    fn source_opens_propagate_through_computation() {
        let (p, g) = tp1();
        let src = g.source_opens(&p);
        // C (var 4) derives from both opens; D (var 5) likewise, through C.
        assert_eq!(src[&crate::ir::VarId(4)], BTreeSet::from([0, 1]));
        assert_eq!(src[&crate::ir::VarId(5)], BTreeSet::from([0, 1]));
    }

    #[test]
    fn object_state_edges_order_read_write() {
        // open A; get; set; get — the second get must depend on the set.
        let mut b = ProgramBuilder::new("t", 0);
        let oa = b.open_update(A, 0i64);
        let v0 = b.get(oa, F);
        let v1 = b.add(v0, 1i64);
        b.set(oa, F, v1); // stmt 3
        let _v2 = b.get(oa, F); // stmt 4
        let p = b.finish();
        let g = UnitGraph::build(&p);
        assert!(g.edges.contains(&(3, 4)), "RAW edge missing");
        assert!(g.edges.contains(&(1, 3)), "WAR edge missing");
    }

    #[test]
    fn write_after_write_is_ordered() {
        let mut b = ProgramBuilder::new("t", 0);
        let oa = b.open_update(A, 0i64);
        b.set(oa, F, 1i64); // stmt 1
        b.set(oa, F, 2i64); // stmt 2
        let p = b.finish();
        let g = UnitGraph::build(&p);
        assert!(g.edges.contains(&(1, 2)), "WAW edge missing");
    }

    #[test]
    fn cond_is_composite_with_conservative_effects() {
        let mut b = ProgramBuilder::new("t", 1);
        let oa = b.open_update(A, 0i64);
        let v = b.get(oa, F);
        let pred = b.compute(ComputeOp::Gt, [v.into(), 0i64.into()]);
        b.cond(pred, |b| b.set(oa, F, 0i64), |_| {}); // stmt 3
        let _after = b.get(oa, F); // stmt 4
        let p = b.finish();
        let g = UnitGraph::build(&p);
        let info = &g.stmts[3];
        assert!(info.obj_writes.contains(&crate::ir::VarId(0)));
        assert!(g.edges.contains(&(3, 4)), "read after composite write");
        assert!(g.edges.contains(&(2, 3)), "pred flow edge");
    }

    #[test]
    fn cond_with_open_is_an_open_node() {
        let mut b = ProgramBuilder::new("t", 0);
        let flag = b.constant(true);
        b.cond(
            flag,
            |b| {
                let o = b.open_update(B, 1i64);
                b.set(o, F, 5i64);
            },
            |_| {},
        );
        let p = b.finish();
        let g = UnitGraph::build(&p);
        assert!(g.stmts[1].is_open());
        assert_eq!(g.stmts[1].opens.len(), 1);
        assert_eq!(g.stmts[1].opens[0].1, B);
    }

    #[test]
    fn branch_local_uses_do_not_leak() {
        let mut b = ProgramBuilder::new("t", 0);
        let flag = b.constant(true);
        b.cond(
            flag,
            |b| {
                let x = b.constant(1i64);
                let _y = b.add(x, 2i64); // uses branch-local x only
            },
            |_| {},
        );
        let p = b.finish();
        let g = UnitGraph::build(&p);
        // The composite's only outer use is the predicate.
        assert_eq!(g.stmts[1].uses, vec![crate::ir::VarId(0)]);
    }

    #[test]
    fn succs_and_preds_agree() {
        let (_, g) = tp1();
        let succs0: Vec<_> = g.succs(0).collect();
        assert_eq!(succs0, vec![2]);
        let preds4: Vec<_> = g.preds(4).collect();
        assert_eq!(preds4, vec![2, 3]);
    }
}
