//! Symbolic index resolution for `Var`-indexed opens.
//!
//! [`crate::access::AccessSummary`] resolves only `Const`/`Param`-indexed
//! opens; anything register-indexed clears `exact` and forces the batch
//! scheduler into pessimistic class-level edges. That serializes TPC-C
//! NewOrder: its ORDER/NEW_ORDER/ORDER_LINE indices are *pure arithmetic*
//! over parameters and one hot-counter read (`D_NEXT_OID`), not arbitrary
//! pointer chases.
//!
//! This module walks the SSA def chain behind each `Operand::Var` index and
//! classifies it as a [`SymExpr`]: a closed form over `Const`/`Param`
//! leaves, plus [`SymExpr::Counter`] leaves for reads of *designated hot
//! counters* — a field of a statically indexed top-level open that the
//! template reads once and advances by a constant (or leaves untouched).
//! Indices that resolve without counter leaves evaluate from the parameter
//! vector alone; counter-dependent ones evaluate against a
//! [`crate::access::CounterOracle`] prediction that the executor validates
//! at the real read. Anything the walker cannot prove stays unresolved and
//! the summary soundly remains inexact.

use crate::ir::{AccessMode, ComputeOp, Operand, ParamId, Program, Stmt, StmtIdx, VarId};
use crate::object::{FieldId, ObjClass};
use crate::value::Value;
use std::collections::HashMap;

/// A symbolic expression over template parameters and hot-counter reads.
#[derive(Debug, Clone, PartialEq)]
pub enum SymExpr {
    /// An immediate baked into the template.
    Const(Value),
    /// A per-instance parameter.
    Param(ParamId),
    /// The value produced by counter read site `i` of the owning
    /// [`SymbolicSummary::counters`] list.
    Counter(usize),
    /// A pure computation over resolved operands.
    Op(ComputeOp, Vec<SymExpr>),
}

impl SymExpr {
    /// Does any leaf reference a counter read?
    pub fn uses_counter(&self, id: usize) -> bool {
        match self {
            SymExpr::Counter(c) => *c == id,
            SymExpr::Op(_, ins) => ins.iter().any(|e| e.uses_counter(id)),
            _ => false,
        }
    }

    /// Evaluate under a parameter vector and per-counter predicted values.
    /// `None` on missing/mistyped params or arithmetic errors — callers
    /// degrade to inexact, they never panic.
    pub fn eval(&self, params: &[Value], counters: &[i64]) -> Option<Value> {
        match self {
            SymExpr::Const(v) => Some(v.clone()),
            SymExpr::Param(p) => params.get(p.0 as usize).cloned(),
            SymExpr::Counter(c) => counters.get(*c).copied().map(Value::Int),
            SymExpr::Op(op, ins) => {
                let args: Option<Vec<Value>> =
                    ins.iter().map(|e| e.eval(params, counters)).collect();
                op.eval(&args?).ok()
            }
        }
    }
}

/// A designated hot-counter read site: the template opens
/// `class[index(params)]` top-level with a static index, reads `field`
/// exactly once before any write to it, and advances it by `delta`
/// (0 = read-only) — TPC-C's `D_NEXT_OID` pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRef {
    /// Class of the counter's host object.
    pub class: ObjClass,
    /// Static index of the host object (no counter leaves).
    pub index: SymExpr,
    /// The counter field.
    pub field: FieldId,
    /// How much one instance advances the counter (`value + delta` is
    /// written back; 0 when the template never writes the field).
    pub delta: i64,
}

/// One top-level open whose index resolved symbolically.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicAccess {
    /// Class of the object the open targets.
    pub class: ObjClass,
    /// Resolved index expression (may contain counter leaves).
    pub index: SymExpr,
    /// `true` for `Update` opens.
    pub write: bool,
    /// `true` for *value-blind* `Update` opens: the template never reads a
    /// field of this handle, so execution needs neither the object's
    /// current value nor (speculatively) its version — the paper's
    /// insert-only rows. See [`crate::access::ResolvedAccess::blind`].
    pub blind: bool,
}

/// Symbolic access summary of a template: every top-level open's index as
/// a [`SymExpr`] where provable, plus the counter sites those expressions
/// read through.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicSummary {
    /// Symbolically resolved top-level opens, in statement order.
    pub accesses: Vec<SymbolicAccess>,
    /// Detected hot-counter read sites, referenced by
    /// [`SymExpr::Counter`] index.
    pub counters: Vec<CounterRef>,
    /// `true` iff *every* open in the template is a top-level open whose
    /// index resolved — i.e. evaluating `accesses` (with counter
    /// predictions) yields the complete read/write sets of an instance.
    pub complete: bool,
}

/// Per-(handle, field) usage sites, used for counter detection.
#[derive(Default)]
struct FieldUse {
    /// Top-level `GetField`s: (stmt index, destination register).
    gets: Vec<(StmtIdx, VarId)>,
    /// Top-level `SetField`s: (stmt index, value operand).
    sets: Vec<(StmtIdx, Operand)>,
    /// Writes nested inside a `Cond` — they disqualify the counter, since
    /// whether the advance happens is a run-time fact.
    nested_sets: usize,
}

impl SymbolicSummary {
    /// Analyze a template. Never fails: unprovable indices just leave
    /// `complete == false`.
    pub fn of(program: &Program) -> Self {
        // Def site of every top-level register. Registers defined inside
        // `Cond` branches are branch-local and stay unresolvable.
        let mut defs: HashMap<VarId, &Stmt> = HashMap::new();
        for s in &program.stmts {
            match s {
                Stmt::Open { var, .. }
                | Stmt::GetField { var, .. }
                | Stmt::Compute { out: var, .. } => {
                    defs.insert(*var, s);
                }
                _ => {}
            }
        }

        // Top-level opens with a static (Const/Param) index — the only
        // objects that can host a predictable counter.
        let mut static_opens: HashMap<VarId, (ObjClass, Operand)> = HashMap::new();
        let mut nested_opens = false;
        for s in &program.stmts {
            match s {
                Stmt::Open {
                    var, class, index, ..
                } if !matches!(index, Operand::Var(_)) => {
                    static_opens.insert(*var, (*class, index.clone()));
                }
                Stmt::Cond { .. } if open_in(s) => nested_opens = true,
                _ => {}
            }
        }

        // Field-use census per (handle, field).
        let mut uses: HashMap<(VarId, FieldId), FieldUse> = HashMap::new();
        for (i, s) in program.iter() {
            match s {
                Stmt::GetField { var, obj, field } => {
                    uses.entry((*obj, *field)).or_default().gets.push((i, *var));
                }
                Stmt::SetField { obj, field, value } => uses
                    .entry((*obj, *field))
                    .or_default()
                    .sets
                    .push((i, value.clone())),
                Stmt::Cond {
                    then_br, else_br, ..
                } => {
                    for br in [then_br, else_br] {
                        count_nested_sets(br, &mut uses);
                    }
                }
                _ => {}
            }
        }

        // Counter detection: one top-level read of a statically-opened
        // object's field, preceding every (≤1, top-level, affine) write.
        let mut counters: Vec<CounterRef> = Vec::new();
        let mut counter_of: HashMap<VarId, usize> = HashMap::new();
        let mut sites: Vec<(VarId, FieldId)> = uses.keys().copied().collect();
        sites.sort(); // deterministic counter numbering
        for (obj, field) in sites {
            let u = &uses[&(obj, field)];
            let Some((class, index)) = static_opens.get(&obj) else {
                continue;
            };
            if u.gets.len() != 1 || u.nested_sets > 0 || u.sets.len() > 1 {
                continue;
            }
            let (get_at, get_var) = u.gets[0];
            if u.sets.iter().any(|&(at, _)| at < get_at) {
                continue;
            }
            let delta = match u.sets.first() {
                None => 0,
                Some((_, value)) => match affine_delta(value, get_var, &defs) {
                    Some(d) => d,
                    None => continue, // non-affine advance: unpredictable
                },
            };
            let index = match index {
                Operand::Const(v) => SymExpr::Const(v.clone()),
                Operand::Param(p) => SymExpr::Param(*p),
                Operand::Var(_) => unreachable!("static opens never use registers"),
            };
            counter_of.insert(get_var, counters.len());
            counters.push(CounterRef {
                class: *class,
                index,
                field,
                delta,
            });
        }

        // Resolve every top-level open's index.
        let read_handles = handles_read(&program.stmts);
        let mut memo: HashMap<VarId, Option<SymExpr>> = HashMap::new();
        let mut accesses = Vec::new();
        let mut complete = !nested_opens;
        for s in &program.stmts {
            if let Stmt::Open {
                var,
                class,
                index,
                mode,
            } = s
            {
                match resolve_operand(index, &defs, &counter_of, &mut memo) {
                    Some(expr) => accesses.push(SymbolicAccess {
                        class: *class,
                        index: expr,
                        write: *mode == AccessMode::Update,
                        blind: *mode == AccessMode::Update && !read_handles.contains(var),
                    }),
                    None => complete = false,
                }
            }
        }
        SymbolicSummary {
            accesses,
            counters,
            complete,
        }
    }
}

/// Every handle register some `GetField` reads through, `Cond` branches
/// included — the complement (update handles never read) is the
/// *value-blind* open population.
pub(crate) fn handles_read(stmts: &[Stmt]) -> std::collections::HashSet<VarId> {
    fn walk(stmts: &[Stmt], out: &mut std::collections::HashSet<VarId>) {
        for s in stmts {
            match s {
                Stmt::GetField { obj, .. } => {
                    out.insert(*obj);
                }
                Stmt::Cond {
                    then_br, else_br, ..
                } => {
                    walk(then_br, out);
                    walk(else_br, out);
                }
                _ => {}
            }
        }
    }
    let mut out = std::collections::HashSet::new();
    walk(stmts, &mut out);
    out
}

/// Does this statement (transitively) contain an `Open`?
fn open_in(s: &Stmt) -> bool {
    match s {
        Stmt::Open { .. } => true,
        Stmt::Cond {
            then_br, else_br, ..
        } => then_br.iter().any(open_in) || else_br.iter().any(open_in),
        _ => false,
    }
}

fn count_nested_sets(stmts: &[Stmt], uses: &mut HashMap<(VarId, FieldId), FieldUse>) {
    for s in stmts {
        match s {
            Stmt::SetField { obj, field, .. } => {
                uses.entry((*obj, *field)).or_default().nested_sets += 1;
            }
            Stmt::Cond {
                then_br, else_br, ..
            } => {
                count_nested_sets(then_br, uses);
                count_nested_sets(else_br, uses);
            }
            _ => {}
        }
    }
}

/// Resolve `value = counter + delta` where `counter` is the register
/// produced by the counter's read. Only constant offsets through
/// `Add`/`Sub`/`Id` chains qualify; anything else (parameter-dependent
/// advances, multiplication, reads of other objects) returns `None`.
fn affine_delta(value: &Operand, counter: VarId, defs: &HashMap<VarId, &Stmt>) -> Option<i64> {
    fn const_int(op: &Operand, defs: &HashMap<VarId, &Stmt>) -> Option<i64> {
        match op {
            Operand::Const(Value::Int(i)) => Some(*i),
            Operand::Var(v) => match defs.get(v) {
                Some(Stmt::Compute {
                    op: ComputeOp::Id,
                    ins,
                    ..
                }) => const_int(ins.first()?, defs),
                _ => None,
            },
            _ => None,
        }
    }
    match value {
        Operand::Var(v) if *v == counter => Some(0),
        Operand::Var(v) => match defs.get(v)? {
            Stmt::Compute {
                op: ComputeOp::Add,
                ins,
                ..
            } => match ins.as_slice() {
                [a, b] => match (
                    affine_delta(a, counter, defs),
                    affine_delta(b, counter, defs),
                ) {
                    (Some(d), None) => Some(d.wrapping_add(const_int(b, defs)?)),
                    (None, Some(d)) => Some(d.wrapping_add(const_int(a, defs)?)),
                    _ => None,
                },
                _ => None,
            },
            Stmt::Compute {
                op: ComputeOp::Sub,
                ins,
                ..
            } => match ins.as_slice() {
                [a, b] => Some(affine_delta(a, counter, defs)?.wrapping_sub(const_int(b, defs)?)),
                _ => None,
            },
            Stmt::Compute {
                op: ComputeOp::Id,
                ins,
                ..
            } => affine_delta(ins.first()?, counter, defs),
            _ => None,
        },
        _ => None,
    }
}

fn resolve_operand(
    op: &Operand,
    defs: &HashMap<VarId, &Stmt>,
    counter_of: &HashMap<VarId, usize>,
    memo: &mut HashMap<VarId, Option<SymExpr>>,
) -> Option<SymExpr> {
    match op {
        Operand::Const(v) => Some(SymExpr::Const(v.clone())),
        Operand::Param(p) => Some(SymExpr::Param(*p)),
        Operand::Var(v) => resolve_var(*v, defs, counter_of, memo),
    }
}

fn resolve_var(
    v: VarId,
    defs: &HashMap<VarId, &Stmt>,
    counter_of: &HashMap<VarId, usize>,
    memo: &mut HashMap<VarId, Option<SymExpr>>,
) -> Option<SymExpr> {
    if let Some(cached) = memo.get(&v) {
        return cached.clone();
    }
    // SSA guarantees def chains are acyclic, so plain recursion terminates.
    let resolved = match defs.get(&v) {
        Some(Stmt::Compute { op, ins, .. }) => ins
            .iter()
            .map(|i| resolve_operand(i, defs, counter_of, memo))
            .collect::<Option<Vec<_>>>()
            .map(|ins| SymExpr::Op(*op, ins)),
        Some(Stmt::GetField { .. }) => counter_of.get(&v).map(|&id| SymExpr::Counter(id)),
        // Open handles are not integers; Cond-local registers are absent
        // from `defs` entirely.
        _ => None,
    };
    memo.insert(v, resolved.clone());
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::object::ObjectId;

    const D: ObjClass = ObjClass::new(0, "District");
    const O: ObjClass = ObjClass::new(1, "Order");
    const A: ObjClass = ObjClass::new(2, "A");
    const NEXT: FieldId = FieldId(2);
    const F: FieldId = FieldId(0);

    /// The NewOrder shape: `oidx = param(1)*1_000_000 + D_NEXT_OID`.
    fn neworder_like() -> Program {
        let mut b = ProgramBuilder::new("t", 2);
        let d = b.open_update(D, b.param(0));
        let oid = b.get(d, NEXT);
        let next = b.add(oid, 1i64);
        b.set(d, NEXT, next);
        let obase = b.compute(ComputeOp::Mul, [b.param(1).into(), 1_000_000i64.into()]);
        let oidx = b.add(obase, oid);
        let ord = b.open_update(O, oidx);
        b.set(ord, F, 7i64);
        b.finish()
    }

    #[test]
    fn counter_chain_resolves_completely() {
        let sym = SymbolicSummary::of(&neworder_like());
        assert!(sym.complete);
        assert_eq!(sym.counters.len(), 1);
        let c = &sym.counters[0];
        assert_eq!(c.class, D);
        assert_eq!(c.field, NEXT);
        assert_eq!(c.delta, 1);
        assert_eq!(c.index, SymExpr::Param(ParamId(0)));
        assert_eq!(sym.accesses.len(), 2);
        assert!(sym.accesses[1].index.uses_counter(0));
        // params = [d=3, w=2], counter predicted at 41 → order 2_000_041.
        let idx = sym.accesses[1]
            .index
            .eval(&[Value::Int(3), Value::Int(2)], &[41])
            .unwrap();
        assert_eq!(idx, Value::Int(2_000_041));
        let host = ObjectId::new(c.class, 3);
        assert_eq!(host.class.id, D.id);
    }

    #[test]
    fn pure_param_chain_resolves_without_counters() {
        let mut b = ProgramBuilder::new("t", 2);
        let x = b.compute(ComputeOp::Mul, [b.param(0).into(), 10i64.into()]);
        let y = b.add(x, b.param(1));
        let _o = b.open_read(A, y);
        let sym = SymbolicSummary::of(&b.finish());
        assert!(sym.complete);
        assert!(sym.counters.is_empty());
        assert_eq!(
            sym.accesses[0]
                .index
                .eval(&[Value::Int(4), Value::Int(2)], &[]),
            Some(Value::Int(42))
        );
    }

    #[test]
    fn pointer_chase_stays_incomplete() {
        // Index flows out of a non-counter field read (two reads of the
        // same field → not a counter).
        let mut b = ProgramBuilder::new("t", 1);
        let a = b.open_read(A, b.param(0));
        let v1 = b.get(a, F);
        let _v2 = b.get(a, F);
        let _o = b.open_read(O, v1);
        let sym = SymbolicSummary::of(&b.finish());
        assert!(!sym.complete);
        assert!(sym.counters.is_empty());
        assert_eq!(sym.accesses.len(), 1, "the static A open still resolves");
    }

    #[test]
    fn non_affine_advance_disqualifies_the_counter() {
        let mut b = ProgramBuilder::new("t", 1);
        let d = b.open_update(D, b.param(0));
        let oid = b.get(d, NEXT);
        let doubled = b.compute(ComputeOp::Mul, [oid.into(), 2i64.into()]);
        b.set(d, NEXT, doubled);
        let _o = b.open_read(O, oid);
        let sym = SymbolicSummary::of(&b.finish());
        assert!(!sym.complete);
        assert!(sym.counters.is_empty());
    }

    #[test]
    fn write_before_read_disqualifies() {
        let mut b = ProgramBuilder::new("t", 1);
        let d = b.open_update(D, b.param(0));
        b.set(d, NEXT, 9i64);
        let oid = b.get(d, NEXT);
        let _o = b.open_read(O, oid);
        let sym = SymbolicSummary::of(&b.finish());
        assert!(!sym.complete, "read after reset is not the stored value");
    }

    #[test]
    fn cond_nested_advance_disqualifies() {
        let mut b = ProgramBuilder::new("t", 1);
        let d = b.open_update(D, b.param(0));
        let oid = b.get(d, NEXT);
        let next = b.add(oid, 1i64);
        let flag = b.compute(ComputeOp::Gt, [oid.into(), 5i64.into()]);
        b.cond(flag, |b| b.set(d, NEXT, next), |_| {});
        let _o = b.open_read(O, oid);
        let sym = SymbolicSummary::of(&b.finish());
        assert!(
            sym.counters.is_empty(),
            "conditional advance is unpredictable"
        );
        assert!(!sym.complete);
    }

    #[test]
    fn nested_open_keeps_summary_incomplete() {
        let mut b = ProgramBuilder::new("t", 1);
        let flag = b.constant(true);
        b.cond(
            flag,
            |b| {
                let o = b.open_update(A, 1i64);
                b.set(o, F, 5i64);
            },
            |_| {},
        );
        let _o = b.open_read(A, b.param(0));
        let sym = SymbolicSummary::of(&b.finish());
        assert!(!sym.complete, "a conditional open may or may not run");
        assert_eq!(sym.accesses.len(), 1);
    }

    #[test]
    fn read_only_counter_has_delta_zero() {
        let mut b = ProgramBuilder::new("t", 1);
        let d = b.open_read(D, b.param(0));
        let oid = b.get(d, NEXT);
        let _o = b.open_read(O, oid);
        let sym = SymbolicSummary::of(&b.finish());
        assert!(sym.complete);
        assert_eq!(sym.counters.len(), 1);
        assert_eq!(sym.counters[0].delta, 0);
    }

    #[test]
    fn sub_advance_yields_negative_delta() {
        let mut b = ProgramBuilder::new("t", 1);
        let d = b.open_update(D, b.param(0));
        let oid = b.get(d, NEXT);
        let next = b.sub(oid, 3i64);
        b.set(d, NEXT, next);
        let _o = b.open_read(O, oid);
        let sym = SymbolicSummary::of(&b.finish());
        assert_eq!(sym.counters.len(), 1);
        assert_eq!(sym.counters[0].delta, -3);
    }

    #[test]
    fn eval_failure_is_none_not_panic() {
        let e = SymExpr::Op(
            ComputeOp::Div,
            vec![SymExpr::Param(ParamId(0)), SymExpr::Const(Value::Int(0))],
        );
        assert_eq!(e.eval(&[Value::Int(1)], &[]), None);
        assert_eq!(SymExpr::Param(ParamId(5)).eval(&[], &[]), None);
        assert_eq!(SymExpr::Counter(2).eval(&[], &[]), None);
    }
}
