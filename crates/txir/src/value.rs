//! Run-time values flowing through transaction-local registers.

use std::fmt;
use std::sync::Arc;

/// A dynamically-typed value. Object fields and transaction registers hold
/// `Value`s, which lets one interpreter serve Bank, Vacation and TPC-C
/// without per-benchmark code generation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// The unit value (uninitialised registers).
    Unit,
    /// A 64-bit signed integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An immutable shared string.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The integer payload, or a type-mismatch error.
    pub fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(EvalError::TypeMismatch {
                expected: "Int",
                got: other.type_name(),
            }),
        }
    }

    /// The boolean payload, or a type-mismatch error.
    pub fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(EvalError::TypeMismatch {
                expected: "Bool",
                got: other.type_name(),
            }),
        }
    }

    /// The string payload, or a type-mismatch error.
    pub fn as_str(&self) -> Result<&str, EvalError> {
        match self {
            Value::Str(v) => Ok(v),
            other => Err(EvalError::TypeMismatch {
                expected: "Str",
                got: other.type_name(),
            }),
        }
    }

    /// Name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "Unit",
            Value::Int(_) => "Int",
            Value::Bool(_) => "Bool",
            Value::Str(_) => "Str",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

/// Errors from evaluating a compute operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An operand had the wrong type.
    TypeMismatch {
        /// The type the operation required.
        expected: &'static str,
        /// The type it was given.
        got: &'static str,
    },
    /// An operation received the wrong number of operands.
    ArityMismatch {
        /// The operation's name.
        op: &'static str,
        /// How many operands it requires.
        expected: usize,
        /// How many it was given.
        got: usize,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            EvalError::ArityMismatch { op, expected, got } => {
                write!(f, "{op} expects {expected} operands, got {got}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::str("x"));
    }

    #[test]
    fn accessors_check_types() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(Value::str("hi").as_str().unwrap(), "hi");
        assert!(matches!(
            Value::Bool(true).as_int(),
            Err(EvalError::TypeMismatch {
                expected: "Int",
                got: "Bool"
            })
        ));
        assert!(Value::Unit.as_bool().is_err());
        assert!(Value::Int(1).as_str().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
    }
}
