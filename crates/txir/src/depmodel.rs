//! The dependency model handed to the run-time Algorithm Module.
//!
//! Produced once per transaction template by the Static Module, it packages
//! the UnitGraph, the UnitBlocks with their default statement assignment,
//! and — for every local statement — the set of UnitBlocks that may host it
//! (Step 1 of the algorithm re-attaches each local operation to the most
//! contended *eligible* host). Graph utilities for lifting statement edges
//! to block edges and for dependency-preserving sorts live here too.

use crate::access::AccessSummary;
use crate::analysis::{
    extract_unit_blocks, prefetchable_opens, PrefetchOpen, UnitBlock, UnitBlockId,
};
use crate::ir::{Program, StmtIdx};
use crate::unitgraph::UnitGraph;
use crate::validate::{validate, ValidateError};
use std::collections::{BTreeSet, HashMap};

/// A statement→UnitBlock assignment (one entry per top-level statement).
pub type StmtAssignment = Vec<UnitBlockId>;

/// Everything the Algorithm Module needs to recompose a transaction.
#[derive(Debug, Clone)]
pub struct DependencyModel {
    /// The analyzed template.
    pub program: Program,
    /// Statement-level dependency graph.
    pub graph: UnitGraph,
    /// UnitBlocks in program (anchor) order.
    pub units: Vec<UnitBlock>,
    /// The static default assignment from [`extract_unit_blocks`].
    pub default_assignment: StmtAssignment,
    /// For every statement, the UnitBlocks allowed to host it. Anchors and
    /// floaters are pinned to their default block; a local operation is
    /// eligible for any block whose open feeds it.
    pub eligible_hosts: Vec<Vec<UnitBlockId>>,
    /// Opens whose target `ObjectId` is known at transaction entry
    /// ([`prefetchable_opens`]) — the executor's batched-read candidates.
    pub prefetch: Vec<PrefetchOpen>,
    /// Static access summary for the batch scheduler, computed once here so
    /// the driver never re-derives it from the template per submission.
    pub access: AccessSummary,
}

impl DependencyModel {
    /// Run the full static pipeline: validate, build the UnitGraph, extract
    /// UnitBlocks and eligibility sets.
    pub fn analyze(program: Program) -> Result<Self, ValidateError> {
        validate(&program)?;
        let graph = UnitGraph::build(&program);
        let (units, default_assignment) = extract_unit_blocks(&program, &graph);
        let block_of_anchor: HashMap<StmtIdx, UnitBlockId> =
            units.iter().map(|u| (u.anchor, u.id)).collect();
        let src_opens = graph.source_opens(&program);

        let eligible_hosts: Vec<Vec<UnitBlockId>> = (0..program.stmts.len())
            .map(|i| {
                let info = &graph.stmts[i];
                if info.is_open() {
                    return vec![default_assignment[i]];
                }
                let mut managed: BTreeSet<StmtIdx> = BTreeSet::new();
                for u in &info.uses {
                    if let Some(os) = src_opens.get(u) {
                        managed.extend(os.iter().copied());
                    }
                }
                if managed.is_empty() {
                    vec![default_assignment[i]]
                } else {
                    let mut hosts: Vec<UnitBlockId> = managed
                        .into_iter()
                        .filter_map(|a| block_of_anchor.get(&a).copied())
                        .collect();
                    // The default host can sit past every managed open when
                    // a dependency forced a bump (see extract_unit_blocks);
                    // it is always a legal host, so keep it eligible.
                    if !hosts.contains(&default_assignment[i]) {
                        hosts.push(default_assignment[i]);
                        hosts.sort_unstable();
                    }
                    hosts
                }
            })
            .collect();

        let prefetch = prefetchable_opens(&program);
        let access = AccessSummary::of(&program);
        Ok(DependencyModel {
            program,
            graph,
            units,
            default_assignment,
            eligible_hosts,
            prefetch,
            access,
        })
    }

    /// Number of UnitBlocks in the template.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Block-level edges under the default assignment.
    pub fn default_unit_edges(&self) -> BTreeSet<(UnitBlockId, UnitBlockId)> {
        lift_edges(&self.graph, &self.default_assignment)
    }

    /// Annotated listing of the template: one line per statement with the
    /// UnitBlock hosting it and its eligible hosts — the quickest way to
    /// see what the static analysis decided.
    ///
    /// ```text
    /// program bank/transfer (4 units)
    ///   u0* [0]     Open { var: v0, class: Branch, … }
    ///   u0  [0]     GetField { … }
    /// ```
    /// (`*` marks the block's anchor; `[…]` lists eligible hosts.)
    pub fn pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "program {} ({} units)",
            self.program.name,
            self.unit_count()
        );
        let anchors: std::collections::HashSet<StmtIdx> =
            self.units.iter().map(|u| u.anchor).collect();
        for (i, stmt) in self.program.stmts.iter().enumerate() {
            let unit = self.default_assignment[i];
            let mark = if anchors.contains(&i) { '*' } else { ' ' };
            let hosts: Vec<String> = self.eligible_hosts[i]
                .iter()
                .map(|h| h.to_string())
                .collect();
            let _ = writeln!(out, "  u{unit}{mark} [{}]	{stmt:?}", hosts.join(","));
        }
        out
    }
}

/// Lift statement-level dependency edges to UnitBlock-level edges under a
/// given assignment. Self-edges are dropped: ordering *within* a block is
/// the executor's job (it runs the block's statements in program order).
pub fn lift_edges(
    graph: &UnitGraph,
    assignment: &StmtAssignment,
) -> BTreeSet<(UnitBlockId, UnitBlockId)> {
    let mut out = BTreeSet::new();
    for &(a, b) in &graph.edges {
        let (ua, ub) = (assignment[a], assignment[b]);
        if ua != ub {
            out.insert((ua, ub));
        }
    }
    out
}

/// Is the block-level graph acyclic? Used by Step 1 to reject a host
/// re-attachment that would deadlock the ordering.
pub fn is_acyclic(n_units: usize, edges: &BTreeSet<(UnitBlockId, UnitBlockId)>) -> bool {
    topo_order_preserving(n_units, edges, |u| u as f64).is_some()
}

/// Dependency-preserving sort: emit blocks so that every edge `(u, v)` has
/// `u` before `v`, choosing among currently-available blocks the one with
/// the smallest `key` (ties broken by block id for determinism).
///
/// With `key = contention level` this is exactly Step 3: "starting from the
/// lowest contention level, each Block is shifted such that all the Blocks
/// executing before it have lower contention levels, while preserving the
/// data dependency" — hot blocks end up as close to the commit phase as the
/// dependencies allow. Returns `None` if the edges contain a cycle.
pub fn topo_order_preserving(
    n_units: usize,
    edges: &BTreeSet<(UnitBlockId, UnitBlockId)>,
    key: impl Fn(UnitBlockId) -> f64,
) -> Option<Vec<UnitBlockId>> {
    let mut indegree = vec![0usize; n_units];
    let mut succs: Vec<Vec<UnitBlockId>> = vec![Vec::new(); n_units];
    for &(a, b) in edges {
        debug_assert!(a < n_units && b < n_units);
        indegree[b] += 1;
        succs[a].push(b);
    }
    let mut avail: Vec<UnitBlockId> = (0..n_units).filter(|&u| indegree[u] == 0).collect();
    let mut out = Vec::with_capacity(n_units);
    while !avail.is_empty() {
        // Pick the available block with the smallest key.
        let (pos, _) = avail
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                key(a)
                    .partial_cmp(&key(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .expect("non-empty");
        let u = avail.swap_remove(pos);
        out.push(u);
        for &v in &succs[u] {
            indegree[v] -= 1;
            if indegree[v] == 0 {
                avail.push(v);
            }
        }
    }
    if out.len() == n_units {
        Some(out)
    } else {
        None // cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::object::{FieldId, ObjClass};

    const A: ObjClass = ObjClass::new(0, "A");
    const B: ObjClass = ObjClass::new(1, "B");
    const F: FieldId = FieldId(0);

    /// T = {Read(OA), Read(OB), var = OA + OB}: static analysis yields two
    /// blocks with BL1 → BL2 (the paper's end-of-§V-C1 example).
    fn two_block_model() -> DependencyModel {
        let mut b = ProgramBuilder::new("t", 0);
        let oa = b.open_read(A, 0i64);
        let ob = b.open_read(B, 0i64);
        let va = b.get(oa, F);
        let vb = b.get(ob, F);
        let _c = b.add(va, vb);
        DependencyModel::analyze(b.finish()).unwrap()
    }

    #[test]
    fn default_edges_capture_cross_block_flow() {
        let m = two_block_model();
        assert_eq!(m.unit_count(), 2);
        // var = OA + OB sits in block 1 and reads block 0's GetField.
        assert_eq!(m.default_unit_edges(), BTreeSet::from([(0, 1)]));
    }

    #[test]
    fn eligibility_allows_reattachment() {
        let m = two_block_model();
        // stmt 4 (var = OA+OB) is eligible for both blocks — that is what
        // lets Step 1 move it into BL1 so BL2 can be shifted before BL1.
        assert_eq!(m.eligible_hosts[4], vec![0, 1]);
        // Anchors are pinned.
        assert_eq!(m.eligible_hosts[0], vec![0]);
        assert_eq!(m.eligible_hosts[1], vec![1]);
        // GetFields are single-source.
        assert_eq!(m.eligible_hosts[2], vec![0]);
        assert_eq!(m.eligible_hosts[3], vec![1]);
    }

    #[test]
    fn reattaching_changes_lifted_edges() {
        let m = two_block_model();
        // Move stmt 4 into block 0: now block 0 depends on block 1.
        let mut asg = m.default_assignment.clone();
        asg[4] = 0;
        let edges = lift_edges(&m.graph, &asg);
        assert_eq!(edges, BTreeSet::from([(1, 0)]));
        assert!(is_acyclic(2, &edges));
    }

    #[test]
    fn topo_sort_respects_edges_and_keys() {
        // 4 blocks, edges 0→1; keys favour 3, 2, 1, 0.
        let edges = BTreeSet::from([(0, 1)]);
        let order = topo_order_preserving(4, &edges, |u| -(u as f64)).expect("acyclic");
        // 3 and 2 have the smallest keys and no constraints; 0 must precede 1.
        assert_eq!(order, vec![3, 2, 0, 1]);
    }

    #[test]
    fn topo_sort_detects_cycles() {
        let edges = BTreeSet::from([(0, 1), (1, 0)]);
        assert!(topo_order_preserving(2, &edges, |u| u as f64).is_none());
        assert!(!is_acyclic(2, &edges));
    }

    #[test]
    fn topo_sort_stable_on_ties() {
        let edges = BTreeSet::new();
        let order = topo_order_preserving(3, &edges, |_| 1.0).unwrap();
        assert_eq!(order, vec![0, 1, 2], "ties broken by id");
    }

    #[test]
    fn empty_graph_sorts_empty() {
        let edges = BTreeSet::new();
        assert_eq!(topo_order_preserving(0, &edges, |u| u as f64), Some(vec![]));
    }

    #[test]
    fn analyze_records_prefetchable_opens() {
        let m = two_block_model();
        // Both opens use Const indices → both are batched-read candidates.
        assert_eq!(m.prefetch.len(), 2);
        assert_eq!(m.prefetch[0].stmt, 0);
        assert_eq!(m.prefetch[1].stmt, 1);
    }

    #[test]
    fn analyze_rejects_invalid_programs() {
        use crate::ir::{ComputeOp, Operand, Stmt, VarId};
        let p = Program {
            name: "bad".into(),
            params: 0,
            vars: 1,
            stmts: vec![Stmt::Compute {
                out: VarId(0),
                op: ComputeOp::Id,
                ins: vec![Operand::Var(VarId(0))],
            }],
        };
        assert!(DependencyModel::analyze(p).is_err());
    }

    #[test]
    fn pretty_lists_every_statement_with_hosts() {
        let m = two_block_model();
        let p = m.pretty();
        assert!(p.starts_with("program t (2 units)"));
        assert_eq!(p.lines().count(), 1 + m.program.stmts.len());
        assert!(p.contains("u0*"), "anchor marked: {p}");
        assert!(p.contains("[0,1]"), "multi-host eligibility shown: {p}");
    }

    #[test]
    fn lifted_edges_have_no_self_loops() {
        let m = two_block_model();
        for &(a, b) in &m.default_unit_edges() {
            assert_ne!(a, b);
        }
    }
}
