//! Shared-object identity and payloads.

use crate::value::Value;
use std::fmt;

/// A class of shared objects (Branch, Account, District, …).
///
/// Contention monitoring aggregates per class: when the paper says "QR-ACN
/// determines the heavily contended objects (*District* in this case)", the
/// run-time decision is made at class granularity because a transaction
/// *template* does not know which concrete District a future instance will
/// touch. Identity is the numeric id; the name is carried for diagnostics.
#[derive(Clone, Copy)]
pub struct ObjClass {
    /// Identity (contention is aggregated per class id).
    pub id: u16,
    /// Human-readable name for diagnostics.
    pub name: &'static str,
}

impl ObjClass {
    /// Define a class constant.
    pub const fn new(id: u16, name: &'static str) -> Self {
        ObjClass { id, name }
    }
}

impl PartialEq for ObjClass {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for ObjClass {}

impl std::hash::Hash for ObjClass {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialOrd for ObjClass {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ObjClass {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.id.cmp(&other.id)
    }
}

impl fmt::Debug for ObjClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl fmt::Display for ObjClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Identity of one shared object: class plus index within the class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// The class this object belongs to.
    pub class: ObjClass,
    /// Index within the class.
    pub index: u64,
}

impl ObjectId {
    /// Identify object `index` of `class`.
    pub const fn new(class: ObjClass, index: u64) -> Self {
        ObjectId { class, index }
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.class, self.index)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.class, self.index)
    }
}

/// A field within an object. Workloads define constants per class schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u16);

/// An object's payload: a small field map, kept sorted by [`FieldId`].
///
/// Objects in the benchmarks have a handful of fields, so a sorted vector
/// with binary search beats a hash map on both footprint and clone cost —
/// and object values are cloned on every remote fetch and every closed-
/// nested overlay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObjectVal {
    fields: Vec<(FieldId, Value)>,
}

impl ObjectVal {
    /// An empty payload (fresh objects).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from unsorted field pairs; later duplicates win.
    pub fn from_fields(pairs: impl IntoIterator<Item = (FieldId, Value)>) -> Self {
        let mut v = ObjectVal::new();
        for (f, val) in pairs {
            v.set(f, val);
        }
        v
    }

    /// Read a field, `None` when absent.
    pub fn get(&self, field: FieldId) -> Option<&Value> {
        self.fields
            .binary_search_by_key(&field, |(f, _)| *f)
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// Read a field, defaulting missing fields to `Value::Int(0)` — fresh
    /// objects materialise zeroed, matching how the benchmarks initialise
    /// counters lazily.
    pub fn get_or_zero(&self, field: FieldId) -> Value {
        self.get(field).cloned().unwrap_or(Value::Int(0))
    }

    /// Write (or insert) a field.
    pub fn set(&mut self, field: FieldId, value: Value) {
        match self.fields.binary_search_by_key(&field, |(f, _)| *f) {
            Ok(i) => self.fields[i].1 = value,
            Err(i) => self.fields.insert(i, (field, value)),
        }
    }

    /// Number of populated fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when no field is populated.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate fields in ascending [`FieldId`] order.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &Value)> {
        self.fields.iter().map(|(f, v)| (*f, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BRANCH: ObjClass = ObjClass::new(0, "Branch");
    const ACCOUNT: ObjClass = ObjClass::new(1, "Account");

    #[test]
    fn class_identity_is_by_id() {
        let other_branch = ObjClass::new(0, "Alias");
        assert_eq!(BRANCH, other_branch);
        assert_ne!(BRANCH, ACCOUNT);
    }

    #[test]
    fn object_id_display() {
        assert_eq!(ObjectId::new(BRANCH, 7).to_string(), "Branch#7");
    }

    #[test]
    fn field_map_set_get() {
        let mut v = ObjectVal::new();
        assert!(v.get(FieldId(1)).is_none());
        v.set(FieldId(1), Value::Int(10));
        v.set(FieldId(0), Value::Int(5));
        v.set(FieldId(1), Value::Int(20)); // overwrite
        assert_eq!(v.get(FieldId(1)), Some(&Value::Int(20)));
        assert_eq!(v.get(FieldId(0)), Some(&Value::Int(5)));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn fields_stay_sorted() {
        let v = ObjectVal::from_fields([
            (FieldId(5), Value::Int(5)),
            (FieldId(1), Value::Int(1)),
            (FieldId(3), Value::Int(3)),
        ]);
        let order: Vec<u16> = v.iter().map(|(f, _)| f.0).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn get_or_zero_defaults() {
        let v = ObjectVal::new();
        assert_eq!(v.get_or_zero(FieldId(9)), Value::Int(0));
    }

    #[test]
    fn from_fields_later_duplicate_wins() {
        let v = ObjectVal::from_fields([(FieldId(2), Value::Int(1)), (FieldId(2), Value::Int(9))]);
        assert_eq!(v.get(FieldId(2)), Some(&Value::Int(9)));
        assert_eq!(v.len(), 1);
    }
}
