//! Static access-set export for the batch scheduler.
//!
//! The conflict-graph scheduler needs, per transaction template, the set of
//! objects an instance will read and write — *before* the instance runs.
//! Top-level opens whose index operand is a `Const` or `Param` are exactly
//! the [`crate::analysis::prefetchable_opens`] population: their concrete
//! [`ObjectId`] is computable from the parameter vector alone. Register
//! -indexed opens (pointer chases) and `Cond`-nested opens are not — for
//! those the summary only records the *classes* that may be touched and
//! clears the [`AccessSummary::exact`] flag, telling the scheduler to fall
//! back to pessimistic class-level conflict edges.

use crate::ir::{AccessMode, Operand, Program, Stmt};
use crate::object::{ObjClass, ObjectId};
use crate::value::Value;

/// One top-level open whose target object is statically resolvable.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticAccess {
    /// Class of the object the open targets.
    pub class: ObjClass,
    /// The statically known index operand (`Const` or `Param`).
    pub index: Operand,
    /// `true` for `Update` opens (write intent), `false` for reads.
    pub write: bool,
}

/// Per-template access summary: the statically resolvable opens plus a
/// class-level over-approximation of everything else.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessSummary {
    /// Statically resolvable top-level opens, in statement order.
    pub accesses: Vec<StaticAccess>,
    /// Every class the template may read (including `Cond`-nested and
    /// register-indexed opens), in id order. Updates count as reads too.
    pub read_classes: Vec<ObjClass>,
    /// Every class the template may write, in id order.
    pub write_classes: Vec<ObjClass>,
    /// `true` iff every open in the template is a top-level `Const`/`Param`
    /// -indexed open — i.e. [`AccessSummary::resolve`] yields the *complete*
    /// read/write sets of any instance. When `false` the resolved sets are
    /// a lower bound and the class sets are the sound upper bound.
    pub exact: bool,
}

/// Concrete read/write object sets of one transaction instance, plus the
/// class-level fallback information the scheduler needs when the static
/// sets are incomplete.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedAccess {
    /// Objects the instance reads (updates included), sorted and deduped.
    pub reads: Vec<ObjectId>,
    /// Objects the instance writes, sorted and deduped.
    pub writes: Vec<ObjectId>,
    /// Class ids the instance may read (template-level upper bound).
    pub read_classes: Vec<u16>,
    /// Class ids the instance may write (template-level upper bound).
    pub write_classes: Vec<u16>,
    /// Copied from [`AccessSummary::exact`]: when `false`, `reads`/`writes`
    /// under-approximate and conflict detection must use the class sets.
    pub exact: bool,
}

impl AccessSummary {
    /// Summarize a template. Mirrors the executor's prefetch rule: only
    /// top-level non-`Var`-indexed opens resolve statically; everything
    /// else degrades the summary to class level.
    pub fn of(program: &Program) -> Self {
        let mut accesses = Vec::new();
        let mut read_classes: Vec<ObjClass> = Vec::new();
        let mut write_classes: Vec<ObjClass> = Vec::new();
        let mut exact = true;
        fn touch(set: &mut Vec<ObjClass>, class: ObjClass) {
            if !set.iter().any(|c| c.id == class.id) {
                set.push(class);
            }
        }
        fn walk(
            stmts: &[Stmt],
            nested: bool,
            accesses: &mut Vec<StaticAccess>,
            read_classes: &mut Vec<ObjClass>,
            write_classes: &mut Vec<ObjClass>,
            exact: &mut bool,
        ) {
            for s in stmts {
                match s {
                    Stmt::Open {
                        class, index, mode, ..
                    } => {
                        let write = *mode == AccessMode::Update;
                        touch(read_classes, *class);
                        if write {
                            touch(write_classes, *class);
                        }
                        if nested || matches!(index, Operand::Var(_)) {
                            // Data-dependent target: unresolvable before
                            // execution → class-level pessimism.
                            *exact = false;
                        } else {
                            accesses.push(StaticAccess {
                                class: *class,
                                index: index.clone(),
                                write,
                            });
                        }
                    }
                    Stmt::Cond {
                        then_br, else_br, ..
                    } => {
                        walk(then_br, true, accesses, read_classes, write_classes, exact);
                        walk(else_br, true, accesses, read_classes, write_classes, exact);
                    }
                    _ => {}
                }
            }
        }
        walk(
            &program.stmts,
            false,
            &mut accesses,
            &mut read_classes,
            &mut write_classes,
            &mut exact,
        );
        read_classes.sort_by_key(|c| c.id);
        write_classes.sort_by_key(|c| c.id);
        AccessSummary {
            accesses,
            read_classes,
            write_classes,
            exact,
        }
    }

    /// Resolve the static accesses of one instance under `params`. An
    /// operand that fails to evaluate (mistyped parameter) is skipped —
    /// the `Open` itself surfaces the error at execution time, and the
    /// summary soundly degrades to inexact for this instance.
    pub fn resolve(&self, params: &[Value]) -> ResolvedAccess {
        let mut reads = Vec::with_capacity(self.accesses.len());
        let mut writes = Vec::new();
        let mut exact = self.exact;
        for a in &self.accesses {
            let idx = match &a.index {
                Operand::Const(v) => v.as_int(),
                Operand::Param(p) => match params.get(p.0 as usize) {
                    Some(v) => v.as_int(),
                    None => {
                        exact = false;
                        continue;
                    }
                },
                Operand::Var(_) => unreachable!("static accesses never use registers"),
            };
            match idx {
                Ok(i) => {
                    let obj = ObjectId::new(a.class, i as u64);
                    reads.push(obj);
                    if a.write {
                        writes.push(obj);
                    }
                }
                Err(_) => exact = false,
            }
        }
        reads.sort_unstable();
        reads.dedup();
        writes.sort_unstable();
        writes.dedup();
        ResolvedAccess {
            reads,
            writes,
            read_classes: self.read_classes.iter().map(|c| c.id).collect(),
            write_classes: self.write_classes.iter().map(|c| c.id).collect(),
            exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::object::FieldId;

    const A: ObjClass = ObjClass::new(0, "A");
    const B: ObjClass = ObjClass::new(1, "B");
    const C: ObjClass = ObjClass::new(2, "C");
    const F: FieldId = FieldId(0);

    #[test]
    fn fully_static_template_is_exact() {
        let mut b = ProgramBuilder::new("t", 2);
        let oa = b.open_update(A, b.param(0));
        let ob = b.open_read(B, b.param(1));
        let va = b.get(oa, F);
        let vb = b.get(ob, F);
        let s = b.add(va, vb);
        b.set(oa, F, s);
        let sum = AccessSummary::of(&b.finish());
        assert!(sum.exact);
        assert_eq!(sum.accesses.len(), 2);
        assert_eq!(sum.read_classes, vec![A, B]);
        assert_eq!(sum.write_classes, vec![A]);

        let r = sum.resolve(&[Value::Int(7), Value::Int(9)]);
        assert!(r.exact);
        assert_eq!(r.reads, vec![ObjectId::new(A, 7), ObjectId::new(B, 9)]);
        assert_eq!(r.writes, vec![ObjectId::new(A, 7)]);
        assert_eq!(r.read_classes, vec![0, 1]);
        assert_eq!(r.write_classes, vec![0]);
    }

    #[test]
    fn var_indexed_open_degrades_to_class_level() {
        let mut b = ProgramBuilder::new("t", 1);
        let oa = b.open_read(A, b.param(0));
        let va = b.get(oa, F);
        let oc = b.open_update(C, va); // pointer chase
        b.set(oc, F, 1i64);
        let sum = AccessSummary::of(&b.finish());
        assert!(!sum.exact, "register-indexed open is data-dependent");
        // The static part still carries the resolvable A open.
        assert_eq!(sum.accesses.len(), 1);
        assert_eq!(sum.accesses[0].class, A);
        assert_eq!(sum.read_classes, vec![A, C]);
        assert_eq!(sum.write_classes, vec![C]);
        let r = sum.resolve(&[Value::Int(3)]);
        assert!(!r.exact);
        assert_eq!(r.reads, vec![ObjectId::new(A, 3)]);
        assert!(r.writes.is_empty());
    }

    #[test]
    fn cond_nested_open_degrades_but_records_classes() {
        let mut b = ProgramBuilder::new("t", 0);
        let flag = b.constant(true);
        b.cond(
            flag,
            |b| {
                let o = b.open_update(B, 1i64);
                b.set(o, F, 5i64);
            },
            |_| {},
        );
        let _oa = b.open_read(A, 2i64);
        let sum = AccessSummary::of(&b.finish());
        assert!(!sum.exact, "conditional open may or may not run");
        assert_eq!(sum.accesses.len(), 1, "only the top-level open resolves");
        assert_eq!(sum.read_classes, vec![A, B]);
        assert_eq!(sum.write_classes, vec![B]);
    }

    #[test]
    fn duplicate_targets_dedup() {
        let mut b = ProgramBuilder::new("t", 1);
        let o1 = b.open_update(A, b.param(0));
        let o2 = b.open_read(A, b.param(0));
        let v = b.get(o2, F);
        b.set(o1, F, v);
        let sum = AccessSummary::of(&b.finish());
        let r = sum.resolve(&[Value::Int(4)]);
        assert_eq!(r.reads, vec![ObjectId::new(A, 4)]);
        assert_eq!(r.writes, vec![ObjectId::new(A, 4)]);
    }

    #[test]
    fn missing_param_degrades_instead_of_panicking() {
        let mut b = ProgramBuilder::new("t", 2);
        let _oa = b.open_read(A, b.param(1));
        let sum = AccessSummary::of(&b.finish());
        let r = sum.resolve(&[Value::Int(1)]); // param 1 absent
        assert!(!r.exact);
        assert!(r.reads.is_empty());
    }
}
