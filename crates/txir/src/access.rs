//! Static access-set export for the batch scheduler.
//!
//! The conflict-graph scheduler needs, per transaction template, the set of
//! objects an instance will read and write — *before* the instance runs.
//! Top-level opens whose index operand is a `Const` or `Param` are exactly
//! the [`crate::analysis::prefetchable_opens`] population: their concrete
//! [`ObjectId`] is computable from the parameter vector alone. Register
//! -indexed opens (pointer chases) and `Cond`-nested opens are not — for
//! those the summary only records the *classes* that may be touched and
//! clears the [`AccessSummary::exact`] flag, telling the scheduler to fall
//! back to pessimistic class-level conflict edges.

use crate::ir::{AccessMode, Operand, Program, Stmt};
use crate::object::{FieldId, ObjClass, ObjectId};
use crate::symbolic::SymbolicSummary;
use crate::value::Value;

/// One top-level open whose target object is statically resolvable.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticAccess {
    /// Class of the object the open targets.
    pub class: ObjClass,
    /// The statically known index operand (`Const` or `Param`).
    pub index: Operand,
    /// `true` for `Update` opens (write intent), `false` for reads.
    pub write: bool,
    /// `true` for value-blind `Update` opens (no field of the handle is
    /// ever read) — see [`ResolvedAccess::blind`].
    pub blind: bool,
}

/// Per-template access summary: the statically resolvable opens plus a
/// class-level over-approximation of everything else.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessSummary {
    /// Statically resolvable top-level opens, in statement order.
    pub accesses: Vec<StaticAccess>,
    /// Every class the template may read (including `Cond`-nested and
    /// register-indexed opens), in id order. Updates count as reads too.
    pub read_classes: Vec<ObjClass>,
    /// Every class the template may write, in id order.
    pub write_classes: Vec<ObjClass>,
    /// `true` iff every open in the template is a top-level `Const`/`Param`
    /// -indexed open — i.e. [`AccessSummary::resolve`] yields the *complete*
    /// read/write sets of any instance. When `false` the resolved sets are
    /// a lower bound and the class sets are the sound upper bound.
    pub exact: bool,
    /// Symbolic view of the same opens, covering `Var`-indexed ones whose
    /// index is a pure `Compute` chain over params and hot-counter reads —
    /// the input to [`AccessSummary::resolve_with`].
    pub symbolic: SymbolicSummary,
}

/// A hot-counter read an instance is about to perform, as presented to a
/// [`CounterOracle`] for prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSite {
    /// The counter's host object (index already resolved under the
    /// instance's parameters).
    pub obj: ObjectId,
    /// The counter field.
    pub field: FieldId,
    /// How much this instance will advance the counter (0 = read-only).
    pub delta: i64,
}

/// Predicts the value a hot-counter read will observe. A `Some(v)` answer
/// must also advance the oracle's own cursor by `site.delta`, so that the
/// next instance of the same wave predicts `v + delta`. Returning `None`
/// soundly degrades the instance to inexact.
pub trait CounterOracle {
    /// Predict the value `site` will read, advancing the internal cursor.
    fn predict(&mut self, site: &CounterSite) -> Option<i64>;
}

/// One counter read whose value was predicted rather than known: the
/// executor validates `obj.field == value` at the real read and repairs
/// the transaction (partial rollback + re-read) on mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictedRead {
    /// The counter's host object.
    pub obj: ObjectId,
    /// The counter field.
    pub field: FieldId,
    /// The value the scheduler assumed this instance reads.
    pub value: i64,
    /// The advance the instance applies — feedback uses `observed + delta`
    /// to re-seed the predictor after a mispredict.
    pub delta: i64,
}

/// Concrete read/write object sets of one transaction instance, plus the
/// class-level fallback information the scheduler needs when the static
/// sets are incomplete.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedAccess {
    /// Objects the instance reads (updates included), sorted and deduped.
    pub reads: Vec<ObjectId>,
    /// Objects the instance writes, sorted and deduped.
    pub writes: Vec<ObjectId>,
    /// Class ids the instance may read (template-level upper bound).
    pub read_classes: Vec<u16>,
    /// Class ids the instance may write (template-level upper bound).
    pub write_classes: Vec<u16>,
    /// Copied from [`AccessSummary::exact`]: when `false`, `reads`/`writes`
    /// under-approximate and conflict detection must use the class sets.
    /// [`AccessSummary::resolve_with`] also sets it for *predicted-exact*
    /// instances, whose `predicted` list is then non-empty.
    pub exact: bool,
    /// Counter reads whose values the sets above assume. Empty for truly
    /// static instances; non-empty means the sets are exact *iff* every
    /// prediction validates at execution time.
    pub predicted: Vec<PredictedRead>,
    /// The *value-blind* subset of `writes` (sorted, deduped): objects the
    /// instance updates without ever reading a field — insert-only rows.
    /// Execution may open them without a remote fetch by presuming a fresh
    /// `(version 0, default)` copy; commit validation rejects the
    /// presumption if the object in fact exists, so the shortcut is sound.
    /// An object is only listed when *every* open of it is blind.
    pub blind: Vec<ObjectId>,
}

impl AccessSummary {
    /// Summarize a template. Mirrors the executor's prefetch rule: only
    /// top-level non-`Var`-indexed opens resolve statically; everything
    /// else degrades the summary to class level.
    pub fn of(program: &Program) -> Self {
        let mut accesses = Vec::new();
        let mut read_classes: Vec<ObjClass> = Vec::new();
        let mut write_classes: Vec<ObjClass> = Vec::new();
        let mut exact = true;
        fn touch(set: &mut Vec<ObjClass>, class: ObjClass) {
            if !set.iter().any(|c| c.id == class.id) {
                set.push(class);
            }
        }
        let read_handles = crate::symbolic::handles_read(&program.stmts);
        #[allow(clippy::too_many_arguments)]
        fn walk(
            stmts: &[Stmt],
            nested: bool,
            read_handles: &std::collections::HashSet<crate::ir::VarId>,
            accesses: &mut Vec<StaticAccess>,
            read_classes: &mut Vec<ObjClass>,
            write_classes: &mut Vec<ObjClass>,
            exact: &mut bool,
        ) {
            for s in stmts {
                match s {
                    Stmt::Open {
                        var,
                        class,
                        index,
                        mode,
                    } => {
                        let write = *mode == AccessMode::Update;
                        touch(read_classes, *class);
                        if write {
                            touch(write_classes, *class);
                        }
                        if nested || matches!(index, Operand::Var(_)) {
                            // Data-dependent target: unresolvable before
                            // execution → class-level pessimism.
                            *exact = false;
                        } else {
                            accesses.push(StaticAccess {
                                class: *class,
                                index: index.clone(),
                                write,
                                blind: write && !read_handles.contains(var),
                            });
                        }
                    }
                    Stmt::Cond {
                        then_br, else_br, ..
                    } => {
                        walk(
                            then_br,
                            true,
                            read_handles,
                            accesses,
                            read_classes,
                            write_classes,
                            exact,
                        );
                        walk(
                            else_br,
                            true,
                            read_handles,
                            accesses,
                            read_classes,
                            write_classes,
                            exact,
                        );
                    }
                    _ => {}
                }
            }
        }
        walk(
            &program.stmts,
            false,
            &read_handles,
            &mut accesses,
            &mut read_classes,
            &mut write_classes,
            &mut exact,
        );
        read_classes.sort_by_key(|c| c.id);
        write_classes.sort_by_key(|c| c.id);
        AccessSummary {
            accesses,
            read_classes,
            write_classes,
            exact,
            symbolic: SymbolicSummary::of(program),
        }
    }

    /// Resolve the static accesses of one instance under `params`. An
    /// operand that fails to evaluate (mistyped parameter) is skipped —
    /// the `Open` itself surfaces the error at execution time, and the
    /// summary soundly degrades to inexact for this instance.
    pub fn resolve(&self, params: &[Value]) -> ResolvedAccess {
        let mut reads = Vec::with_capacity(self.accesses.len());
        let mut writes = Vec::new();
        let mut blind = Vec::new();
        let mut valued = Vec::new();
        let mut exact = self.exact;
        for a in &self.accesses {
            let idx = match &a.index {
                Operand::Const(v) => v.as_int(),
                Operand::Param(p) => match params.get(p.0 as usize) {
                    Some(v) => v.as_int(),
                    None => {
                        exact = false;
                        continue;
                    }
                },
                Operand::Var(_) => unreachable!("static accesses never use registers"),
            };
            match idx {
                Ok(i) => {
                    let obj = ObjectId::new(a.class, i as u64);
                    reads.push(obj);
                    if a.write {
                        writes.push(obj);
                    }
                    if a.blind {
                        blind.push(obj);
                    } else {
                        valued.push(obj);
                    }
                }
                Err(_) => exact = false,
            }
        }
        reads.sort_unstable();
        reads.dedup();
        writes.sort_unstable();
        writes.dedup();
        ResolvedAccess {
            reads,
            writes,
            read_classes: self.read_classes.iter().map(|c| c.id).collect(),
            write_classes: self.write_classes.iter().map(|c| c.id).collect(),
            exact,
            predicted: Vec::new(),
            blind: blind_only(blind, valued),
        }
    }

    /// Resolve one instance's access sets, upgrading `Var`-indexed opens
    /// through the symbolic summary: pure `Compute` chains over params
    /// evaluate directly, counter-dependent chains evaluate against the
    /// oracle's predictions. On success the instance is *predicted-exact*
    /// (`exact == true`, `predicted` lists the assumptions to validate);
    /// any unresolvable piece falls back to [`AccessSummary::resolve`]'s
    /// sound inexact result.
    pub fn resolve_with(&self, params: &[Value], oracle: &mut dyn CounterOracle) -> ResolvedAccess {
        let base = self.resolve(params);
        if base.exact || !self.symbolic.complete {
            return base;
        }
        // Predict every counter site up front — expressions may share them.
        let mut counter_vals = Vec::with_capacity(self.symbolic.counters.len());
        let mut predicted = Vec::new();
        for (id, c) in self.symbolic.counters.iter().enumerate() {
            let idx = match c.index.eval(params, &[]).map(|v| v.as_int()) {
                Some(Ok(i)) => i,
                _ => return base,
            };
            let site = CounterSite {
                obj: ObjectId::new(c.class, idx as u64),
                field: c.field,
                delta: c.delta,
            };
            let Some(value) = oracle.predict(&site) else {
                return base;
            };
            counter_vals.push(value);
            // Only counters an index actually depends on need run-time
            // validation; unused ones cannot skew the schedule.
            if self
                .symbolic
                .accesses
                .iter()
                .any(|a| a.index.uses_counter(id))
            {
                predicted.push(PredictedRead {
                    obj: site.obj,
                    field: site.field,
                    value,
                    delta: site.delta,
                });
            }
        }
        let mut reads = Vec::with_capacity(self.symbolic.accesses.len());
        let mut writes = Vec::new();
        let mut blind = Vec::new();
        let mut valued = Vec::new();
        for a in &self.symbolic.accesses {
            let idx = match a.index.eval(params, &counter_vals).map(|v| v.as_int()) {
                Some(Ok(i)) => i,
                _ => return base,
            };
            let obj = ObjectId::new(a.class, idx as u64);
            reads.push(obj);
            if a.write {
                writes.push(obj);
            }
            if a.blind {
                blind.push(obj);
            } else {
                valued.push(obj);
            }
        }
        reads.sort_unstable();
        reads.dedup();
        writes.sort_unstable();
        writes.dedup();
        ResolvedAccess {
            reads,
            writes,
            read_classes: self.read_classes.iter().map(|c| c.id).collect(),
            write_classes: self.write_classes.iter().map(|c| c.id).collect(),
            exact: true,
            predicted,
            blind: blind_only(blind, valued),
        }
    }
}

/// Keep only the objects *every* open of which was blind: an object also
/// opened with a value-reading handle needs its real copy regardless.
fn blind_only(mut blind: Vec<ObjectId>, mut valued: Vec<ObjectId>) -> Vec<ObjectId> {
    blind.sort_unstable();
    blind.dedup();
    valued.sort_unstable();
    blind.retain(|o| valued.binary_search(o).is_err());
    blind
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::object::FieldId;

    const A: ObjClass = ObjClass::new(0, "A");
    const B: ObjClass = ObjClass::new(1, "B");
    const C: ObjClass = ObjClass::new(2, "C");
    const F: FieldId = FieldId(0);

    #[test]
    fn fully_static_template_is_exact() {
        let mut b = ProgramBuilder::new("t", 2);
        let oa = b.open_update(A, b.param(0));
        let ob = b.open_read(B, b.param(1));
        let va = b.get(oa, F);
        let vb = b.get(ob, F);
        let s = b.add(va, vb);
        b.set(oa, F, s);
        let sum = AccessSummary::of(&b.finish());
        assert!(sum.exact);
        assert_eq!(sum.accesses.len(), 2);
        assert_eq!(sum.read_classes, vec![A, B]);
        assert_eq!(sum.write_classes, vec![A]);

        let r = sum.resolve(&[Value::Int(7), Value::Int(9)]);
        assert!(r.exact);
        assert_eq!(r.reads, vec![ObjectId::new(A, 7), ObjectId::new(B, 9)]);
        assert_eq!(r.writes, vec![ObjectId::new(A, 7)]);
        assert_eq!(r.read_classes, vec![0, 1]);
        assert_eq!(r.write_classes, vec![0]);
    }

    #[test]
    fn var_indexed_open_degrades_to_class_level() {
        let mut b = ProgramBuilder::new("t", 1);
        let oa = b.open_read(A, b.param(0));
        let va = b.get(oa, F);
        let oc = b.open_update(C, va); // pointer chase
        b.set(oc, F, 1i64);
        let sum = AccessSummary::of(&b.finish());
        assert!(!sum.exact, "register-indexed open is data-dependent");
        // The static part still carries the resolvable A open.
        assert_eq!(sum.accesses.len(), 1);
        assert_eq!(sum.accesses[0].class, A);
        assert_eq!(sum.read_classes, vec![A, C]);
        assert_eq!(sum.write_classes, vec![C]);
        let r = sum.resolve(&[Value::Int(3)]);
        assert!(!r.exact);
        assert_eq!(r.reads, vec![ObjectId::new(A, 3)]);
        assert!(r.writes.is_empty());
    }

    #[test]
    fn cond_nested_open_degrades_but_records_classes() {
        let mut b = ProgramBuilder::new("t", 0);
        let flag = b.constant(true);
        b.cond(
            flag,
            |b| {
                let o = b.open_update(B, 1i64);
                b.set(o, F, 5i64);
            },
            |_| {},
        );
        let _oa = b.open_read(A, 2i64);
        let sum = AccessSummary::of(&b.finish());
        assert!(!sum.exact, "conditional open may or may not run");
        assert_eq!(sum.accesses.len(), 1, "only the top-level open resolves");
        assert_eq!(sum.read_classes, vec![A, B]);
        assert_eq!(sum.write_classes, vec![B]);
    }

    #[test]
    fn duplicate_targets_dedup() {
        let mut b = ProgramBuilder::new("t", 1);
        let o1 = b.open_update(A, b.param(0));
        let o2 = b.open_read(A, b.param(0));
        let v = b.get(o2, F);
        b.set(o1, F, v);
        let sum = AccessSummary::of(&b.finish());
        let r = sum.resolve(&[Value::Int(4)]);
        assert_eq!(r.reads, vec![ObjectId::new(A, 4)]);
        assert_eq!(r.writes, vec![ObjectId::new(A, 4)]);
    }

    /// A counting oracle with the store's `get_or_zero` default: unseen
    /// counters start at 0 and advance by `delta` per prediction.
    #[derive(Default)]
    struct MapOracle(std::collections::HashMap<(u16, u64, u16), i64>);

    impl CounterOracle for MapOracle {
        fn predict(&mut self, site: &CounterSite) -> Option<i64> {
            let e = self
                .0
                .entry((site.obj.class.id, site.obj.index, site.field.0))
                .or_insert(0);
            let v = *e;
            *e += site.delta;
            Some(v)
        }
    }

    /// NewOrder's shape: `order = district_param*1000 + next_oid`.
    fn counter_template() -> AccessSummary {
        let mut b = ProgramBuilder::new("t", 1);
        let d = b.open_update(A, b.param(0));
        let oid = b.get(d, F);
        let next = b.add(oid, 1i64);
        b.set(d, F, next);
        let base = b.compute(
            crate::ir::ComputeOp::Mul,
            [b.param(0).into(), 1000i64.into()],
        );
        let oidx = b.add(base, oid);
        let o = b.open_update(B, oidx);
        b.set(o, F, 7i64);
        AccessSummary::of(&b.finish())
    }

    #[test]
    fn counter_indexed_open_resolves_predicted_exact() {
        let sum = counter_template();
        assert!(!sum.exact, "statically the Var index is unresolvable");
        assert!(sum.symbolic.complete);
        let mut oracle = MapOracle::default();
        let p = [Value::Int(3)];
        let r1 = sum.resolve_with(&p, &mut oracle);
        assert!(r1.exact);
        assert_eq!(r1.predicted.len(), 1);
        assert_eq!(r1.predicted[0].obj, ObjectId::new(A, 3));
        assert_eq!(r1.predicted[0].value, 0, "store default for unseeded");
        assert_eq!(r1.predicted[0].delta, 1);
        assert_eq!(r1.reads, vec![ObjectId::new(A, 3), ObjectId::new(B, 3000)]);
        assert_eq!(r1.writes, r1.reads);
        // Same district again: the cursor advanced.
        let r2 = sum.resolve_with(&p, &mut oracle);
        assert_eq!(r2.predicted[0].value, 1);
        assert_eq!(r2.reads[1], ObjectId::new(B, 3001));
        // A different district has its own counter.
        let r3 = sum.resolve_with(&[Value::Int(4)], &mut oracle);
        assert_eq!(r3.predicted[0].value, 0);
        assert_eq!(r3.reads[1], ObjectId::new(B, 4000));
    }

    #[test]
    fn pure_var_chain_upgrades_without_predictions() {
        let mut b = ProgramBuilder::new("t", 2);
        let x = b.compute(crate::ir::ComputeOp::Mul, [b.param(0).into(), 10i64.into()]);
        let y = b.add(x, b.param(1));
        let _o = b.open_update(C, y);
        let sum = AccessSummary::of(&b.finish());
        assert!(!sum.exact);
        let mut oracle = MapOracle::default();
        let r = sum.resolve_with(&[Value::Int(4), Value::Int(2)], &mut oracle);
        assert!(r.exact);
        assert!(r.predicted.is_empty(), "no counter involved");
        assert_eq!(r.writes, vec![ObjectId::new(C, 42)]);
        assert!(oracle.0.is_empty());
    }

    #[test]
    fn refusing_oracle_degrades_soundly() {
        struct Refuse;
        impl CounterOracle for Refuse {
            fn predict(&mut self, _: &CounterSite) -> Option<i64> {
                None
            }
        }
        let sum = counter_template();
        let r = sum.resolve_with(&[Value::Int(3)], &mut Refuse);
        assert!(!r.exact);
        assert!(r.predicted.is_empty());
        assert_eq!(r.reads, vec![ObjectId::new(A, 3)], "static part survives");
    }

    #[test]
    fn incomplete_symbolic_summary_stays_inexact_under_oracle() {
        // A pointer chase: two reads of the same field → no counter.
        let mut b = ProgramBuilder::new("t", 1);
        let a = b.open_read(A, b.param(0));
        let v = b.get(a, F);
        let _v2 = b.get(a, F);
        let _o = b.open_update(C, v);
        let sum = AccessSummary::of(&b.finish());
        let r = sum.resolve_with(&[Value::Int(1)], &mut MapOracle::default());
        assert!(!r.exact);
    }

    #[test]
    fn insert_only_opens_are_value_blind() {
        // Static path: a set-only Update open is blind; a get+set one is
        // not.
        let mut b = ProgramBuilder::new("t", 2);
        let oa = b.open_update(A, b.param(0));
        let v = b.get(oa, F);
        b.set(oa, F, v);
        let ob = b.open_update(B, b.param(1));
        b.set(ob, F, 1i64);
        let sum = AccessSummary::of(&b.finish());
        let r = sum.resolve(&[Value::Int(1), Value::Int(2)]);
        assert!(r.exact);
        assert_eq!(r.blind, vec![ObjectId::new(B, 2)]);

        // Predicted path: the counter-derived insert is blind, the
        // counter itself (read before written) is not.
        let sum = counter_template();
        let r = sum.resolve_with(&[Value::Int(3)], &mut MapOracle::default());
        assert!(r.exact);
        assert_eq!(r.blind, vec![ObjectId::new(B, 3000)]);
        assert!(r.reads.contains(&ObjectId::new(B, 3000)), "blind ⊆ reads");
    }

    #[test]
    fn aliased_valued_open_suppresses_blind() {
        // The same object opened set-only by one handle but read through
        // another must not be treated as blind.
        let mut b = ProgramBuilder::new("t", 1);
        let ow = b.open_update(A, b.param(0));
        b.set(ow, F, 1i64);
        let or = b.open_read(A, b.param(0));
        let _v = b.get(or, F);
        let sum = AccessSummary::of(&b.finish());
        let r = sum.resolve(&[Value::Int(5)]);
        assert!(r.exact);
        assert!(r.blind.is_empty());
    }

    #[test]
    fn missing_param_degrades_instead_of_panicking() {
        let mut b = ProgramBuilder::new("t", 2);
        let _oa = b.open_read(A, b.param(1));
        let sum = AccessSummary::of(&b.finish());
        let r = sum.resolve(&[Value::Int(1)]); // param 1 absent
        assert!(!r.exact);
        assert!(r.reads.is_empty());
    }
}
