#![warn(missing_docs)]

//! # acn-txir — transaction IR and static analysis
//!
//! The paper's Static Module feeds Java transaction code to the Soot
//! framework, obtains a *UnitGraph* (control-flow graph), runs data-flow
//! analysis over it, and extracts **UnitBlocks** — the smallest logical
//! units of transactional code, each containing exactly one remote object
//! invocation plus the local computation that depends on it — together with
//! a **dependency model** between UnitBlocks.
//!
//! Rust has no Soot, so this crate provides the equivalent from first
//! principles: transactions are written in a small SSA-form IR (built with
//! [`ProgramBuilder`]), and the same analyses run over it:
//!
//! * [`UnitGraph`] — statement-level graph with flow (def-use) and
//!   object-state (read/write ordering) dependency edges;
//! * [`extract_unit_blocks`] — the §V-C1 assignment rules: one UnitBlock per
//!   remote open, each local operation enclosed in the latest UnitBlock that
//!   accesses one of the shared objects it manages, purely-local operations
//!   following their dependency chains;
//! * [`DependencyModel`] — UnitBlocks, lifted block-level edges, and per-
//!   operation *eligible host* sets that the run-time Algorithm Module uses
//!   to re-attach local operations to the most contended eligible UnitBlock
//!   (Step 1), merge similar-contention neighbours (Step 2) and sort blocks
//!   by contention (Step 3).
//!
//! The IR is deliberately interpretation-friendly: the Executor Engine in
//! `acn-core` walks statements and evaluates [`ComputeOp`]s over [`Value`]s,
//! issuing remote opens through the DTM for every [`Stmt::Open`].
//!
//! ## Aliasing contract
//!
//! The dependency analysis treats distinct `Open` statements as touching
//! distinct objects — object indices are run-time values, so may-alias
//! information is statically unavailable, exactly as for the paper's
//! Soot-based analysis of `getRemote(id)` call sites. Consequently a
//! template whose instances open the *same* object through two different
//! statements could otherwise let Block reordering change which buffered
//! value a later read observes. Transaction-level atomicity and isolation
//! are never affected — the hazard is purely the intra-transaction
//! read/write order around an aliased handle. The executor in `acn-core`
//! enforces the contract at run time: an `Open` resolving to an object
//! already held by a *different* handle aborts the attempt and re-runs it
//! as a flat (program-order) sequence, where aliasing is harmless. The
//! bundled workload generators still draw ids without replacement where it
//! matters (e.g. TPC-C order lines), so the degraded path stays cold.
//!
//! ## Symbolic access resolution
//!
//! [`SymbolicSummary`] (see `symbolic.rs`) extends the static
//! [`AccessSummary`] to `Var`-indexed opens whose index is a pure
//! `Compute` chain over parameters and designated *hot-counter* reads
//! (TPC-C's `D_NEXT_OID`). [`AccessSummary::resolve_with`] evaluates those
//! chains against a [`CounterOracle`]'s predictions, producing
//! *predicted-exact* access sets the batch scheduler can order at object
//! granularity; the executor validates each [`PredictedRead`] at the real
//! read and repairs mismatches by partial rollback.

mod access;
mod analysis;
mod builder;
mod depmodel;
mod ir;
mod object;
mod symbolic;
mod unitgraph;
mod validate;
mod value;

pub use access::{
    AccessSummary, CounterOracle, CounterSite, PredictedRead, ResolvedAccess, StaticAccess,
};
pub use analysis::{extract_unit_blocks, prefetchable_opens, PrefetchOpen, UnitBlock, UnitBlockId};
pub use builder::ProgramBuilder;
pub use depmodel::{
    is_acyclic, lift_edges, topo_order_preserving, DependencyModel, StmtAssignment,
};
pub use ir::{AccessMode, ComputeOp, Operand, ParamId, Program, Stmt, StmtIdx, VarId};
pub use object::{FieldId, ObjClass, ObjectId, ObjectVal};
pub use symbolic::{CounterRef, SymExpr, SymbolicAccess, SymbolicSummary};
pub use unitgraph::{StmtInfo, UnitGraph};
pub use validate::{validate, ValidateError};
pub use value::{EvalError, Value};
