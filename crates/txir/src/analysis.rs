//! UnitBlock extraction — the paper's §V-C1 assignment rules.
//!
//! A **UnitBlock** is "the smallest logical unit of code in QR-ACN, and it
//! comprises of exactly one remote object invocation". Every local
//! operation is enclosed in the *latest* UnitBlock that contains the access
//! to one of the shared objects it manages; a purely-local operation
//! follows its dependency chain to the UnitBlock of the operation it
//! depends on.

use crate::ir::{Operand, Program, Stmt, StmtIdx};
use crate::object::ObjClass;
use crate::unitgraph::UnitGraph;
use std::collections::{BTreeSet, HashMap};

/// Index of a UnitBlock within a program's dependency model.
pub type UnitBlockId = usize;

/// One UnitBlock: the anchoring remote open plus the local statements
/// assigned to it by the default (static) rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitBlock {
    /// Position in the program's UnitBlock list (anchor order).
    pub id: UnitBlockId,
    /// The statement performing the remote invocation (a composite `Cond`
    /// may carry several opens; it still forms exactly one UnitBlock).
    pub anchor: StmtIdx,
    /// All statements assigned to this block, in program order.
    pub stmts: Vec<StmtIdx>,
    /// Classes opened by the anchor — the objects whose contention level is
    /// the block's contention level.
    pub classes: Vec<ObjClass>,
}

/// A remote open whose target object is computable at transaction entry:
/// the `index` operand is a `Const` or `Param`, never a register, so the
/// concrete `ObjectId` is known before any statement runs. The Executor
/// Engine fetches such opens in one batched quorum round at the start of
/// their hosting Block instead of paying a dedicated round trip each.
///
/// Opens nested inside a [`Stmt::Cond`] never qualify: whether they execute
/// at all is a run-time fact, and prefetching a skipped branch's open would
/// inflate the read-set (and with it the validation and abort surface).
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchOpen {
    /// The top-level `Stmt::Open` this prefetch serves.
    pub stmt: StmtIdx,
    /// Class of the object the statement opens.
    pub class: ObjClass,
    /// The statically known index operand (`Const` or `Param`).
    pub index: Operand,
}

/// The statically prefetchable opens of a program, in statement order:
/// every **top-level** `Open` whose index operand does not read a register.
/// Register-indexed opens (the index flows out of an earlier read — e.g. a
/// pointer chase) and `Cond`-nested opens are excluded; the executor falls
/// back to a single remote read at the statement itself for those.
pub fn prefetchable_opens(program: &Program) -> Vec<PrefetchOpen> {
    program
        .iter()
        .filter_map(|(i, s)| match s {
            Stmt::Open { class, index, .. } if !matches!(index, Operand::Var(_)) => {
                Some(PrefetchOpen {
                    stmt: i,
                    class: *class,
                    index: index.clone(),
                })
            }
            _ => None,
        })
        .collect()
}

/// Extract UnitBlocks and the default statement→block assignment.
///
/// Returns the blocks in program (anchor) order and, for every statement,
/// the id of the block hosting it. Programs without any remote open
/// degenerate to a single block anchored at statement 0.
pub fn extract_unit_blocks(
    program: &Program,
    graph: &UnitGraph,
) -> (Vec<UnitBlock>, Vec<UnitBlockId>) {
    let n = graph.stmts.len();
    assert_eq!(n, program.stmts.len(), "graph does not match program");

    // Anchors: one block per opening statement, in program order.
    let anchors: Vec<StmtIdx> = (0..n).filter(|&i| graph.stmts[i].is_open()).collect();
    if anchors.is_empty() {
        let block = UnitBlock {
            id: 0,
            anchor: 0,
            stmts: (0..n).collect(),
            classes: Vec::new(),
        };
        return (vec![block], vec![0; n]);
    }
    let block_of_anchor: HashMap<StmtIdx, UnitBlockId> =
        anchors.iter().enumerate().map(|(id, &a)| (a, id)).collect();

    let src_opens = graph.source_opens(program);

    // Dependency predecessors per statement (all precede it in program
    // order by construction of the UnitGraph edges).
    let mut preds: HashMap<StmtIdx, Vec<StmtIdx>> = HashMap::new();
    for &(a, b) in &graph.edges {
        debug_assert!(a < b, "UnitGraph edges point forward in program order");
        preds.entry(b).or_default().push(a);
    }

    // First pass (forward): anchors and locals with managed objects. The
    // host is the latest UnitBlock that opened one of the statement's
    // managed objects (§V-C1) — bumped, if necessary, to the latest host
    // among the statement's dependencies, so that lifted block edges can
    // only point forward and the default composition is always acyclic
    // (a buffered write hosted "away" from its object's block would
    // otherwise let a later read of that object create a cycle).
    let mut assignment: Vec<Option<UnitBlockId>> = vec![None; n];
    for i in 0..n {
        let info = &graph.stmts[i];
        if info.is_open() {
            assignment[i] = Some(block_of_anchor[&i]);
            continue;
        }
        // The shared objects this statement manages: the opens feeding any
        // register it uses (handles map to their own open).
        let mut managed: BTreeSet<StmtIdx> = BTreeSet::new();
        for u in &info.uses {
            if let Some(os) = src_opens.get(u) {
                managed.extend(os.iter().copied());
            }
        }
        if let Some(&latest) = managed.iter().max() {
            let mut host = block_of_anchor[&latest];
            for p in preds.get(&i).into_iter().flatten() {
                if let Some(ph) = assignment[*p] {
                    host = host.max(ph);
                }
            }
            assignment[i] = Some(host);
        }
    }

    // Second pass (backward): floaters — statements with no managed shared
    // object (pure parameter/constant computation). Each joins the
    // earliest block among its consumers' hosts; with SSA, consumers
    // appear later in program order, so a reverse sweep resolves chains of
    // floaters, and taking the minimum host keeps every consumer edge
    // pointing forward.
    let mut consumers: HashMap<StmtIdx, Vec<StmtIdx>> = HashMap::new();
    for (i, info) in graph.stmts.iter().enumerate() {
        for u in &info.uses {
            if let Some(&d) = graph.def_site.get(u) {
                consumers.entry(d).or_default().push(i);
            }
        }
    }
    for i in (0..n).rev() {
        if assignment[i].is_some() {
            continue;
        }
        let host = consumers
            .get(&i)
            .into_iter()
            .flatten()
            .filter_map(|&c| assignment[c])
            .min();
        // Dead floaters (no consumer) default to the first block.
        assignment[i] = Some(host.unwrap_or(0));
    }

    let assignment: Vec<UnitBlockId> = assignment
        .into_iter()
        .map(|a| a.expect("every statement assigned"))
        .collect();

    let mut blocks: Vec<UnitBlock> = anchors
        .iter()
        .enumerate()
        .map(|(id, &a)| UnitBlock {
            id,
            anchor: a,
            stmts: Vec::new(),
            classes: graph.stmts[a].opens.iter().map(|&(_, c)| c).collect(),
        })
        .collect();
    for (i, &b) in assignment.iter().enumerate() {
        blocks[b].stmts.push(i);
    }
    (blocks, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::object::{FieldId, ObjClass};

    const A: ObjClass = ObjClass::new(0, "A");
    const B: ObjClass = ObjClass::new(1, "B");
    const C: ObjClass = ObjClass::new(2, "C");
    const D: ObjClass = ObjClass::new(3, "D");
    const E: ObjClass = ObjClass::new(4, "E");
    const F: FieldId = FieldId(0);

    fn analyze(p: &Program) -> (Vec<UnitBlock>, Vec<UnitBlockId>) {
        let g = UnitGraph::build(p);
        extract_unit_blocks(p, &g)
    }

    /// Paper §I-A, Tp1 = {Read(OA), Read(OB), C = OA+OB, D = C+φ}:
    /// "the operation D = C + φ is always wrapped in the same
    /// sub-transaction of C = OA + OB" — i.e. both live with Read(OB).
    #[test]
    fn paper_example_tp1() {
        let mut b = ProgramBuilder::new("tp1", 0);
        let oa = b.open_read(A, 0i64);
        let ob = b.open_read(B, 0i64);
        let va = b.get(oa, F);
        let vb = b.get(ob, F);
        let c = b.add(va, vb);
        let _d = b.add(c, 42i64);
        let p = b.finish();
        let (blocks, asg) = analyze(&p);
        assert_eq!(blocks.len(), 2);
        // Open(OA)=0 and its GetField belong to block 0 … wait: GetField(OA)
        // manages only OA, so it lives with the OA block.
        assert_eq!(asg[0], 0);
        assert_eq!(asg[2], 0);
        // Open(OB), GetField(OB), C and D all live in block 1.
        assert_eq!(asg[1], 1);
        assert_eq!(asg[3], 1);
        assert_eq!(asg[4], 1, "C = OA+OB joins the latest managing block");
        assert_eq!(asg[5], 1, "D = C+φ follows C");
    }

    /// Paper §I-A, Tp2 = {Read(OA), Read(OB), C = OA+OB, Read(OD), E = OD+C}:
    /// E = OD + C "can be enclosed in a separate sub-transaction" — the one
    /// anchored at Read(OD).
    #[test]
    fn paper_example_tp2() {
        let mut b = ProgramBuilder::new("tp2", 0);
        let oa = b.open_read(A, 0i64);
        let ob = b.open_read(B, 0i64);
        let va = b.get(oa, F);
        let vb = b.get(ob, F);
        let c = b.add(va, vb); // stmt 4
        let od = b.open_read(D, 0i64); // stmt 5 → block 2
        let vd = b.get(od, F); // stmt 6
        let _e = b.add(vd, c); // stmt 7
        let p = b.finish();
        let (blocks, asg) = analyze(&p);
        assert_eq!(blocks.len(), 3);
        assert_eq!(asg[5], 2);
        assert_eq!(asg[6], 2);
        assert_eq!(asg[7], 2, "E = OD + C joins the OD block");
        assert_eq!(asg[4], 1, "C stays with Read(OB)");
    }

    /// Paper §V-C1 worked example:
    /// T = {Read(A), Read(B), Read(C), Read(D), var = A+B, var = var/2,
    ///      Read(E), var2 = E+B}.
    /// var=A+B and var=var/2 join Read(B)'s UnitBlock; var2=E+B joins
    /// Read(E)'s.
    #[test]
    fn paper_example_section_vc1() {
        let mut b = ProgramBuilder::new("t", 0);
        let oa = b.open_read(A, 0i64); // 0
        let ob = b.open_read(B, 0i64); // 1
        let oc = b.open_read(C, 0i64); // 2
        let od = b.open_read(D, 0i64); // 3
        let va = b.get(oa, F); // 4
        let vb = b.get(ob, F); // 5
        let _vc = b.get(oc, F); // 6
        let _vd = b.get(od, F); // 7
        let var = b.add(va, vb); // 8  var = A + B
        let _var_half = b.compute(crate::ir::ComputeOp::Div, [var.into(), 2i64.into()]); // 9
        let oe = b.open_read(E, 0i64); // 10
        let ve = b.get(oe, F); // 11
        let _var2 = b.add(ve, vb); // 12 var2 = E + B
        let p = b.finish();
        let (blocks, asg) = analyze(&p);
        assert_eq!(blocks.len(), 5);
        // Read(B) anchors block 1.
        assert_eq!(asg[8], 1, "var = A+B joins Read(B)'s block");
        assert_eq!(asg[9], 1, "var = var/2 follows var = A+B");
        // Read(E) anchors block 4.
        assert_eq!(asg[12], 4, "var2 = E+B joins Read(E)'s block");
    }

    #[test]
    fn floaters_join_their_earliest_consumer() {
        let mut b = ProgramBuilder::new("t", 1);
        // Pure parameter computation before any open.
        let amt = b.compute(crate::ir::ComputeOp::Add, [b.param(0).into(), 1i64.into()]); // 0
        let doubled = b.add(amt, amt); // 1 — also a floater
        let oa = b.open_update(A, 0i64); // 2 → block 0
        let va = b.get(oa, F); // 3
        let nv = b.add(va, doubled); // 4 → block 0
        b.set(oa, F, nv); // 5
        let p = b.finish();
        let (blocks, asg) = analyze(&p);
        assert_eq!(blocks.len(), 1);
        assert_eq!(asg[0], 0);
        assert_eq!(asg[1], 0);
        assert_eq!(blocks[0].stmts, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn dead_floater_defaults_to_first_block() {
        let mut b = ProgramBuilder::new("t", 1);
        let _unused = b.constant(9i64); // 0 — no consumer
        let _oa = b.open_read(A, 0i64); // 1
        let p = b.finish();
        let (_, asg) = analyze(&p);
        assert_eq!(asg[0], 0);
    }

    #[test]
    fn openless_program_is_one_block() {
        let mut b = ProgramBuilder::new("t", 1);
        let x = b.constant(1i64);
        let _y = b.add(x, 2i64);
        let p = b.finish();
        let (blocks, asg) = analyze(&p);
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].classes.is_empty());
        assert_eq!(asg, vec![0, 0]);
    }

    #[test]
    fn blocks_partition_statements() {
        let mut b = ProgramBuilder::new("t", 2);
        let o1 = b.open_update(A, b.param(0));
        let o2 = b.open_update(B, b.param(1));
        let v1 = b.get(o1, F);
        let v2 = b.get(o2, F);
        let s = b.add(v1, v2);
        b.set(o1, F, s);
        let p = b.finish();
        let (blocks, asg) = analyze(&p);
        let total: usize = blocks.iter().map(|bl| bl.stmts.len()).sum();
        assert_eq!(total, p.stmts.len());
        for bl in &blocks {
            for &s in &bl.stmts {
                assert_eq!(asg[s], bl.id);
            }
            // Stmts are in program order.
            assert!(bl.stmts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn setfield_on_earlier_object_joins_latest_managing_block() {
        // account1.withdraw hosted where the amount comes from a later open:
        // set(o1, f, v2) manages both o1 and o2 → joins the later block.
        let mut b = ProgramBuilder::new("t", 0);
        let o1 = b.open_update(A, 0i64); // block 0
        let o2 = b.open_read(B, 0i64); // block 1
        let v2 = b.get(o2, F); // block 1
        b.set(o1, F, v2); // manages A (handle) and B (value) → block 1
        let p = b.finish();
        let (_, asg) = analyze(&p);
        assert_eq!(asg[3], 1);
    }

    /// Regression (found by proptest): a buffered write hosted in a later
    /// block than its object, followed by a read of that object, used to
    /// create a cyclic default unit graph. The host of a statement is now
    /// bumped past all of its dependencies' hosts, keeping default block
    /// edges strictly forward.
    #[test]
    fn foreign_hosted_write_then_read_stays_acyclic() {
        let mut b = ProgramBuilder::new("t", 0);
        let oa = b.open_update(A, 0i64); // unit 0
        let ob = b.open_read(B, 0i64); // unit 1
        let vb = b.get(ob, F); // unit 1
        b.set(oa, F, vb); // manages A and B → latest is unit 1 (stmt 3)
        let _va = b.get(oa, F); // reads A after that write (stmt 4)
        let p = b.finish();
        let g = UnitGraph::build(&p);
        let (_, asg) = extract_unit_blocks(&p, &g);
        assert_eq!(asg[3], 1, "write hosted with Read(B)");
        assert_eq!(
            asg[4], 1,
            "dependent read must be bumped to the write's block"
        );
        // The lifted default graph is acyclic (only 0→1 edges remain).
        let edges = crate::depmodel::lift_edges(&g, &asg);
        assert!(crate::depmodel::is_acyclic(2, &edges), "edges: {edges:?}");
    }

    #[test]
    fn prefetchable_opens_finds_const_and_param_indices() {
        let mut b = ProgramBuilder::new("t", 2);
        let oa = b.open_read(A, 7i64); // 0 — Const index: prefetchable
        let _ob = b.open_update(B, b.param(0)); // 1 — Param index: prefetchable
        let va = b.get(oa, F); // 2
        let _oc = b.open_read(C, va); // 3 — Var index: data-dependent
        let p = b.finish();
        let pf = prefetchable_opens(&p);
        assert_eq!(pf.len(), 2);
        assert_eq!(pf[0].stmt, 0);
        assert_eq!(pf[0].class, A);
        assert!(matches!(pf[0].index, Operand::Const(_)));
        assert_eq!(pf[1].stmt, 1);
        assert_eq!(pf[1].class, B);
        assert!(matches!(pf[1].index, Operand::Param(_)));
    }

    #[test]
    fn cond_nested_opens_are_not_prefetchable() {
        let mut b = ProgramBuilder::new("t", 0);
        let flag = b.constant(true);
        b.cond(
            flag,
            |b| {
                let o = b.open_update(A, 1i64);
                b.set(o, F, 5i64);
            },
            |_| {},
        );
        let _ob = b.open_read(B, 2i64);
        let p = b.finish();
        let pf = prefetchable_opens(&p);
        assert_eq!(pf.len(), 1, "only the unconditional open qualifies");
        assert_eq!(pf[0].class, B);
    }

    #[test]
    fn openless_program_has_no_prefetch() {
        let mut b = ProgramBuilder::new("t", 1);
        let x = b.constant(1i64);
        let _y = b.add(x, 2i64);
        assert!(prefetchable_opens(&b.finish()).is_empty());
    }

    #[test]
    fn composite_cond_anchor_forms_single_block() {
        let mut b = ProgramBuilder::new("t", 0);
        let flag = b.constant(true); // 0
        b.cond(
            flag,
            |b| {
                let o = b.open_update(A, 1i64);
                b.set(o, F, 5i64);
            },
            |_| {},
        ); // 1 — composite open
        let o2 = b.open_read(B, 0i64); // 2
        let _v = b.get(o2, F); // 3
        let p = b.finish();
        let (blocks, asg) = analyze(&p);
        assert_eq!(blocks.len(), 2);
        assert_eq!(asg[1], 0);
        assert_eq!(blocks[0].classes, vec![A]);
        assert_eq!(asg[0], 0, "pred floater joins its consumer's block");
    }
}
