//! Fluent construction of SSA transaction programs.

use crate::ir::{AccessMode, ComputeOp, Operand, ParamId, Program, Stmt, VarId};
use crate::object::{FieldId, ObjClass};
use crate::validate::{validate, ValidateError};
use crate::value::Value;

/// Builds a [`Program`] while allocating SSA registers.
///
/// ```
/// use acn_txir::{ProgramBuilder, ComputeOp, ObjClass, FieldId};
///
/// const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
/// const BAL: FieldId = FieldId(0);
///
/// let mut b = ProgramBuilder::new("withdraw", 2); // params: account id, amount
/// let acc = b.open_update(ACCOUNT, b.param(0));
/// let bal = b.get(acc, BAL);
/// let amt = b.param(1);
/// let newbal = b.compute(ComputeOp::Sub, [bal.into(), amt.into()]);
/// b.set(acc, BAL, newbal);
/// let program = b.finish();
/// assert_eq!(program.open_count(), 1);
/// ```
pub struct ProgramBuilder {
    name: String,
    params: u16,
    next_var: u16,
    /// Statement-list stack: the last entry is the list currently being
    /// appended to (branch bodies push/pop around the base program).
    frames: Vec<Vec<Stmt>>,
}

impl ProgramBuilder {
    /// Start a template named `name` taking `params` instance parameters.
    pub fn new(name: impl Into<String>, params: u16) -> Self {
        ProgramBuilder {
            name: name.into(),
            params,
            next_var: 0,
            frames: vec![Vec::new()],
        }
    }

    fn fresh(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var = self
            .next_var
            .checked_add(1)
            .expect("register space exhausted");
        v
    }

    fn push(&mut self, stmt: Stmt) {
        self.frames
            .last_mut()
            .expect("builder frame stack never empty")
            .push(stmt);
    }

    /// Reference parameter `i`.
    pub fn param(&self, i: u16) -> ParamId {
        assert!(i < self.params, "param {i} out of range ({})", self.params);
        ParamId(i)
    }

    /// Open an object for reading; returns its handle register.
    pub fn open_read(&mut self, class: ObjClass, index: impl Into<Operand>) -> VarId {
        self.open(class, index, AccessMode::Read)
    }

    /// Open an object for read-write; returns its handle register.
    pub fn open_update(&mut self, class: ObjClass, index: impl Into<Operand>) -> VarId {
        self.open(class, index, AccessMode::Update)
    }

    fn open(&mut self, class: ObjClass, index: impl Into<Operand>, mode: AccessMode) -> VarId {
        let var = self.fresh();
        self.push(Stmt::Open {
            var,
            class,
            index: index.into(),
            mode,
        });
        var
    }

    /// Read `obj.field` into a fresh register.
    pub fn get(&mut self, obj: VarId, field: FieldId) -> VarId {
        let var = self.fresh();
        self.push(Stmt::GetField { var, obj, field });
        var
    }

    /// Buffered write `obj.field = value`.
    pub fn set(&mut self, obj: VarId, field: FieldId, value: impl Into<Operand>) {
        self.push(Stmt::SetField {
            obj,
            field,
            value: value.into(),
        });
    }

    /// Pure computation into a fresh register.
    pub fn compute<const N: usize>(&mut self, op: ComputeOp, ins: [Operand; N]) -> VarId {
        let out = self.fresh();
        self.push(Stmt::Compute {
            out,
            op,
            ins: ins.to_vec(),
        });
        out
    }

    /// Name a constant.
    pub fn constant(&mut self, v: impl Into<Value>) -> VarId {
        let val: Value = v.into();
        self.compute(ComputeOp::Id, [Operand::Const(val)])
    }

    /// Convenience: `a + b`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VarId {
        self.compute(ComputeOp::Add, [a.into(), b.into()])
    }

    /// Convenience: `a - b`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VarId {
        self.compute(ComputeOp::Sub, [a.into(), b.into()])
    }

    /// Effect-level conditional; registers defined inside the closures are
    /// branch-local and must not escape.
    pub fn cond(
        &mut self,
        pred: impl Into<Operand>,
        then_build: impl FnOnce(&mut Self),
        else_build: impl FnOnce(&mut Self),
    ) {
        self.frames.push(Vec::new());
        then_build(self);
        let then_br = self.frames.pop().expect("then frame");
        self.frames.push(Vec::new());
        else_build(self);
        let else_br = self.frames.pop().expect("else frame");
        self.push(Stmt::Cond {
            pred: pred.into(),
            then_br,
            else_br,
        });
    }

    /// Finish and validate, panicking on malformed programs (builder misuse
    /// is a programming error in the workload definition).
    pub fn finish(self) -> Program {
        self.try_finish()
            .unwrap_or_else(|e| panic!("invalid program: {e}"))
    }

    /// Finish, returning validation errors instead of panicking.
    pub fn try_finish(self) -> Result<Program, ValidateError> {
        assert_eq!(self.frames.len(), 1, "unclosed cond frame");
        let program = Program {
            name: self.name,
            params: self.params,
            vars: self.next_var,
            stmts: self.frames.into_iter().next().expect("base frame"),
        };
        validate(&program)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
    const BAL: FieldId = FieldId(0);

    #[test]
    fn builds_a_simple_transfer() {
        let mut b = ProgramBuilder::new("transfer", 3);
        let a1 = b.open_update(ACCOUNT, b.param(0));
        let a2 = b.open_update(ACCOUNT, b.param(1));
        let bal1 = b.get(a1, BAL);
        let bal2 = b.get(a2, BAL);
        let amt = b.param(2);
        let n1 = b.sub(bal1, amt);
        let n2 = b.add(bal2, amt);
        b.set(a1, BAL, n1);
        b.set(a2, BAL, n2);
        let p = b.finish();
        assert_eq!(p.stmts.len(), 8);
        assert_eq!(p.open_count(), 2);
        assert_eq!(p.vars, 6);
    }

    #[test]
    fn vars_are_fresh_and_sequential() {
        let mut b = ProgramBuilder::new("t", 0);
        let v0 = b.constant(1i64);
        let v1 = b.constant(2i64);
        assert_eq!((v0, v1), (VarId(0), VarId(1)));
    }

    #[test]
    fn cond_bodies_nest() {
        let mut b = ProgramBuilder::new("t", 1);
        let acc = b.open_update(ACCOUNT, b.param(0));
        let bal = b.get(acc, BAL);
        let pred = b.compute(ComputeOp::Gt, [bal.into(), Operand::from(0i64)]);
        b.cond(pred, |b| b.set(acc, BAL, 0i64), |_| {});
        let p = b.finish();
        match &p.stmts[3] {
            Stmt::Cond {
                then_br, else_br, ..
            } => {
                assert_eq!(then_br.len(), 1);
                assert!(else_br.is_empty());
            }
            other => panic!("expected Cond, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "param 2 out of range")]
    fn out_of_range_param_panics() {
        let b = ProgramBuilder::new("t", 2);
        let _ = b.param(2);
    }

    #[test]
    fn doc_example_compiles_and_validates() {
        let mut b = ProgramBuilder::new("withdraw", 2);
        let acc = b.open_update(ACCOUNT, b.param(0));
        let bal = b.get(acc, BAL);
        let amt = b.param(1);
        let nb = b.compute(ComputeOp::Sub, [bal.into(), amt.into()]);
        b.set(acc, BAL, nb);
        assert!(b.try_finish().is_ok());
    }
}
