//! Property tests over the static-analysis pipeline: for arbitrary valid
//! programs, the UnitBlock extraction and dependency model must uphold the
//! invariants everything downstream builds on.

use acn_txir::{
    is_acyclic, lift_edges, ComputeOp, DependencyModel, FieldId, ObjClass, Operand, Program,
    ProgramBuilder, Stmt, VarId,
};
use proptest::prelude::*;

const CLASSES: [ObjClass; 4] = [
    ObjClass::new(0, "C0"),
    ObjClass::new(1, "C1"),
    ObjClass::new(2, "C2"),
    ObjClass::new(3, "C3"),
];
const F: FieldId = FieldId(0);
const G: FieldId = FieldId(1);

/// Abstract actions a generated program is assembled from.
#[derive(Debug, Clone)]
enum Action {
    Open {
        class: usize,
        idx: u8,
        update: bool,
    },
    /// get a field of open `o` (mod number of opens so far)
    Get {
        o: usize,
        g: bool,
    },
    /// set a field of an *update* open from a previous register/constant
    Set {
        o: usize,
        val: usize,
        g: bool,
    },
    /// combine two previous registers (or constants when none exist)
    Compute {
        a: usize,
        b: usize,
        op_mul: bool,
    },
    /// pure parameter computation (floater)
    Floater {
        p: usize,
    },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..4, 0u8..4, any::<bool>()).prop_map(|(class, idx, update)| Action::Open {
            class,
            idx,
            update
        }),
        (any::<usize>(), any::<bool>()).prop_map(|(o, g)| Action::Get { o, g }),
        (any::<usize>(), any::<usize>(), any::<bool>()).prop_map(|(o, val, g)| Action::Set {
            o,
            val,
            g
        }),
        (any::<usize>(), any::<usize>(), any::<bool>())
            .prop_map(|(a, b, op_mul)| Action::Compute { a, b, op_mul }),
        (0usize..3).prop_map(|p| Action::Floater { p }),
    ]
}

/// Materialise actions into a valid program (skipping actions whose
/// prerequisites don't exist yet).
fn build(actions: &[Action]) -> Program {
    let mut b = ProgramBuilder::new("prop/gen", 3);
    let mut update_opens: Vec<VarId> = Vec::new();
    let mut all_opens: Vec<VarId> = Vec::new();
    let mut regs: Vec<VarId> = Vec::new();
    for a in actions {
        match *a {
            Action::Open { class, idx, update } => {
                let h = if update {
                    let h = b.open_update(CLASSES[class], i64::from(idx));
                    update_opens.push(h);
                    h
                } else {
                    b.open_read(CLASSES[class], i64::from(idx))
                };
                all_opens.push(h);
            }
            Action::Get { o, g } => {
                if all_opens.is_empty() {
                    continue;
                }
                let h = all_opens[o % all_opens.len()];
                let r = b.get(h, if g { G } else { F });
                regs.push(r);
            }
            Action::Set { o, val, g } => {
                if update_opens.is_empty() {
                    continue;
                }
                let h = update_opens[o % update_opens.len()];
                let operand: Operand = if regs.is_empty() {
                    Operand::from(7i64)
                } else {
                    regs[val % regs.len()].into()
                };
                b.set(h, if g { G } else { F }, operand);
            }
            Action::Compute { a, b: b2, op_mul } => {
                let (x, y): (Operand, Operand) = if regs.is_empty() {
                    (Operand::from(1i64), Operand::from(2i64))
                } else {
                    (regs[a % regs.len()].into(), regs[b2 % regs.len()].into())
                };
                let op = if op_mul {
                    ComputeOp::Mul
                } else {
                    ComputeOp::Add
                };
                let r = b.compute(op, [x, y]);
                regs.push(r);
            }
            Action::Floater { p } => {
                let r = b.compute(ComputeOp::Add, [b.param(p as u16).into(), 1i64.into()]);
                regs.push(r);
            }
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn analysis_invariants_hold(actions in prop::collection::vec(action_strategy(), 1..40)) {
        let program = build(&actions);
        let dm = DependencyModel::analyze(program.clone()).expect("builder output is valid");

        // 1. Statements are partitioned across UnitBlocks.
        let mut covered: Vec<usize> = dm.units.iter().flat_map(|u| u.stmts.clone()).collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..program.stmts.len()).collect::<Vec<_>>());

        // 2. Assignment agrees with block membership and within-block
        //    statements are in program order.
        for unit in &dm.units {
            prop_assert!(unit.stmts.windows(2).all(|w| w[0] < w[1]));
            for &s in &unit.stmts {
                prop_assert_eq!(dm.default_assignment[s], unit.id);
            }
        }

        // 3. Exactly one UnitBlock per remote open (or a single block for
        //    open-free programs).
        let opens = program.open_count();
        if opens == 0 {
            prop_assert_eq!(dm.unit_count(), 1);
        } else {
            prop_assert_eq!(dm.unit_count(), opens);
        }

        // 4. The default composition is acyclic — the invariant the
        //    Algorithm Module's reordering relies on.
        let edges = lift_edges(&dm.graph, &dm.default_assignment);
        prop_assert!(is_acyclic(dm.unit_count(), &edges), "edges {edges:?}");

        // 5. Default block edges only point forward in block order.
        for &(a, b) in &edges {
            prop_assert!(a < b, "backward default edge {a}→{b}");
        }

        // 6. Eligible hosts always include the default assignment.
        for (s, hosts) in dm.eligible_hosts.iter().enumerate() {
            prop_assert!(
                hosts.contains(&dm.default_assignment[s])
                    || hosts == &vec![dm.default_assignment[s]],
                "stmt {s}: default {} not in eligible {hosts:?}",
                dm.default_assignment[s]
            );
        }

        // 7. Statement-level graph edges respect program order.
        for &(a, b) in &dm.graph.edges {
            prop_assert!(a < b);
        }
    }

    /// Anchors host themselves: every open statement is the anchor of the
    /// block it is assigned to.
    #[test]
    fn anchors_host_themselves(actions in prop::collection::vec(action_strategy(), 1..40)) {
        let program = build(&actions);
        let dm = DependencyModel::analyze(program).expect("valid");
        for unit in &dm.units {
            if !unit.classes.is_empty() {
                prop_assert_eq!(dm.default_assignment[unit.anchor], unit.id);
                prop_assert!(unit.stmts.contains(&unit.anchor));
            }
        }
    }
}

/// Mutation check: breaking SSA or scoping in an otherwise valid program
/// is caught by validation.
#[test]
fn validate_catches_injected_corruption() {
    let mut b = ProgramBuilder::new("ok", 1);
    let h = b.open_update(CLASSES[0], b.param(0));
    let v = b.get(h, F);
    let w = b.add(v, 1i64);
    b.set(h, F, w);
    let good = b.finish();

    // Corrupt: redefine an existing register.
    let mut bad = good.clone();
    bad.stmts.push(Stmt::Compute {
        out: VarId(1),
        op: ComputeOp::Id,
        ins: vec![Operand::from(0i64)],
    });
    assert!(
        acn_txir::validate(&bad).is_err(),
        "double definition accepted"
    );

    // Corrupt: reference a register that never exists.
    let mut bad = good.clone();
    bad.vars += 1;
    bad.stmts.push(Stmt::Compute {
        out: VarId(bad.vars - 1),
        op: ComputeOp::Id,
        ins: vec![Operand::Var(VarId(99))],
    });
    assert!(
        acn_txir::validate(&bad).is_err(),
        "phantom register accepted"
    );

    // Corrupt: write through a read-only handle.
    let mut b = ProgramBuilder::new("ro", 1);
    let h = b.open_read(CLASSES[1], b.param(0));
    let _ = b.get(h, F);
    let mut bad = b.finish();
    bad.stmts.push(Stmt::SetField {
        obj: VarId(0),
        field: F,
        value: Operand::from(1i64),
    });
    assert!(
        acn_txir::validate(&bad).is_err(),
        "read-only write accepted"
    );
}
