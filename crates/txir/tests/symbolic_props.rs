//! Oracle property tests for the symbolic access resolver.
//!
//! [`AccessSummary::resolve_with`] claims its resolved read/write sets are
//! the *complete* object sets of an instance whenever the symbolic summary
//! is complete and the counter oracle answers. These tests pit that claim
//! against a concrete reference interpreter: build a random template out of
//! the shapes the resolver reasons about (static opens, hot-counter index
//! chains, pure parameter arithmetic, pointer chases, `Cond`-nested opens),
//! run each instance against a plain key-value store, and compare.
//!
//!   * resolver claims `exact` → resolved reads/writes **equal** the
//!     observed opens, and every predicted counter read matches the value
//!     the interpreter actually saw;
//!   * resolver stays inexact → resolved sets are a **subset** of the
//!     observed opens (the static part never over-claims).
//!
//! The oracle is the production shape: a cursor map seeded from the store
//! on first touch and advanced by `delta` per prediction, shared across a
//! whole sequence of instances — exactly how the batch coordinator chains
//! predictions through a wave.

use acn_txir::{
    AccessMode, AccessSummary, ComputeOp, CounterOracle, CounterSite, FieldId, ObjClass, ObjectId,
    Operand, Program, ProgramBuilder, Stmt, Value, VarId,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const CLASSES: [ObjClass; 4] = [
    ObjClass::new(0, "c0"),
    ObjClass::new(1, "c1"),
    ObjClass::new(2, "c2"),
    ObjClass::new(3, "c3"),
];
/// The counter field and a scratch field that never hosts a used counter.
const CTR: FieldId = FieldId(0);
const AUX: FieldId = FieldId(1);
const PARAMS: u16 = 8;

/// One generated fragment of a template. Every shape the resolver
/// classifies is represented, including the ones it must refuse.
#[derive(Debug, Clone)]
enum Piece {
    /// `open(class, param(p))` — statically resolvable.
    Static { class: u8, p: u8, write: bool },
    /// The NewOrder shape: `open_update(host, param(p))`, read `CTR`,
    /// advance it by `delta`, then `open(target, param(q)*mul + ctr)`.
    Counter {
        host: u8,
        p: u8,
        delta: i8,
        target: u8,
        q: u8,
        mul: u8,
        write: bool,
    },
    /// Pure arithmetic chain: `open(class, param(p)*mul + off)`.
    Pure { class: u8, p: u8, mul: u8, off: u8 },
    /// An unqualified read-modify-write on `AUX` of a static open. The
    /// field qualifies as an (unused) counter; no index depends on it, so
    /// it must not disturb exactness.
    Rmw { class: u8, p: u8, delta: i8 },
    /// Pointer chase: two reads of the same field disqualify the counter,
    /// so the dependent open is unresolvable and the template inexact.
    Chase { host: u8, p: u8, target: u8 },
    /// A `Cond`-nested open — may or may not run, so the template is
    /// incomplete and the resolver must stay at the sound static subset.
    CondOpen { class: u8, idx: u8, taken: bool },
}

fn build(pieces: &[Piece]) -> Program {
    let mut b = ProgramBuilder::new("prop", PARAMS);
    for piece in pieces {
        match *piece {
            Piece::Static { class, p, write } => {
                let class = CLASSES[(class % 4) as usize];
                let idx = b.param((p % PARAMS as u8) as u16);
                if write {
                    b.open_update(class, idx);
                } else {
                    b.open_read(class, idx);
                }
            }
            Piece::Counter {
                host,
                p,
                delta,
                target,
                q,
                mul,
                write,
            } => {
                let host = CLASSES[(host % 4) as usize];
                let target = CLASSES[(target % 4) as usize];
                let d = b.open_update(host, b.param((p % PARAMS as u8) as u16));
                let ctr = b.get(d, CTR);
                let next = b.add(ctr, delta as i64);
                b.set(d, CTR, next);
                let base = b.compute(
                    ComputeOp::Mul,
                    [
                        b.param((q % PARAMS as u8) as u16).into(),
                        (mul as i64).into(),
                    ],
                );
                let idx = b.add(base, ctr);
                if write {
                    b.open_update(target, idx);
                } else {
                    b.open_read(target, idx);
                }
            }
            Piece::Pure { class, p, mul, off } => {
                let class = CLASSES[(class % 4) as usize];
                let base = b.compute(
                    ComputeOp::Mul,
                    [
                        b.param((p % PARAMS as u8) as u16).into(),
                        (mul as i64).into(),
                    ],
                );
                let idx = b.add(base, off as i64);
                b.open_read(class, idx);
            }
            Piece::Rmw { class, p, delta } => {
                let class = CLASSES[(class % 4) as usize];
                let o = b.open_update(class, b.param((p % PARAMS as u8) as u16));
                let v = b.get(o, AUX);
                let next = b.add(v, delta as i64);
                b.set(o, AUX, next);
            }
            Piece::Chase { host, p, target } => {
                let host = CLASSES[(host % 4) as usize];
                let target = CLASSES[(target % 4) as usize];
                let h = b.open_read(host, b.param((p % PARAMS as u8) as u16));
                let v = b.get(h, CTR);
                let _again = b.get(h, CTR);
                b.open_read(target, v);
            }
            Piece::CondOpen { class, idx, taken } => {
                let class = CLASSES[(class % 4) as usize];
                let flag = b.constant(taken);
                b.cond(
                    flag,
                    |b| {
                        let o = b.open_update(class, (idx % 8) as i64);
                        b.set(o, AUX, 1i64);
                    },
                    |_| {},
                );
            }
        }
    }
    b.finish()
}

type Store = BTreeMap<(u16, u64, u16), i64>;

fn store_key(obj: ObjectId, field: FieldId) -> (u16, u64, u16) {
    (obj.class.id, obj.index, field.0)
}

/// What one reference-interpreted instance actually touched.
#[derive(Debug, Default)]
struct Observed {
    reads: BTreeSet<ObjectId>,
    writes: BTreeSet<ObjectId>,
    /// Value each `(obj, CTR/AUX)` GetField returned, in execution order —
    /// the ground truth predictions must match.
    field_reads: Vec<(ObjectId, FieldId, i64)>,
}

/// Execute one instance sequentially against `store` (the single-threaded
/// ground truth: buffered writes apply immediately, fields default to 0).
fn interpret(program: &Program, params: &[Value], store: &mut Store) -> Observed {
    let mut regs: BTreeMap<VarId, Value> = BTreeMap::new();
    let mut handles: BTreeMap<VarId, ObjectId> = BTreeMap::new();
    let mut obs = Observed::default();

    fn operand(op: &Operand, regs: &BTreeMap<VarId, Value>, params: &[Value]) -> Value {
        match op {
            Operand::Const(v) => v.clone(),
            Operand::Param(p) => params[p.0 as usize].clone(),
            Operand::Var(v) => regs.get(v).expect("SSA: use after def").clone(),
        }
    }

    fn run(
        stmts: &[Stmt],
        regs: &mut BTreeMap<VarId, Value>,
        handles: &mut BTreeMap<VarId, ObjectId>,
        obs: &mut Observed,
        params: &[Value],
        store: &mut Store,
    ) {
        for s in stmts {
            match s {
                Stmt::Open {
                    var,
                    class,
                    index,
                    mode,
                } => {
                    let idx = operand(index, regs, params).as_int().expect("int index");
                    let obj = ObjectId::new(*class, idx as u64);
                    obs.reads.insert(obj);
                    if *mode == AccessMode::Update {
                        obs.writes.insert(obj);
                    }
                    handles.insert(*var, obj);
                }
                Stmt::GetField { var, obj, field } => {
                    let target = handles[obj];
                    let v = *store.entry(store_key(target, *field)).or_insert(0);
                    obs.field_reads.push((target, *field, v));
                    regs.insert(*var, Value::Int(v));
                }
                Stmt::SetField { obj, field, value } => {
                    let target = handles[obj];
                    let v = operand(value, regs, params).as_int().expect("int field");
                    store.insert(store_key(target, *field), v);
                }
                Stmt::Compute { out, op, ins } => {
                    let args: Vec<Value> = ins.iter().map(|i| operand(i, regs, params)).collect();
                    regs.insert(*out, op.eval(&args).expect("generated ops are total"));
                }
                Stmt::Cond {
                    pred,
                    then_br,
                    else_br,
                } => {
                    let taken = operand(pred, regs, params).as_bool().expect("bool pred");
                    let br = if taken { then_br } else { else_br };
                    run(br, regs, handles, obs, params, store);
                }
            }
        }
    }
    run(
        &program.stmts,
        &mut regs,
        &mut handles,
        &mut obs,
        params,
        store,
    );
    obs
}

/// The production predictor shape: per-counter cursors seeded from the
/// store on first touch, advanced by `delta` per prediction.
struct StoreCursorOracle<'a> {
    store: &'a Store,
    cursors: BTreeMap<(u16, u64, u16), i64>,
}

impl CounterOracle for StoreCursorOracle<'_> {
    fn predict(&mut self, site: &CounterSite) -> Option<i64> {
        let key = store_key(site.obj, site.field);
        let e = self
            .cursors
            .entry(key)
            .or_insert_with(|| self.store.get(&key).copied().unwrap_or(0));
        let v = *e;
        *e += site.delta;
        Some(v)
    }
}

fn piece_strategy() -> impl Strategy<Value = Piece> {
    prop_oneof![
        (0u8..4, 0u8..8, any::<bool>()).prop_map(|(class, p, write)| Piece::Static {
            class,
            p,
            write
        }),
        (
            (0u8..4, 0u8..8, -2i8..3),
            (0u8..4, 0u8..8, 1u8..32, any::<bool>())
        )
            .prop_map(
                |((host, p, delta), (target, q, mul, write))| Piece::Counter {
                    host,
                    p,
                    delta,
                    target,
                    q,
                    mul,
                    write,
                }
            ),
        (0u8..4, 0u8..8, 1u8..32, 0u8..16).prop_map(|(class, p, mul, off)| Piece::Pure {
            class,
            p,
            mul,
            off
        }),
        (0u8..4, 0u8..8, -2i8..3).prop_map(|(class, p, delta)| Piece::Rmw { class, p, delta }),
        (0u8..4, 0u8..8, 0u8..4).prop_map(|(host, p, target)| Piece::Chase { host, p, target }),
        (0u8..4, 0u8..8, any::<bool>()).prop_map(|(class, idx, taken)| Piece::CondOpen {
            class,
            idx,
            taken
        }),
    ]
}

type Case = (Vec<Piece>, Vec<Vec<i64>>, Vec<((u8, u8), i64)>);

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        prop::collection::vec(piece_strategy(), 1..7),
        prop::collection::vec(prop::collection::vec(0i64..8, PARAMS as usize), 1..5),
        prop::collection::vec(((0u8..4, 0u8..8), 0i64..50), 0..6),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The central oracle property: predicted-exact instances resolve the
    /// *true* access sets; inexact ones never over-claim. Instances run
    /// sequentially against one store with one shared cursor oracle, the
    /// way a batch wave chains predictions.
    #[test]
    fn resolved_sets_match_the_reference_interpreter(case in case_strategy()) {
        let (pieces, instances, seeds) = case;
        let program = build(&pieces);
        let summary = AccessSummary::of(&program);

        let mut store: Store = Store::new();
        for ((class, idx), v) in seeds {
            let obj = ObjectId::new(CLASSES[(class % 4) as usize], (idx % 8) as u64);
            store.insert(store_key(obj, CTR), v);
        }
        let seeded = store.clone();
        let mut oracle = StoreCursorOracle {
            store: &seeded,
            cursors: BTreeMap::new(),
        };

        for params_raw in &instances {
            let params: Vec<Value> = params_raw.iter().map(|&v| Value::Int(v)).collect();
            let resolved = summary.resolve_with(&params, &mut oracle);
            let observed = interpret(&program, &params, &mut store);

            let obs_reads: Vec<ObjectId> = observed.reads.iter().copied().collect();
            let obs_writes: Vec<ObjectId> = observed.writes.iter().copied().collect();
            if resolved.exact {
                prop_assert_eq!(
                    &resolved.reads, &obs_reads,
                    "exact read set must equal the interpreter's:\n{}", program
                );
                prop_assert_eq!(
                    &resolved.writes, &obs_writes,
                    "exact write set must equal the interpreter's:\n{}", program
                );
                // Every prediction the schedule leaned on must be the value
                // the instance actually read.
                for pred in &resolved.predicted {
                    prop_assert!(
                        observed
                            .field_reads
                            .iter()
                            .any(|&(o, f, v)| o == pred.obj && f == pred.field && v == pred.value),
                        "prediction {:?} never observed (reads: {:?})\n{}",
                        pred, observed.field_reads, program
                    );
                }
            } else {
                prop_assert!(resolved.predicted.is_empty(),
                    "inexact instances carry no predictions");
                for r in &resolved.reads {
                    prop_assert!(obs_reads.contains(r),
                        "inexact read set must under-approximate:\n{}", program);
                }
                for w in &resolved.writes {
                    prop_assert!(obs_writes.contains(w),
                        "inexact write set must under-approximate:\n{}", program);
                }
            }
        }
    }

    /// `resolve` (the static-only path) is always a sound lower bound,
    /// exact or not — predictions never enter into it.
    #[test]
    fn static_resolve_is_always_a_subset(case in case_strategy()) {
        let (pieces, instances, _seeds) = case;
        let program = build(&pieces);
        let summary = AccessSummary::of(&program);
        let mut store: Store = Store::new();
        for params_raw in &instances {
            let params: Vec<Value> = params_raw.iter().map(|&v| Value::Int(v)).collect();
            let resolved = summary.resolve(&params);
            prop_assert!(resolved.predicted.is_empty());
            let observed = interpret(&program, &params, &mut store);
            for r in &resolved.reads {
                prop_assert!(observed.reads.contains(r), "static reads over-claimed:\n{}", program);
            }
            for w in &resolved.writes {
                prop_assert!(observed.writes.contains(w), "static writes over-claimed:\n{}", program);
            }
        }
    }
}
