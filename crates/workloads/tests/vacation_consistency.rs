//! Vacation consistency invariant: every committed reservation decrements
//! the availability of exactly one car, one flight and one room and
//! charges the customer the sum of their prices — so, whatever
//! decomposition executes the workload under concurrency,
//!
//! `Σ customer.TOTAL_SPENT == Σ_table price(item) · (seeded_avail − avail)`.

use acn_core::{BlockSeq, ExecStats, ExecutorEngine};
use acn_dtm::{Cluster, ClusterConfig, DtmClient, TxnCtx};
use acn_txir::{DependencyModel, FieldId, ObjectId, Value};
use acn_workloads::schema::{AVAIL, CAR, CUSTOMER_V, FLIGHT, PRICE, ROOM, TOTAL_SPENT};
use acn_workloads::vacation::{Vacation, VacationConfig};
use acn_workloads::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const POOL: u64 = 6;
const CUSTOMERS: u64 = 16;
const SEED_AVAIL: i64 = 10_000;

fn read_int(client: &mut DtmClient, obj: ObjectId, field: FieldId) -> i64 {
    let mut ctx = TxnCtx::begin(client);
    ctx.open(client, obj, false).unwrap();
    let v = ctx.get_field(obj, field).as_int().unwrap();
    ctx.commit(client).unwrap();
    v
}

/// Seed every table item with a distinct price and a large availability.
fn seed(client: &mut DtmClient) {
    let mut ctx = TxnCtx::begin(client);
    for (t, class) in [CAR, FLIGHT, ROOM].into_iter().enumerate() {
        for i in 0..POOL {
            let obj = ObjectId::new(class, i);
            ctx.open(client, obj, true).unwrap();
            ctx.set_field(obj, PRICE, Value::Int(100 + (t as i64) * 10 + i as i64));
            ctx.set_field(obj, AVAIL, Value::Int(SEED_AVAIL));
        }
    }
    ctx.commit(client).unwrap();
}

fn run_with(seq_for: impl Fn(&Arc<DependencyModel>) -> Arc<BlockSeq>) {
    // Both pools small and equal so reservations and browses share the
    // seeded id range; write_pct 100 so every transaction reserves.
    let vacation = Vacation::new(VacationConfig {
        hot_pool: POOL,
        cold_pool: POOL,
        customers: CUSTOMERS,
        write_pct: 100,
        queries_per_txn: 4,
    });
    let cluster = Cluster::start(ClusterConfig::test(10, 4));
    {
        let mut seeder = cluster.client(0);
        seed(&mut seeder);
    }
    let dm = Arc::new(DependencyModel::analyze(vacation.templates()[0].clone()).unwrap());
    let seq = seq_for(&dm);
    seq.assert_respects_dependencies(&dm);

    std::thread::scope(|s| {
        for t in 0..4 {
            let mut client = cluster.client(t);
            let vacation = &vacation;
            let dm = Arc::clone(&dm);
            let seq = Arc::clone(&seq);
            s.spawn(move || {
                let engine = ExecutorEngine::default();
                let mut stats = ExecStats::default();
                let mut rng = StdRng::seed_from_u64(1000 + t as u64);
                for _ in 0..25 {
                    let req = vacation.next(&mut rng, 0);
                    assert_eq!(req.template, 0, "write_pct 100 ⇒ all reserve");
                    engine
                        .run(&mut client, &dm.program, &req.params, &seq, &mut stats)
                        .unwrap();
                }
                assert_eq!(stats.commits, 25);
            });
        }
    });

    let mut client = cluster.client(0);
    // Money charged to customers…
    let charged: i64 = (0..CUSTOMERS)
        .map(|c| read_int(&mut client, ObjectId::new(CUSTOMER_V, c), TOTAL_SPENT))
        .sum();
    // …must equal the prices of every seat/bed handed out.
    let mut sold = 0i64;
    let mut reservations = 0i64;
    for class in [CAR, FLIGHT, ROOM] {
        for i in 0..POOL {
            let obj = ObjectId::new(class, i);
            let price = read_int(&mut client, obj, PRICE);
            let avail = read_int(&mut client, obj, AVAIL);
            let taken = SEED_AVAIL - avail;
            assert!(taken >= 0, "{obj} availability grew");
            sold += price * taken;
            reservations += taken;
        }
    }
    assert_eq!(
        reservations,
        3 * 100,
        "100 reservations × 3 tables decremented"
    );
    assert_eq!(charged, sold, "customer charges equal items handed out");
    cluster.shutdown();
}

#[test]
fn reservation_money_conserved_flat() {
    run_with(|dm| Arc::new(BlockSeq::flat(dm)));
}

#[test]
fn reservation_money_conserved_per_unit_nesting() {
    run_with(|dm| Arc::new(BlockSeq::from_units(dm)));
}

#[test]
fn reservation_money_conserved_acn_adapted() {
    run_with(|dm| {
        let module = acn_core::AlgorithmModule::with_model(Box::new(acn_core::SumModel));
        // Cars hot: the regime that reorders the reservation blocks.
        let levels = [
            (CAR.id, 9.0),
            (FLIGHT.id, 0.5),
            (ROOM.id, 0.5),
            (CUSTOMER_V.id, 0.2),
        ]
        .into_iter()
        .collect();
        Arc::new(module.recompute(dm, &levels))
    });
}
