//! TPC-C consistency invariants across decompositions: whatever Block
//! sequence executes NewOrder, the District counter must equal the number
//! of committed orders, and every committed order's rows must exist.

use acn_core::{
    AcnController, AlgorithmModule, BlockSeq, ControllerConfig, ExecStats, ExecutorEngine, SumModel,
};
use acn_dtm::{Cluster, ClusterConfig, DtmClient, TxnCtx};
use acn_txir::{DependencyModel, ObjectId};
use acn_workloads::schema::{
    DISTRICT, D_NEXT_OID, NEW_ORDER, NO_PENDING, ORDER, ORDER_LINE, O_OL_CNT, STOCK, S_QTY,
};
use acn_workloads::tpcc::{Tpcc, TpccConfig, TpccMix};
use acn_workloads::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

fn read_int(client: &mut DtmClient, obj: ObjectId, field: acn_txir::FieldId) -> i64 {
    let mut ctx = TxnCtx::begin(client);
    ctx.open(client, obj, false).unwrap();
    let v = ctx.get_field(obj, field).as_int().unwrap();
    ctx.commit(client).unwrap();
    v
}

fn run_neworders(
    seq_for: impl Fn(&Arc<DependencyModel>) -> Arc<BlockSeq>,
) -> (Tpcc, Vec<(u64, i64)>) {
    let cfg = TpccConfig {
        warehouses: 1,
        districts_per_warehouse: 2,
        customers_per_district: 10,
        items: 50,
        ol_min: 5,
        ol_max: 5,
    };
    let tpcc = Tpcc::new(cfg, TpccMix::NEW_ORDER);
    let cluster = Cluster::start(ClusterConfig::test(10, 1));
    let mut client = cluster.client(0);
    tpcc.seed(&mut client);

    let dm = Arc::new(DependencyModel::analyze(tpcc.templates()[2].clone()).unwrap());
    let seq = seq_for(&dm);
    let engine = ExecutorEngine::default();
    let mut stats = ExecStats::default();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..30 {
        let req = tpcc.next(&mut rng, 0);
        assert_eq!(req.template, 2, "ol range pinned to 5");
        engine
            .run(&mut client, &dm.program, &req.params, &seq, &mut stats)
            .unwrap();
    }
    assert_eq!(stats.commits, 30);

    // District counters must sum to the committed order count.
    let mut districts = Vec::new();
    let mut total_orders = 0;
    for d in 0..2u64 {
        let next = read_int(
            &mut client,
            ObjectId::new(DISTRICT, tpcc.district_index(0, d)),
            D_NEXT_OID,
        );
        total_orders += next;
        districts.push((tpcc.district_index(0, d), next));
    }
    assert_eq!(total_orders, 30, "district counters track commits");

    // Every allocated order id has its Order, NewOrder and OrderLine rows.
    for &(d_index, next) in &districts {
        for oid in 0..next {
            let order_idx = d_index * 1_000_000 + oid as u64;
            let ol_cnt = read_int(&mut client, ObjectId::new(ORDER, order_idx), O_OL_CNT);
            assert_eq!(ol_cnt, 5, "order {order_idx} line count");
            let pending = read_int(&mut client, ObjectId::new(NEW_ORDER, order_idx), NO_PENDING);
            assert_eq!(pending, 1, "new-order row present");
            for line in 0..5 {
                let amount = read_int(
                    &mut client,
                    ObjectId::new(ORDER_LINE, order_idx * 16 + line),
                    acn_workloads::schema::OL_AMOUNT,
                );
                assert!(amount > 0, "order line priced (items are seeded)");
            }
        }
    }

    // Stock never exceeds its seeded level (decrements + refills only).
    for item in 0..50u64 {
        let q = read_int(
            &mut client,
            ObjectId::new(STOCK, tpcc.stock_index(0, item)),
            S_QTY,
        );
        assert!(q <= 1_000, "stock {item} grew past seed: {q}");
        assert!(q > 0, "stock {item} exhausted below refill floor: {q}");
    }

    cluster.shutdown();
    (tpcc, districts)
}

#[test]
fn neworder_invariants_hold_flat() {
    run_neworders(|dm| Arc::new(BlockSeq::flat(dm)));
}

#[test]
fn neworder_invariants_hold_per_unit_nesting() {
    run_neworders(|dm| Arc::new(BlockSeq::from_units(dm)));
}

#[test]
fn neworder_invariants_hold_acn_adapted() {
    run_neworders(|dm| {
        let controller = AcnController::new(
            Arc::clone(dm),
            AlgorithmModule::with_model(Box::new(SumModel)),
            ControllerConfig::default(),
        );
        // Feed the District-hot levels Fig 4(a) converges to.
        let levels: HashMap<u16, f64> = [
            (DISTRICT.id, 20.0),
            (STOCK.id, 2.0),
            (acn_workloads::schema::ORDER.id, 0.5),
            (acn_workloads::schema::NEW_ORDER.id, 0.5),
            (acn_workloads::schema::ORDER_LINE.id, 0.5),
        ]
        .into();
        controller.refresh_with_levels(&levels);
        let seq = controller.current();
        assert!(seq.len() > 1, "adapted sequence should be nested");
        seq
    });
}
