//! The Vacation benchmark — a STAMP-style travel reservation system.
//!
//! `makeReservation` opens one car, one flight and one room (reserving a
//! seat/bed in each: `avail -= 1`) and charges the customer record with
//! the total price. Which table is hot changes over time: the Fig 4(e)
//! experiment changes the contended objects in the second and fourth time
//! intervals, and QR-ACN must chase the hot spot while the static systems
//! cannot.

use crate::schema::{AVAIL, CAR, CUSTOMER_V, FLIGHT, PRICE, ROOM, TOTAL_SPENT};
use crate::workload::{TxnRequest, Workload};
use acn_txir::{DependencyModel, Program, ProgramBuilder, UnitBlockId, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Vacation workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct VacationConfig {
    /// Pool the hot table draws ids from.
    pub hot_pool: u64,
    /// Pool the cold tables draw ids from.
    pub cold_pool: u64,
    /// Customer pool (always cold — customers are per-user records).
    pub customers: u64,
    /// Percentage of reservation (write) transactions; the rest are
    /// price-query reads.
    pub write_pct: u8,
    /// Cold price-browse lookups per reservation, mirroring STAMP
    /// Vacation's `numQueries`: the client comparison-shops several items
    /// before reserving. These reads are what a full restart wastes.
    pub queries_per_txn: usize,
}

impl Default for VacationConfig {
    fn default() -> Self {
        VacationConfig {
            hot_pool: 4,
            cold_pool: 4096,
            customers: 8192,
            write_pct: 90,
            queries_per_txn: 8,
        }
    }
}

/// The Vacation benchmark. Phase `p` makes table `p % 3` hot
/// (0 = Car, 1 = Flight, 2 = Room).
pub struct Vacation {
    cfg: VacationConfig,
    templates: Vec<Program>,
}

/// makeReservation(car, flight, room, customer, browse…): reserve a car
/// and a flight, comparison-shop `q` further items (independent read-only
/// price lookups, cycling through the three tables), then reserve the
/// room and charge the customer the total price. Parameters:
/// `[car, flight, room, customer, browse_0 … browse_{q−1}]`.
///
/// Source order matters for the experiments: the car and flight opens sit
/// *early* (long exposure under flat execution when those tables are
/// hot), the room open sits late (flat is nearly optimal when rooms are
/// hot) — the asymmetry behind Fig 4(e)'s second- vs fourth-interval
/// behaviour.
fn reserve_template(q: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("vacation/reserve/{q}"), (4 + q) as u16);
    let car = b.open_update(CAR, b.param(0));
    let cp = b.get(car, PRICE);
    let ca = b.get(car, AVAIL);
    let ca2 = b.sub(ca, 1i64);
    b.set(car, AVAIL, ca2);
    let fl = b.open_update(FLIGHT, b.param(1));
    let fp = b.get(fl, PRICE);
    let fa = b.get(fl, AVAIL);
    let fa2 = b.sub(fa, 1i64);
    b.set(fl, AVAIL, fa2);
    // Browse phase: independent price lookups (no cross-item data flow,
    // so the static analysis sees q mutually independent UnitBlocks and
    // ACN is free to reorder them around the reservations).
    for i in 0..q {
        let class = [CAR, FLIGHT, ROOM][i % 3];
        let item = b.open_read(class, b.param((4 + i) as u16));
        let _p = b.get(item, PRICE);
    }
    let rm = b.open_update(ROOM, b.param(2));
    let rp = b.get(rm, PRICE);
    let ra = b.get(rm, AVAIL);
    let ra2 = b.sub(ra, 1i64);
    b.set(rm, AVAIL, ra2);
    let cust = b.open_update(CUSTOMER_V, b.param(3));
    let spent = b.get(cust, TOTAL_SPENT);
    // Accumulate starting from the customer's running total so every sum
    // manages the Customer object: the whole charge computation then lives
    // in the Customer UnitBlock, leaving the three table blocks mutually
    // independent (re-orderable).
    let s1 = b.add(spent, cp);
    let s2 = b.add(s1, fp);
    let s3 = b.add(s2, rp);
    b.set(cust, TOTAL_SPENT, s3);
    b.finish()
}

/// Price query across the three tables (read-only).
fn query_template() -> Program {
    let mut b = ProgramBuilder::new("vacation/query", 3);
    let car = b.open_read(CAR, b.param(0));
    let fl = b.open_read(FLIGHT, b.param(1));
    let rm = b.open_read(ROOM, b.param(2));
    let cp = b.get(car, PRICE);
    let fp = b.get(fl, PRICE);
    let rp = b.get(rm, PRICE);
    let s1 = b.add(cp, fp);
    let _total = b.add(s1, rp);
    b.finish()
}

impl Vacation {
    /// Build the benchmark with explicit parameters.
    pub fn new(cfg: VacationConfig) -> Self {
        Vacation {
            cfg,
            templates: vec![reserve_template(cfg.queries_per_txn), query_template()],
        }
    }

    /// The parameters this instance runs with.
    pub fn config(&self) -> VacationConfig {
        self.cfg
    }

    /// Table pools for a phase: `(car, flight, room)`.
    fn pools(&self, phase: usize) -> (u64, u64, u64) {
        let (h, c) = (self.cfg.hot_pool, self.cfg.cold_pool);
        match phase % 3 {
            0 => (h, c, c),
            1 => (c, h, c),
            _ => (c, c, h),
        }
    }
}

impl Default for Vacation {
    fn default() -> Self {
        Self::new(VacationConfig::default())
    }
}

impl Workload for Vacation {
    fn name(&self) -> &str {
        "vacation"
    }

    fn templates(&self) -> &[Program] {
        &self.templates
    }

    /// Manual QR-CN nesting, tuned by the "programmer" for the *initial*
    /// phase (cars hot): flight and room first, the car block second to
    /// last, the dependent customer charge last. Good at t = 0, stale
    /// after the first hot-set shift.
    fn manual_groups(&self, t: usize, dm: &DependencyModel) -> Vec<Vec<UnitBlockId>> {
        match t {
            0 => {
                let q = self.cfg.queries_per_txn;
                assert_eq!(dm.unit_count(), q + 4);
                // Unit layout: 0 = car, 1 = flight, 2..2+q = browse,
                // 2+q = room, 3+q = customer. The programmer tuned this
                // grouping for the initial phase (cars hot): flight and
                // the browse block first, the hot car block near the end,
                // the dependent customer charge last.
                let mut groups = vec![vec![1]]; // flight
                if q > 0 {
                    groups.push((2..2 + q).collect::<Vec<_>>()); // browse
                }
                groups.push(vec![2 + q]); // room
                groups.push(vec![0]); // car (hot at t1 → late)
                groups.push(vec![3 + q]); // customer
                groups
            }
            1 => {
                // The price sums chain the query's units (each partial sum
                // lives with the latest table it reads), so source order is
                // the only legal single-unit grouping.
                assert_eq!(dm.unit_count(), 3);
                vec![vec![0], vec![1], vec![2]]
            }
            _ => unreachable!("vacation has two templates"),
        }
    }

    fn next(&self, rng: &mut StdRng, phase: usize) -> TxnRequest {
        let (carp, flp, rmp) = self.pools(phase);
        let car = rng.gen_range(0..carp) as i64;
        let fl = rng.gen_range(0..flp) as i64;
        let rm = rng.gen_range(0..rmp) as i64;
        if rng.gen_range(0..100) < self.cfg.write_pct {
            let cust = rng.gen_range(0..self.cfg.customers) as i64;
            let mut params = vec![
                Value::Int(car),
                Value::Int(fl),
                Value::Int(rm),
                Value::Int(cust),
            ];
            // Browse ids always come from the cold pool: window shopping is
            // spread across the whole catalogue.
            for _ in 0..self.cfg.queries_per_txn {
                params.push(Value::Int(rng.gen_range(0..self.cfg.cold_pool) as i64));
            }
            TxnRequest {
                template: 0,
                params,
            }
        } else {
            TxnRequest {
                template: 1,
                params: vec![Value::Int(car), Value::Int(fl), Value::Int(rm)],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn reserve_units_and_dependencies() {
        let q = 8;
        let dm = DependencyModel::analyze(reserve_template(q)).unwrap();
        assert_eq!(dm.unit_count(), q + 4);
        let (car, flight, room, cust) = (0, 1, q + 2, q + 3);
        // The customer charge depends on all three reserved prices.
        let edges = dm.default_unit_edges();
        assert!(edges.contains(&(car, cust)));
        assert!(edges.contains(&(flight, cust)));
        assert!(edges.contains(&(room, cust)));
        // The three reservations are mutually independent …
        assert!(!edges.contains(&(car, flight)));
        assert!(!edges.contains(&(flight, room)));
        // … and so are the browse lookups (no cross-item data flow).
        assert!(!edges.contains(&(2, 3)));
        assert!(!edges.contains(&(3, 4)));
    }

    #[test]
    fn reserve_without_browsing_still_analyzes() {
        let dm = DependencyModel::analyze(reserve_template(0)).unwrap();
        assert_eq!(dm.unit_count(), 4);
    }

    #[test]
    fn manual_groups_are_legal_and_car_late() {
        let v = Vacation::default();
        let q = v.config().queries_per_txn;
        let dm = DependencyModel::analyze(v.templates()[0].clone()).unwrap();
        let groups = v.manual_groups(0, &dm);
        let seq = acn_core::BlockSeq::group_units(&dm, &groups);
        assert_eq!(seq.len(), 5);
        // Car (unit 0) is the penultimate block in the manual layout.
        assert_eq!(seq.block_units[3], vec![0]);
        assert_eq!(seq.block_units[4], vec![q + 3], "customer last");
    }

    #[test]
    fn manual_groups_handle_zero_browse() {
        let v = Vacation::new(VacationConfig {
            queries_per_txn: 0,
            ..VacationConfig::default()
        });
        let dm = DependencyModel::analyze(v.templates()[0].clone()).unwrap();
        let groups = v.manual_groups(0, &dm);
        let seq = acn_core::BlockSeq::group_units(&dm, &groups);
        assert_eq!(seq.len(), 4);
    }

    #[test]
    fn hot_table_rotates_with_phase() {
        let v = Vacation::default();
        assert_eq!(v.pools(0).0, v.config().hot_pool);
        assert_eq!(v.pools(1).1, v.config().hot_pool);
        assert_eq!(v.pools(2).2, v.config().hot_pool);
        assert_eq!(v.pools(3).0, v.config().hot_pool, "wraps around");
    }

    #[test]
    fn generated_ids_respect_pools() {
        let v = Vacation::default();
        let mut rng = StdRng::seed_from_u64(11);
        for phase in 0..3 {
            let (cp, fp, rp) = v.pools(phase);
            for _ in 0..100 {
                let req = v.next(&mut rng, phase);
                let p: Vec<i64> = req.params.iter().map(|x| x.as_int().unwrap()).collect();
                assert!(p[0] < cp as i64);
                assert!(p[1] < fp as i64);
                assert!(p[2] < rp as i64);
            }
        }
    }

    #[test]
    fn query_is_read_only() {
        let p = query_template();
        assert!(p
            .stmts
            .iter()
            .all(|s| !matches!(s, acn_txir::Stmt::SetField { .. })));
        let dm = DependencyModel::analyze(p).unwrap();
        assert_eq!(dm.unit_count(), 3);
    }
}
