//! Batch-ingest execution: conflict-graph waves over the worker pool.
//!
//! Instead of each client thread generating and running its own
//! transactions in a closed loop, a coordinator collects `wave` in-flight
//! transactions at a time, resolves each instance's statically declared
//! read/write sets (cached per template on the [`DependencyModel`]), builds
//! the conflict DAG with [`plan_wave`], and feeds a readiness queue:
//! a transaction becomes dispatchable the moment its conflict indegree
//! drains, so independent transactions run concurrently on the worker
//! threads while conflicting ones execute in arrival order — turning
//! conflicts the static analysis can see into *ordering* instead of
//! aborts.
//!
//! Waves pipeline: [`BatchConfig::overlap`] admits the next wave once the
//! current one is half drained, and the dispatcher links every conflict
//! between a still-unfinished transaction and a newly admitted one as a
//! cross-wave edge, so overlap never loses ordering information. The edge
//! points *from* the old transaction only when it has already started;
//! against a still-pending one the new transaction may go first, which
//! keeps the pipeline's critical path close to the per-wave coloring
//! depth. (Acyclic: a cycle would need a path from a pending job into a
//! running one, and a job only starts after every ancestor finished.)
//!
//! Conflicts the static sets *cannot see* — inexact templates scheduled
//! under [`BatchConfig::speculate_inexact`], which deliberately drops the
//! pessimistic class-level edges — surface at run time as validation or
//! lock aborts. The executor runs with [`ExecutorConfig::speculation`]
//! set, so those mis-speculations are attributed as `SpecPartial` /
//! `SpecFull`, and — in [`SpecMode::Partial`] — recovered by the
//! closed-nesting executor's partial rollback from the offending Block.
//! [`SpecMode::FullRestart`] forces a flat (single-Block) sequence,
//! reproducing Block-STM's re-execute-from-scratch recovery: the ablation
//! the paper never ran.

use crate::driver::{phase_for, Buckets, MergedObs, Plan, ScenarioConfig};
use crate::workload::{TxnRequest, Workload};
use acn_core::{
    conflicts_with, plan_wave_with, BlockSeq, ExecStats, ExecutorConfig, ExecutorEngine,
    InexactPolicy, LatencyHistogram, PredictionOutcome, SpecSets, WaveStats,
};
use acn_dtm::{ClientPool, Cluster};
use acn_obs::{Span, SpanKind, ThreadTraceRow, Tracer, TxnObserver, WindowedSeries};
use acn_txir::{CounterOracle, CounterSite, DependencyModel, PredictedRead, ResolvedAccess};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the executor recovers from a dynamic mis-speculation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecMode {
    /// Closed-nested Block sequences: a missed conflict rolls back only
    /// the offending Block (the paper's partial-rollback machinery).
    Partial,
    /// Flat sequences: every missed conflict re-executes the whole
    /// transaction — Block-STM-style recovery, the ablation baseline.
    FullRestart,
}

/// Batch-mode knobs on [`ScenarioConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Transactions collected per wave.
    pub wave: usize,
    /// Mis-speculation recovery mode.
    pub spec: SpecMode,
    /// Admit the next wave once the current one is half drained instead of
    /// waiting for a full barrier. Conflicts against still-unfinished
    /// transactions become cross-wave edges, so overlap keeps the workers
    /// fed without losing any ordering the static sets can prove.
    pub overlap: bool,
    /// Speculate on inexact pairs: drop the pessimistic class-level edges
    /// for pairs the static analysis could not fully resolve and dispatch
    /// them concurrently. A real collision is caught by the DTM's
    /// validation and repaired per [`SpecMode`] — this is the knob that
    /// turns the scheduler from conservative ordering into speculation
    /// with a partial-rollback safety net.
    pub speculate_inexact: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            wave: 32,
            spec: SpecMode::Partial,
            overlap: true,
            speculate_inexact: false,
        }
    }
}

/// Key of one hot-counter cursor: `(class id, host object index, field)`.
type CounterKey = (u16, u64, u16);

/// The coordinator-side counter predictor: one cursor per hot-counter site,
/// seeded at 0 (the store's never-written default), advanced by each
/// predicted instance's delta, and re-seeded by the workers from
/// `observed + delta` whenever a prediction fails validation — so the
/// cursor resynchronizes with the store within one repair.
type CounterCursors = Mutex<HashMap<CounterKey, i64>>;

/// [`CounterOracle`] over a cursor map: predict the current cursor value
/// and advance it by the instance's delta.
struct CursorOracle<'a> {
    map: &'a mut HashMap<CounterKey, i64>,
}

impl CounterOracle for CursorOracle<'_> {
    fn predict(&mut self, site: &CounterSite) -> Option<i64> {
        let e = self
            .map
            .entry((site.obj.class.id, site.obj.index, site.field.0))
            .or_insert(0);
        let v = *e;
        *e += site.delta;
        Some(v)
    }
}

/// One scheduled transaction in the readiness queue.
struct Job {
    req: TxnRequest,
    /// Successor job indices (already offset into the global job list).
    succs: Vec<usize>,
}

/// Queue state shared between the coordinator and the workers.
struct QueueState {
    jobs: Vec<Job>,
    /// Resolved access set per job, kept for cross-wave edge tests.
    access: Vec<ResolvedAccess>,
    indeg: Vec<usize>,
    /// Dispatched flag per job. A `ready` entry is stale once a cross-wave
    /// edge re-raises the job's indegree or a duplicate push landed;
    /// workers skip entries whose indegree is non-zero or that started.
    started: Vec<bool>,
    ready: VecDeque<usize>,
    /// Indices of admitted-but-unfinished jobs (dispatched or not) — the
    /// set newly admitted waves must be conflict-tested against.
    live: Vec<usize>,
    /// Jobs admitted but not yet completed.
    remaining: usize,
    shutdown: bool,
}

struct Shared {
    q: Mutex<QueueState>,
    /// Workers wait here for ready jobs.
    work: Condvar,
    /// The coordinator waits here for the wave to drain.
    drained: Condvar,
}

/// Everything the wave loop borrows from the scenario runner.
pub(crate) struct BatchRun<'a> {
    pub cfg: &'a ScenarioConfig,
    pub bc: &'a BatchConfig,
    pub workload: &'a dyn Workload,
    pub cluster: &'a Cluster,
    pub dms: &'a [Arc<DependencyModel>],
    pub plan: &'a Plan,
    pub buckets: &'a Buckets,
    pub latency: &'a Mutex<LatencyHistogram>,
    pub failed: &'a AtomicU64,
    pub merged_obs: &'a Mutex<MergedObs>,
    pub merged_spans: &'a Mutex<(Vec<Span>, Vec<ThreadTraceRow>)>,
    pub merged_client: &'a Mutex<(u64, u64)>,
    pub piggyback_classes: &'a [u16],
    pub start: Instant,
    pub deadline_len: Duration,
}

/// Run the batch-scheduled measurement phase: spawn the worker pool, then
/// coordinate waves from the calling thread until the deadline. Returns
/// the per-wave aggregate stats.
pub(crate) fn run_waves(r: &BatchRun<'_>) -> WaveStats {
    let threads = r.cfg.client_threads;
    let pool = ClientPool::new(r.cluster, threads);
    pool.configure(|i, client| {
        if !r.piggyback_classes.is_empty() {
            client.set_piggyback_classes(r.piggyback_classes.to_vec());
        }
        if let Some(h) = &r.cfg.history {
            client.set_history(Arc::clone(h));
        }
        if let Some(o) = r.cfg.obs.filter(|o| o.trace_spans) {
            let node = (r.cfg.cluster.servers + i) as u32;
            client.set_tracer(Tracer::new(r.start, node, i as u64, o.span_capacity));
        }
    });

    // Mis-speculations get the dedicated Spec* attribution.
    let exec = ExecutorConfig {
        speculation: true,
        ..r.cfg.exec
    };
    // The ablation arm: flat sequences so every recovery is a full
    // re-execution, regardless of what the plan would nest.
    let flat: Vec<Arc<BlockSeq>> = match r.bc.spec {
        SpecMode::FullRestart => r
            .dms
            .iter()
            .map(|dm| Arc::new(BlockSeq::flat(dm)))
            .collect(),
        SpecMode::Partial => Vec::new(),
    };

    let shared = Shared {
        q: Mutex::new(QueueState {
            jobs: Vec::new(),
            access: Vec::new(),
            indeg: Vec::new(),
            started: Vec::new(),
            ready: VecDeque::new(),
            live: Vec::new(),
            remaining: 0,
            shutdown: false,
        }),
        work: Condvar::new(),
        drained: Condvar::new(),
    };
    let mut stats = WaveStats::default();
    // Hot-counter cursors shared between the coordinator (prediction) and
    // the workers (mispredict feedback), plus the global mispredict tally.
    let counters: CounterCursors = Mutex::new(HashMap::new());
    let mispredicted = AtomicU64::new(0);

    std::thread::scope(|s| {
        if let Some(plan) = &r.cfg.chaos {
            if !plan.events.is_empty() {
                let net = r.cluster.net().clone();
                let events = plan.events.clone();
                let start = r.start;
                s.spawn(move || net.run_fault_schedule(&events, start));
            }
        }
        for t in 0..threads {
            let shared = &shared;
            let pool = &pool;
            let flat = &flat;
            let counters = &counters;
            let mispredicted = &mispredicted;
            s.spawn(move || worker_loop(r, t, pool, shared, flat, exec, counters, mispredicted));
        }

        // Coordinator: generate, schedule and admit waves until the
        // deadline. One RNG stream makes the generated transaction
        // sequence independent of the worker count.
        let mut rng = StdRng::seed_from_u64(r.cfg.seed);
        // The coordinator's own tracer records one root span per wave; its
        // id band (`threads`) is disjoint from every worker's.
        let mut wave_tracer = r.cfg.obs.filter(|o| o.trace_spans).map(|o| {
            let node = (r.cfg.cluster.servers + threads) as u32;
            Tracer::new(r.start, node, threads as u64, o.span_capacity)
        });
        let hard_deadline = r.start + r.deadline_len;
        loop {
            let elapsed = r.start.elapsed();
            if elapsed >= r.deadline_len {
                break;
            }
            let interval_now = (elapsed.as_nanos() / r.cfg.interval.as_nanos()) as usize;
            let phase = phase_for(r.cfg, interval_now);
            let sched_start = Instant::now();
            let reqs: Vec<TxnRequest> = (0..r.bc.wave)
                .map(|_| r.workload.next(&mut rng, phase))
                .collect();
            let policy = if r.bc.speculate_inexact {
                InexactPolicy::Speculate
            } else {
                InexactPolicy::Order
            };
            // Two-pass predicted resolution. Pass 1 resolves against a
            // scratch copy of the counter cursors (arrival order) just to
            // build the plan; pass 2 re-resolves in execution order —
            // `(layer, arrival)`, the order conflicting clique members
            // actually dispatch — against the real cursors, so the k-th
            // same-counter transaction to *run* predicts the k-th counter
            // value. The plan is reused across passes: permuting predicted
            // values within a counter group preserves its conflict edges
            // (same-counter instances already conflict on the exact,
            // Param-indexed host object itself), and any residual
            // discrepancy is just a mis-speculation the DTM validates and
            // the executor repairs.
            let mut scratch = counters.lock().clone();
            let pass1: Vec<_> = reqs
                .iter()
                .map(|req| {
                    r.dms[req.template]
                        .access
                        .resolve_with(&req.params, &mut CursorOracle { map: &mut scratch })
                })
                .collect();
            let wave = plan_wave_with(&pass1, policy);
            let mut order: Vec<usize> = (0..wave.n).collect();
            order.sort_by_key(|&k| (wave.layer[k], k));
            let mut accesses: Vec<Option<ResolvedAccess>> = (0..wave.n).map(|_| None).collect();
            {
                let mut cursors = counters.lock();
                for &k in &order {
                    accesses[k] = Some(
                        r.dms[reqs[k].template]
                            .access
                            .resolve_with(&reqs[k].params, &mut CursorOracle { map: &mut cursors }),
                    );
                }
            }
            let accesses: Vec<ResolvedAccess> = accesses.into_iter().flatten().collect();
            stats.absorb(&wave);
            if let Some(tr) = wave_tracer.as_mut() {
                tr.record_root(SpanKind::WaveSchedule, sched_start, wave.n as u16);
            }

            let mut q = shared.q.lock();
            let base = q.jobs.len();
            q.indeg.extend(wave.indegree.iter().copied());
            q.started.extend(std::iter::repeat_n(false, wave.n));
            for (k, req) in reqs.into_iter().enumerate() {
                q.jobs.push(Job {
                    req,
                    succs: wave.succs[k].iter().map(|&j| j + base).collect(),
                });
            }
            // Cross-wave edges: every conflict between a new transaction
            // and a still-unfinished earlier one becomes an edge, so
            // overlap pipelines the waves without dropping provable
            // ordering. An already-running earlier transaction must come
            // first; a still-pending one can just as soundly run *after*
            // the newcomer, which avoids chaining each wave's tail to the
            // next wave's head.
            for (k, acc) in accesses.iter().enumerate() {
                for li in 0..q.live.len() {
                    let i = q.live[li];
                    if conflicts_with(&q.access[i], acc, policy) {
                        if q.started[i] {
                            q.jobs[i].succs.push(base + k);
                            q.indeg[base + k] += 1;
                        } else {
                            q.jobs[base + k].succs.push(i);
                            q.indeg[i] += 1;
                        }
                        stats.cross_edges += 1;
                    }
                }
            }
            q.access.extend(accesses);
            for k in 0..wave.n {
                q.live.push(base + k);
                if q.indeg[base + k] == 0 {
                    q.ready.push_back(base + k);
                }
            }
            q.remaining += wave.n;
            shared.work.notify_all();
            // Barrier (or half-barrier under overlap): wait until the wave
            // drains far enough to admit the next one.
            let admit_at = if r.bc.overlap { r.bc.wave / 2 } else { 0 };
            while q.remaining > admit_at {
                if shared.drained.wait_until(&mut q, hard_deadline).timed_out() {
                    break;
                }
            }
        }
        let mut q = shared.q.lock();
        q.shutdown = true;
        shared.work.notify_all();
        drop(q);

        if let Some(tracer) = wave_tracer {
            let (spans, summary) = tracer.drain();
            let mut m = r.merged_spans.lock();
            m.0.extend(spans);
            m.1.push(ThreadTraceRow {
                thread: threads as u64,
                recorded: summary.recorded,
                dropped: summary.dropped,
                capacity: summary.capacity,
            });
        }
    });

    stats.mispredicts = mispredicted.load(Ordering::Relaxed);

    // Every worker has exited: drain the pooled handles.
    for (t, mut client) in pool.into_clients().into_iter().enumerate() {
        if let Some(tracer) = client.take_tracer() {
            let (spans, summary) = tracer.drain();
            let mut m = r.merged_spans.lock();
            m.0.extend(spans);
            m.1.push(ThreadTraceRow {
                thread: t as u64,
                recorded: summary.recorded,
                dropped: summary.dropped,
                capacity: summary.capacity,
            });
        }
        let cs = client.stats();
        let mut m = r.merged_client.lock();
        m.0 += cs.repair_writes_sent;
        m.1 += cs.sync_refusals_seen;
    }
    stats
}

/// One worker: pull ready jobs, execute them on the leased pool handle,
/// then drain successors' indegrees.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    r: &BatchRun<'_>,
    t: usize,
    pool: &ClientPool,
    shared: &Shared,
    flat: &[Arc<BlockSeq>],
    exec: ExecutorConfig,
    counters: &CounterCursors,
    mispredicted: &AtomicU64,
) {
    let engine = ExecutorEngine::with_config(r.cfg.retry, exec);
    let mut stats = ExecStats::default();
    let mut prev = stats;
    let mut hist = LatencyHistogram::new();
    let mut observer = r.cfg.obs.map(TxnObserver::new);
    // Same interval grid as the closed loop, so the merge is exact.
    let mut series = r
        .cfg
        .obs
        .map(|_| WindowedSeries::new(r.cfg.interval.as_nanos() as u64));
    loop {
        let req = {
            let mut q = shared.q.lock();
            let idx = loop {
                if q.shutdown {
                    break None;
                }
                // Pop until a genuinely ready job; entries go stale when a
                // cross-wave edge re-raises an indegree or a job was
                // pushed twice (each drain to zero pushes).
                let mut found = None;
                while let Some(i) = q.ready.pop_front() {
                    if q.indeg[i] == 0 && !q.started[i] {
                        found = Some(i);
                        break;
                    }
                }
                if found.is_some() {
                    break found;
                }
                shared.work.wait(&mut q);
            };
            idx.map(|i| {
                q.started[i] = true;
                let acc = &q.access[i];
                // Exact instances carry their full resolved access plan
                // (`reads` includes updates) so the executor can fetch it
                // in one speculative round instead of per-Block prefetch
                // plus one round per Var-indexed open. Value-blind writes
                // are carved out of the fetch set entirely: the executor
                // opens them with no read round at all.
                let sets = if acc.exact {
                    let mut fetch = acc.reads.clone();
                    fetch.retain(|o| acc.blind.binary_search(o).is_err());
                    SpecSets {
                        fetch,
                        blind: acc.blind.clone(),
                    }
                } else {
                    SpecSets::default()
                };
                (i, q.jobs[i].req.clone(), acc.predicted.clone(), sets)
            })
        };
        let Some((idx, req, preds, spec)) = req else {
            break;
        };
        let job_start = r.start.elapsed();

        let dm = &r.dms[req.template];
        let seq = match r.bc.spec {
            SpecMode::FullRestart => Arc::clone(&flat[req.template]),
            SpecMode::Partial => match r.plan {
                Plan::Fixed(seqs) => Arc::clone(&seqs[req.template]),
                Plan::Acn(ctrls) => {
                    let c = &ctrls[req.template];
                    let mut client = pool.lease(t);
                    c.maybe_refresh(&mut client);
                    c.current()
                }
            },
        };
        {
            let mut client = pool.lease(t);
            if let Some(tr) = client.tracer_mut() {
                tr.start_txn(req.template as u16);
            }
            let res = if preds.is_empty() && spec.fetch.is_empty() && spec.blind.is_empty() {
                engine.run_timed_observed(
                    &mut client,
                    &dm.program,
                    &req.params,
                    &seq,
                    &mut stats,
                    &mut hist,
                    observer.as_mut(),
                )
            } else {
                let mut outcome = PredictionOutcome::default();
                // Mispredict re-resolution: re-run the symbolic access
                // resolution with observed counter values substituted for
                // the failed predictions (latest observation per site
                // wins, untouched sites keep their scheduled prediction),
                // so the executor refetches the *corrected* access set in
                // one batched round instead of paying one remote read per
                // derived open that now misses the speculative cache.
                let respec = |seen: &[(PredictedRead, i64)]| -> Option<SpecSets> {
                    struct Observed<'a> {
                        seen: &'a [(PredictedRead, i64)],
                        preds: &'a [PredictedRead],
                    }
                    impl CounterOracle for Observed<'_> {
                        fn predict(&mut self, site: &CounterSite) -> Option<i64> {
                            let at =
                                |p: &&PredictedRead| p.obj == site.obj && p.field == site.field;
                            Some(
                                self.seen
                                    .iter()
                                    .rev()
                                    .find(|(p, _)| p.obj == site.obj && p.field == site.field)
                                    .map(|(_, v)| *v)
                                    .or_else(|| self.preds.iter().find(at).map(|p| p.value))
                                    // A site no index depends on: its value
                                    // cannot change the resolved sets.
                                    .unwrap_or(0),
                            )
                        }
                    }
                    let r = dm.access.resolve_with(
                        &req.params,
                        &mut Observed {
                            seen,
                            preds: &preds,
                        },
                    );
                    if !r.exact {
                        return None;
                    }
                    let mut fetch = r.reads;
                    fetch.retain(|o| r.blind.binary_search(o).is_err());
                    Some(SpecSets {
                        fetch,
                        blind: r.blind,
                    })
                };
                let res = engine.run_predicted(
                    &mut client,
                    &dm.program,
                    &req.params,
                    &seq,
                    &preds,
                    &spec.fetch,
                    &spec.blind,
                    Some(&respec),
                    &mut stats,
                    &mut hist,
                    observer.as_mut(),
                    &mut outcome,
                );
                if !outcome.mispredicts.is_empty() {
                    mispredicted.fetch_add(outcome.mispredicts.len() as u64, Ordering::Relaxed);
                    // Re-seed the coordinator's cursor from what the store
                    // actually held, plus this instance's own advance —
                    // the next wave predicts correctly again.
                    let mut map = counters.lock();
                    for (p, observed) in &outcome.mispredicts {
                        map.insert((p.obj.class.id, p.obj.index, p.field.0), observed + p.delta);
                    }
                }
                res
            };
            if let Some(tr) = client.tracer_mut() {
                tr.end_txn(res.is_ok());
            }
            if let Err(e) = res {
                if r.cfg.chaos.is_some() {
                    r.failed.fetch_add(1, Ordering::Relaxed);
                } else {
                    panic!("batch transaction failed: {e}");
                }
            }
        }
        // Attribute to the completion window, exactly like the closed loop.
        let done = r.start.elapsed();
        let idx_w =
            ((done.as_nanos() / r.cfg.interval.as_nanos()) as usize).min(r.cfg.intervals - 1);
        r.buckets.commits[idx_w].fetch_add(stats.commits - prev.commits, Ordering::Relaxed);
        r.buckets.fulls[idx_w].fetch_add(stats.full_aborts - prev.full_aborts, Ordering::Relaxed);
        r.buckets.partials[idx_w].fetch_add(
            stats.partial_aborts - prev.partial_aborts,
            Ordering::Relaxed,
        );
        r.buckets.locked[idx_w]
            .fetch_add(stats.locked_aborts - prev.locked_aborts, Ordering::Relaxed);
        r.buckets.unavail[idx_w].fetch_add(
            stats.unavailable_retries - prev.unavailable_retries,
            Ordering::Relaxed,
        );
        if let Some(series) = series.as_mut() {
            let at_ns = done.as_nanos() as u64;
            if stats.commits > prev.commits {
                series.record_commit(at_ns, (done - job_start).as_nanos() as u64);
            }
            let fulls =
                (stats.full_aborts - prev.full_aborts) + (stats.locked_aborts - prev.locked_aborts);
            let partials = stats.partial_aborts - prev.partial_aborts;
            if fulls + partials > 0 {
                series.record_aborts(at_ns, fulls, partials);
            }
        }
        prev = stats;

        let mut q = shared.q.lock();
        let succs = std::mem::take(&mut q.jobs[idx].succs);
        for sdx in succs {
            q.indeg[sdx] -= 1;
            if q.indeg[sdx] == 0 {
                q.ready.push_back(sdx);
                shared.work.notify_one();
            }
        }
        if let Some(p) = q.live.iter().position(|&i| i == idx) {
            q.live.swap_remove(p);
        }
        q.remaining -= 1;
        shared.drained.notify_one();
    }
    r.latency.lock().merge(&hist);
    if let Some(obs) = &observer {
        let mut m = r.merged_obs.lock();
        let m = &mut *m;
        obs.merge_into(&mut m.aborts, &mut m.trace, &mut m.work);
        if let Some(series) = &series {
            m.series.merge(series);
        }
    }
}
