//! Object classes and field ids for every benchmark.
//!
//! Class ids are globally unique so the benchmarks can share a cluster
//! (and so contention queries never alias across benchmarks).

use acn_txir::{FieldId, ObjClass};

// ---- Bank ----------------------------------------------------------------
/// Bank branch — few objects, hot under the default phase.
pub const BRANCH: ObjClass = ObjClass::new(1, "Branch");
/// Bank account — many objects, cold under the default phase.
pub const ACCOUNT: ObjClass = ObjClass::new(2, "Account");
/// Balance field shared by Branch and Account.
pub const BAL: FieldId = FieldId(0);

// ---- Vacation ------------------------------------------------------------
/// Vacation rental cars table.
pub const CAR: ObjClass = ObjClass::new(10, "Car");
/// Vacation flights table.
pub const FLIGHT: ObjClass = ObjClass::new(11, "Flight");
/// Vacation hotel rooms table.
pub const ROOM: ObjClass = ObjClass::new(12, "Room");
/// Vacation customer records.
pub const CUSTOMER_V: ObjClass = ObjClass::new(13, "VCustomer");
/// Item price (Vacation tables).
pub const PRICE: FieldId = FieldId(0);
/// Remaining availability (Vacation tables).
pub const AVAIL: FieldId = FieldId(1);
/// Customer running total (Vacation).
pub const TOTAL_SPENT: FieldId = FieldId(2);

// ---- TPC-C ---------------------------------------------------------------
/// TPC-C warehouse rows (very few ⇒ hot under Payment).
pub const WAREHOUSE: ObjClass = ObjClass::new(20, "Warehouse");
/// TPC-C district rows (order-id counters ⇒ hot under NewOrder).
pub const DISTRICT: ObjClass = ObjClass::new(21, "District");
/// TPC-C customer rows.
pub const CUSTOMER: ObjClass = ObjClass::new(22, "Customer");
/// TPC-C item catalogue (read-only).
pub const ITEM: ObjClass = ObjClass::new(23, "Item");
/// TPC-C per-warehouse stock rows.
pub const STOCK: ObjClass = ObjClass::new(24, "Stock");
/// TPC-C order rows (inserted by NewOrder).
pub const ORDER: ObjClass = ObjClass::new(25, "Order");
/// TPC-C new-order queue rows.
pub const NEW_ORDER: ObjClass = ObjClass::new(26, "NewOrder");
/// TPC-C order-line rows.
pub const ORDER_LINE: ObjClass = ObjClass::new(27, "OrderLine");
/// TPC-C payment history rows (insert-only).
pub const HISTORY: ObjClass = ObjClass::new(28, "History");

/// Warehouse sales tax.
pub const W_TAX: FieldId = FieldId(0);
/// Warehouse year-to-date total.
pub const W_YTD: FieldId = FieldId(1);
/// District sales tax.
pub const D_TAX: FieldId = FieldId(0);
/// District next-order-id counter — the NewOrder hot spot.
pub const D_NEXT_OID: FieldId = FieldId(2);
/// District year-to-date total.
pub const D_YTD: FieldId = FieldId(1);
/// Customer discount percentage.
pub const C_DISCOUNT: FieldId = FieldId(0);
/// Customer balance.
pub const C_BALANCE: FieldId = FieldId(1);
/// Customer delivery count.
pub const C_DELIV_CNT: FieldId = FieldId(2);
/// Item price.
pub const I_PRICE: FieldId = FieldId(0);
/// Stock quantity on hand.
pub const S_QTY: FieldId = FieldId(0);
/// Stock year-to-date ordered.
pub const S_YTD: FieldId = FieldId(1);
/// Order line count.
pub const O_OL_CNT: FieldId = FieldId(0);
/// Order carrier id (set by Delivery).
pub const O_CARRIER: FieldId = FieldId(1);
/// Ordering customer.
pub const O_CUSTOMER: FieldId = FieldId(2);
/// Order total amount.
pub const O_TOTAL: FieldId = FieldId(3);
/// New-order pending flag (cleared by Delivery).
pub const NO_PENDING: FieldId = FieldId(0);
/// Order line item id.
pub const OL_ITEM: FieldId = FieldId(0);
/// Order line amount.
pub const OL_AMOUNT: FieldId = FieldId(1);
/// Order line delivery date.
pub const OL_DELIV_D: FieldId = FieldId(2);
/// History payment amount.
pub const H_AMOUNT: FieldId = FieldId(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ids_are_unique() {
        let ids = [
            BRANCH.id,
            ACCOUNT.id,
            CAR.id,
            FLIGHT.id,
            ROOM.id,
            CUSTOMER_V.id,
            WAREHOUSE.id,
            DISTRICT.id,
            CUSTOMER.id,
            ITEM.id,
            STOCK.id,
            ORDER.id,
            NEW_ORDER.id,
            ORDER_LINE.id,
            HISTORY.id,
        ];
        let set: std::collections::HashSet<u16> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len());
    }
}
