//! The workload abstraction consumed by the driver.

use acn_dtm::{DtmClient, DtmError, TxnCtx};
use acn_txir::{DependencyModel, Program, UnitBlockId, Value};
use rand::rngs::StdRng;

/// Attempts [`seed_txn`] makes before declaring the cluster unseedable.
const SEED_RETRIES: usize = 50;

/// Run one seeding transaction to completion, retrying transient aborts.
///
/// Seeding runs before any network fault plan is installed, but
/// *storage* fault injection is live from cluster start: a replica whose
/// WAL append failed refuses prepare votes until its next successful
/// sync, which can transiently abort a seed commit. Retrying with a
/// fresh context is what a loader does; reads hold no locks and an
/// aborted 2PC round releases its own, so dropping the failed context
/// is enough. Panics after [`SEED_RETRIES`] consecutive failures — a
/// seeder that cannot commit at all means the cluster is genuinely down.
pub fn seed_txn(
    client: &mut DtmClient,
    body: impl Fn(&mut DtmClient, &mut TxnCtx) -> Result<(), DtmError>,
) {
    let mut last = None;
    for _ in 0..SEED_RETRIES {
        let mut ctx = TxnCtx::begin(client);
        let outcome = body(client, &mut ctx).and_then(|()| ctx.commit(client));
        match outcome {
            Ok(()) => return,
            Err(e) => last = Some(e),
        }
    }
    panic!("seeding could not commit after {SEED_RETRIES} attempts: {last:?}");
}

/// One transaction to execute: which template and with which parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnRequest {
    /// Index into [`Workload::templates`].
    pub template: usize,
    /// Parameter bindings for this instance.
    pub params: Vec<Value>,
}

/// A benchmark: a fixed set of transaction templates plus a generator of
/// transaction instances. `phase` indexes the contention regime — the
/// driver advances it per the scenario's schedule to reproduce the paper's
/// hot-set shifts (Fig 4(e)/(f)).
pub trait Workload: Send + Sync {
    /// Short benchmark name.
    fn name(&self) -> &str;

    /// The transaction templates, analyzed once by the Static Module.
    fn templates(&self) -> &[Program];

    /// The "programmer's" manual closed-nesting decomposition of template
    /// `t` — the QR-CN baseline. Groups are UnitBlock ids in execution
    /// order and must satisfy the template's dependencies.
    fn manual_groups(&self, t: usize, dm: &DependencyModel) -> Vec<Vec<UnitBlockId>>;

    /// Generate the next transaction instance under contention phase
    /// `phase`.
    fn next(&self, rng: &mut StdRng, phase: usize) -> TxnRequest;

    /// Populate initial state before measurement (default: nothing — the
    /// store materialises objects lazily).
    fn seed(&self, _client: &mut DtmClient) {}
}
