//! The workload abstraction consumed by the driver.

use acn_dtm::DtmClient;
use acn_txir::{DependencyModel, Program, UnitBlockId, Value};
use rand::rngs::StdRng;

/// One transaction to execute: which template and with which parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnRequest {
    /// Index into [`Workload::templates`].
    pub template: usize,
    /// Parameter bindings for this instance.
    pub params: Vec<Value>,
}

/// A benchmark: a fixed set of transaction templates plus a generator of
/// transaction instances. `phase` indexes the contention regime — the
/// driver advances it per the scenario's schedule to reproduce the paper's
/// hot-set shifts (Fig 4(e)/(f)).
pub trait Workload: Send + Sync {
    /// Short benchmark name.
    fn name(&self) -> &str;

    /// The transaction templates, analyzed once by the Static Module.
    fn templates(&self) -> &[Program];

    /// The "programmer's" manual closed-nesting decomposition of template
    /// `t` — the QR-CN baseline. Groups are UnitBlock ids in execution
    /// order and must satisfy the template's dependencies.
    fn manual_groups(&self, t: usize, dm: &DependencyModel) -> Vec<Vec<UnitBlockId>>;

    /// Generate the next transaction instance under contention phase
    /// `phase`.
    fn next(&self, rng: &mut StdRng, phase: usize) -> TxnRequest;

    /// Populate initial state before measurement (default: nothing — the
    /// store materialises objects lazily).
    fn seed(&self, _client: &mut DtmClient) {}
}
