//! The Bank benchmark — §V-A / Figures 1–3 of the paper.
//!
//! A transfer moves funds between two accounts belonging to two branches.
//! Branch objects are "globally shared objects for their respective
//! branches, hence, other transactions will also access them. Thus, at
//! run-time, they will be highly contended. On the other hand, objects
//! Account1 and Account2 will have low contention." The template is
//! written exactly in Figure 1's flat order — branch operations first —
//! which is the order ACN must learn to invert.
//!
//! Contention phases (Fig 4(f)): in even phases branches are drawn from a
//! small hot pool and accounts from a large cold pool; odd phases swap the
//! pools, moving the hot spot to the accounts.

use crate::schema::{ACCOUNT, BAL, BRANCH};
use crate::workload::{TxnRequest, Workload};
use acn_txir::{ComputeOp, DependencyModel, Program, ProgramBuilder, UnitBlockId, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Bank workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct BankConfig {
    /// Size of the hot pool the contended class draws from.
    pub hot_pool: u64,
    /// Size of the cold pool the uncontended class draws from.
    pub cold_pool: u64,
    /// Percentage of write (transfer) transactions; the rest are balance
    /// queries.
    pub write_pct: u8,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            hot_pool: 4,
            cold_pool: 4096,
            write_pct: 90,
        }
    }
}

/// The Bank benchmark.
pub struct Bank {
    cfg: BankConfig,
    templates: Vec<Program>,
}

/// Figure 1: branch1/branch2 withdraw+deposit, then account1/account2.
fn transfer_template() -> Program {
    let mut b = ProgramBuilder::new("bank/transfer", 5);
    let amt = b.param(4);
    let br1 = b.open_update(BRANCH, b.param(0));
    let br2 = b.open_update(BRANCH, b.param(1));
    let v1 = b.get(br1, BAL);
    let n1 = b.sub(v1, amt);
    b.set(br1, BAL, n1); // branch1.withdraw(amt)
    let v2 = b.get(br2, BAL);
    let n2 = b.add(v2, amt);
    b.set(br2, BAL, n2); // branch2.deposit(amt)
    let a1 = b.open_update(ACCOUNT, b.param(2));
    let a2 = b.open_update(ACCOUNT, b.param(3));
    let w1 = b.get(a1, BAL);
    let m1 = b.sub(w1, amt);
    b.set(a1, BAL, m1); // account1.withdraw(amt)
    let w2 = b.get(a2, BAL);
    let m2 = b.add(w2, amt);
    b.set(a2, BAL, m2); // account2.deposit(amt)
    b.finish()
}

/// Read-only balance audit over the same four objects.
fn audit_template() -> Program {
    let mut b = ProgramBuilder::new("bank/audit", 4);
    let br1 = b.open_read(BRANCH, b.param(0));
    let br2 = b.open_read(BRANCH, b.param(1));
    let a1 = b.open_read(ACCOUNT, b.param(2));
    let a2 = b.open_read(ACCOUNT, b.param(3));
    let v1 = b.get(br1, BAL);
    let v2 = b.get(br2, BAL);
    let v3 = b.get(a1, BAL);
    let v4 = b.get(a2, BAL);
    let s1 = b.add(v1, v2);
    let s2 = b.add(v3, v4);
    let _sum = b.compute(ComputeOp::Add, [s1.into(), s2.into()]);
    b.finish()
}

impl Bank {
    /// Build the benchmark with explicit parameters.
    pub fn new(cfg: BankConfig) -> Self {
        Bank {
            cfg,
            templates: vec![transfer_template(), audit_template()],
        }
    }

    /// The parameters this instance runs with.
    pub fn config(&self) -> BankConfig {
        self.cfg
    }

    /// Pool sizes per phase: `(branch_pool, account_pool)`.
    fn pools(&self, phase: usize) -> (u64, u64) {
        if phase.is_multiple_of(2) {
            (self.cfg.hot_pool, self.cfg.cold_pool)
        } else {
            (self.cfg.cold_pool, self.cfg.hot_pool)
        }
    }

    fn distinct_pair(rng: &mut StdRng, pool: u64) -> (u64, u64) {
        let a = rng.gen_range(0..pool);
        if pool == 1 {
            return (a, a);
        }
        let b = (a + 1 + rng.gen_range(0..pool - 1)) % pool;
        (a, b)
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new(BankConfig::default())
    }
}

impl Workload for Bank {
    fn name(&self) -> &str {
        "bank"
    }

    fn templates(&self) -> &[Program] {
        &self.templates
    }

    /// The manual QR-CN decomposition: the programmer wraps the branch
    /// operations and the account operations in two sub-transactions, in
    /// the source (Figure 1) order — branches first. Sensible, but blind
    /// to run-time contention.
    fn manual_groups(&self, t: usize, dm: &DependencyModel) -> Vec<Vec<UnitBlockId>> {
        assert_eq!(dm.unit_count(), 4, "bank templates open four objects");
        match t {
            0 | 1 => vec![vec![0, 1], vec![2, 3]],
            _ => unreachable!("bank has two templates"),
        }
    }

    fn next(&self, rng: &mut StdRng, phase: usize) -> TxnRequest {
        let (branch_pool, account_pool) = self.pools(phase);
        let (b1, b2) = Self::distinct_pair(rng, branch_pool);
        let (a1, a2) = Self::distinct_pair(rng, account_pool);
        if rng.gen_range(0..100) < self.cfg.write_pct {
            let amt = rng.gen_range(1..100i64);
            TxnRequest {
                template: 0,
                params: vec![
                    Value::Int(b1 as i64),
                    Value::Int(b2 as i64),
                    Value::Int(a1 as i64),
                    Value::Int(a2 as i64),
                    Value::Int(amt),
                ],
            }
        } else {
            TxnRequest {
                template: 1,
                params: vec![
                    Value::Int(b1 as i64),
                    Value::Int(b2 as i64),
                    Value::Int(a1 as i64),
                    Value::Int(a2 as i64),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn transfer_has_four_units_in_figure1_order() {
        let dm = DependencyModel::analyze(transfer_template()).unwrap();
        assert_eq!(dm.unit_count(), 4);
        assert_eq!(dm.units[0].classes, vec![BRANCH]);
        assert_eq!(dm.units[1].classes, vec![BRANCH]);
        assert_eq!(dm.units[2].classes, vec![ACCOUNT]);
        assert_eq!(dm.units[3].classes, vec![ACCOUNT]);
        // Branch and account halves are mutually independent — the property
        // code repositioning exploits.
        assert!(dm.default_unit_edges().is_empty());
    }

    #[test]
    fn audit_is_read_only() {
        let p = audit_template();
        assert!(p
            .stmts
            .iter()
            .all(|s| !matches!(s, acn_txir::Stmt::SetField { .. })));
    }

    #[test]
    fn manual_groups_are_legal() {
        let bank = Bank::default();
        for t in 0..2 {
            let dm = DependencyModel::analyze(bank.templates()[t].clone()).unwrap();
            let groups = bank.manual_groups(t, &dm);
            // group_units validates the partition and dependency order.
            let seq = acn_core::BlockSeq::group_units(&dm, &groups);
            assert_eq!(seq.len(), 2);
        }
    }

    #[test]
    fn phase_swaps_hot_pools() {
        let bank = Bank::default();
        assert_eq!(bank.pools(0), (4, 4096));
        assert_eq!(bank.pools(1), (4096, 4));
        assert_eq!(bank.pools(2), (4, 4096));
    }

    #[test]
    fn generated_params_are_in_pool_range() {
        let bank = Bank::default();
        let mut rng = StdRng::seed_from_u64(7);
        for phase in 0..2 {
            for _ in 0..200 {
                let req = bank.next(&mut rng, phase);
                let (bp, ap) = bank.pools(phase);
                let p: Vec<i64> = req.params.iter().map(|v| v.as_int().unwrap()).collect();
                assert!(p[0] < bp as i64 && p[1] < bp as i64);
                assert!(p[2] < ap as i64 && p[3] < ap as i64);
                if req.template == 0 {
                    assert!(p[4] > 0);
                }
            }
        }
    }

    #[test]
    fn write_mix_matches_config() {
        let bank = Bank::new(BankConfig {
            write_pct: 50,
            ..BankConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let writes = (0..1000)
            .filter(|_| bank.next(&mut rng, 0).template == 0)
            .count();
        assert!((350..650).contains(&writes), "writes = {writes}");
    }

    #[test]
    fn distinct_pair_never_aliases_in_big_pools() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let (a, b) = Bank::distinct_pair(&mut rng, 16);
            assert_ne!(a, b);
            assert!(a < 16 && b < 16);
        }
        let (a, b) = Bank::distinct_pair(&mut rng, 1);
        assert_eq!((a, b), (0, 0));
    }
}
