#![warn(missing_docs)]

//! # acn-workloads — benchmarks and the measurement driver
//!
//! Rust ports of the three benchmarks the paper evaluates with, expressed
//! as `acn-txir` transaction templates, plus the multi-client driver that
//! measures throughput per time interval for the three systems under
//! comparison (QR-DTM flat, QR-CN manual closed nesting, QR-ACN):
//!
//! * [`bank`] — the Bank application of §V-A/Figures 1–3: transfers touch
//!   two globally-shared **branch** objects (hot) and two **account**
//!   objects (cold); contention-shift phases swap the hot class.
//! * [`vacation`] — STAMP Vacation-style reservations over car / flight /
//!   room tables plus a customer record; the hot table rotates across
//!   phases as in the Fig 4(e) experiment.
//! * [`tpcc`] — TPC-C order processing with the transaction profiles the
//!   paper exercises: **NewOrder** (District hot), **Payment** (Warehouse
//!   and District hot), **Delivery** (uniformly low contention) and the
//!   50/50 NewOrder+Payment mix.
//! * [`driver`] — spawns a cluster and client threads, runs a workload for
//!   a configured number of measurement intervals, applies the phase
//!   schedule (hot-set shifts) and collects per-interval commit/abort
//!   counts — the data behind every subplot of Figure 4.

pub mod bank;
mod batch;
pub mod driver;
pub mod schema;
pub mod tpcc;
pub mod vacation;
mod workload;

pub use batch::{BatchConfig, SpecMode};
pub use driver::{
    run_scenario, IntervalStats, ScenarioConfig, ScenarioObs, ScenarioResult, SloConfig, SystemKind,
};
pub use workload::{seed_txn, TxnRequest, Workload};
