//! The measurement driver: cluster + client threads + per-interval stats.
//!
//! Reproduces the paper's methodology: "We measured the throughput on
//! client nodes as transactions committed per second. […] We ran QR-ACN's
//! algorithm for assessing the effectiveness of the current closed nesting
//! configuration every 10 seconds, and measured the system throughput for
//! every 10 second time interval." Intervals are scaled down together with
//! the network latency; hot-set shifts are expressed as a phase index per
//! interval.

use crate::workload::Workload;
use acn_core::{
    AcnController, AlgorithmModule, BlockSeq, ContentionModel, ControllerConfig, ExecStats,
    ExecutorConfig, ExecutorEngine, LatencyHistogram, RetryPolicy, StaticModule, SumModel,
};
use acn_dtm::{Cluster, ClusterConfig, HistoryLog};
use acn_simnet::FaultPlan;
use acn_txir::DependencyModel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which of the three evaluated systems executes the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Flat nesting — the QR-DTM baseline.
    QrDtm,
    /// Manual closed nesting — the QR-CN baseline
    /// ([`Workload::manual_groups`]).
    QrCn,
    /// Automated closed nesting — the paper's contribution.
    QrAcn,
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemKind::QrDtm => write!(f, "QR-DTM"),
            SystemKind::QrCn => write!(f, "QR-CN"),
            SystemKind::QrAcn => write!(f, "QR-ACN"),
        }
    }
}

/// Scenario shape.
pub struct ScenarioConfig {
    /// Cluster shape and network parameters.
    pub cluster: ClusterConfig,
    /// Client threads (≤ `cluster.clients`).
    pub client_threads: usize,
    /// Number of measurement windows.
    pub intervals: usize,
    /// Window length (the paper's "10 second time interval", scaled).
    pub interval: Duration,
    /// Contention phase per interval index; shorter vectors repeat their
    /// last entry, an empty vector means phase 0 throughout.
    pub phase_per_interval: Vec<usize>,
    /// Which system executes the workload.
    pub system: SystemKind,
    /// ACN controller tuning (ignored by the baselines).
    pub controller: ControllerConfig,
    /// Executor retry policy.
    pub retry: RetryPolicy,
    /// Executor path toggles (batched reads on by default).
    pub exec: ExecutorConfig,
    /// Base RNG seed (thread `i` uses `seed + i`).
    pub seed: u64,
    /// Deterministic fault plan installed *after* seeding (the initial
    /// state is always loaded on a healthy network). When set, worker
    /// threads tolerate terminal transaction failures — a fault window can
    /// legitimately exhaust a retry policy — and count them into
    /// [`ScenarioResult::failed`] instead of panicking.
    pub chaos: Option<FaultPlan>,
    /// When set, every client (the seeder included) appends its committed
    /// read/write versions here for the serializability checker.
    pub history: Option<Arc<HistoryLog>>,
}

impl ScenarioConfig {
    /// A scaled-down default: paper-shaped cluster, `threads` clients,
    /// six 200 ms intervals.
    pub fn scaled(system: SystemKind, threads: usize) -> Self {
        let mut cluster = ClusterConfig::paper(threads.max(1));
        cluster.window.window = Duration::from_millis(100);
        ScenarioConfig {
            cluster,
            client_threads: threads,
            intervals: 6,
            interval: Duration::from_millis(200),
            phase_per_interval: Vec::new(),
            system,
            controller: ControllerConfig {
                period: Duration::from_millis(200),
                alpha: 1.0,
                sampling: acn_core::SamplingMode::Explicit,
            },
            retry: RetryPolicy::default(),
            exec: ExecutorConfig::default(),
            seed: 42,
            chaos: None,
            history: None,
        }
    }
}

/// Commit/abort counts for one measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalStats {
    /// Transactions committed in the window.
    pub commits: u64,
    /// Full restarts absorbed in the window.
    pub full_aborts: u64,
    /// Partial rollbacks absorbed in the window.
    pub partial_aborts: u64,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The system that ran.
    pub system: SystemKind,
    /// Window length used.
    pub interval: Duration,
    /// Per-window counters.
    pub intervals: Vec<IntervalStats>,
    /// Total ACN reconfigurations installed (0 for the baselines).
    pub refreshes: u64,
    /// End-to-end commit latency (includes retries and backoff).
    pub latency: LatencyHistogram,
    /// Transactions that failed terminally (chaos runs only; always 0 on a
    /// healthy cluster, where a terminal failure panics instead).
    pub failed: u64,
}

impl ScenarioResult {
    /// Committed transactions per second in window `i`.
    pub fn throughput(&self, i: usize) -> f64 {
        self.intervals[i].commits as f64 / self.interval.as_secs_f64()
    }

    /// Mean throughput over windows `from..`.
    pub fn mean_throughput_from(&self, from: usize) -> f64 {
        let n = self.intervals.len().saturating_sub(from).max(1);
        let total: u64 = self.intervals[from.min(self.intervals.len())..]
            .iter()
            .map(|w| w.commits)
            .sum();
        total as f64 / (n as f64 * self.interval.as_secs_f64())
    }

    /// Commits across all windows.
    pub fn total_commits(&self) -> u64 {
        self.intervals.iter().map(|w| w.commits).sum()
    }

    /// Partial rollbacks across all windows.
    pub fn total_partial_aborts(&self) -> u64 {
        self.intervals.iter().map(|w| w.partial_aborts).sum()
    }

    /// Full restarts across all windows.
    pub fn total_full_aborts(&self) -> u64 {
        self.intervals.iter().map(|w| w.full_aborts).sum()
    }
}

enum Plan {
    Fixed(Vec<Arc<BlockSeq>>),
    Acn(Vec<Arc<AcnController>>),
}

struct Buckets {
    commits: Vec<AtomicU64>,
    fulls: Vec<AtomicU64>,
    partials: Vec<AtomicU64>,
}

impl Buckets {
    fn new(n: usize) -> Self {
        let make = || (0..n).map(|_| AtomicU64::new(0)).collect();
        Buckets {
            commits: make(),
            fulls: make(),
            partials: make(),
        }
    }
}

fn phase_for(cfg: &ScenarioConfig, interval: usize) -> usize {
    match cfg.phase_per_interval.len() {
        0 => 0,
        n => cfg.phase_per_interval[interval.min(n - 1)],
    }
}

/// Run one scenario and collect per-interval statistics.
///
/// # Panics
/// Without a chaos plan, panics on quorum unavailability or retry
/// exhaustion — scenarios on a healthy cluster treat those as
/// configuration errors. With [`ScenarioConfig::chaos`] set they are
/// counted into [`ScenarioResult::failed`] instead.
pub fn run_scenario(workload: &dyn Workload, cfg: &ScenarioConfig) -> ScenarioResult {
    run_scenario_with_model(workload, cfg, || Box::new(SumModel))
}

/// [`run_scenario`] with a custom contention model factory (ablations).
pub fn run_scenario_with_model(
    workload: &dyn Workload,
    cfg: &ScenarioConfig,
    model: impl Fn() -> Box<dyn ContentionModel>,
) -> ScenarioResult {
    assert!(cfg.client_threads >= 1);
    assert!(
        cfg.client_threads <= cfg.cluster.clients,
        "not enough client slots"
    );
    let cluster = Cluster::start(cfg.cluster.clone());

    // Seed initial state from slot 0 before measurement starts. The seeder
    // records into the history log too — the checker needs the initial
    // versions to account for later reads of them.
    {
        let mut seeder = cluster.client(0);
        if let Some(h) = &cfg.history {
            seeder.set_history(Arc::clone(h));
        }
        workload.seed(&mut seeder);
    }

    // Faults start only after the initial state is fully loaded.
    if let Some(plan) = &cfg.chaos {
        cluster.install_chaos(plan);
    }

    // Static Module: analyze every template once.
    let static_module = StaticModule::new();
    let dms: Vec<Arc<DependencyModel>> = workload
        .templates()
        .iter()
        .map(|p| static_module.analyze(p).expect("workload template invalid"))
        .collect();

    let plan = match cfg.system {
        SystemKind::QrDtm => {
            Plan::Fixed(dms.iter().map(|dm| Arc::new(BlockSeq::flat(dm))).collect())
        }
        SystemKind::QrCn => Plan::Fixed(
            dms.iter()
                .enumerate()
                .map(|(t, dm)| Arc::new(BlockSeq::group_units(dm, &workload.manual_groups(t, dm))))
                .collect(),
        ),
        SystemKind::QrAcn => Plan::Acn(
            dms.iter()
                .map(|dm| {
                    Arc::new(AcnController::new(
                        Arc::clone(dm),
                        AlgorithmModule::with_model(model()),
                        cfg.controller,
                    ))
                })
                .collect(),
        ),
    };

    let buckets = Buckets::new(cfg.intervals);
    let latency = Mutex::new(LatencyHistogram::new());
    let failed = AtomicU64::new(0);
    let deadline_len = cfg.interval * cfg.intervals as u32;
    let start = Instant::now();

    // With piggybacked sampling, every client carries the union of all
    // templates' classes on its remote reads.
    let piggyback_classes: Vec<u16> = match (&plan, cfg.controller.sampling) {
        (Plan::Acn(ctrls), acn_core::SamplingMode::Piggyback) => {
            let mut all: Vec<u16> = ctrls.iter().flat_map(|c| c.classes()).collect();
            all.sort_unstable();
            all.dedup();
            all
        }
        _ => Vec::new(),
    };

    std::thread::scope(|s| {
        // Timed crash/partition events run on a supervisor thread; the
        // schedule ends at its last event, all of which precede the
        // measurement deadline in a sane plan, so the scope's implicit
        // join does not stall.
        if let Some(plan) = &cfg.chaos {
            if !plan.events.is_empty() {
                let net = cluster.net().clone();
                let events = plan.events.clone();
                s.spawn(move || net.run_fault_schedule(&events, start));
            }
        }
        for t in 0..cfg.client_threads {
            let mut client = cluster.client(t);
            if !piggyback_classes.is_empty() {
                client.set_piggyback_classes(piggyback_classes.clone());
            }
            if let Some(h) = &cfg.history {
                client.set_history(Arc::clone(h));
            }
            let buckets = &buckets;
            let latency = &latency;
            let failed = &failed;
            let plan = &plan;
            let dms = &dms;
            let engine = ExecutorEngine::with_config(cfg.retry, cfg.exec);
            let mut rng = StdRng::seed_from_u64(cfg.seed + t as u64);
            s.spawn(move || {
                let mut stats = ExecStats::default();
                let mut hist = LatencyHistogram::new();
                let mut prev = stats;
                loop {
                    let elapsed = start.elapsed();
                    if elapsed >= deadline_len {
                        break;
                    }
                    let interval_now = (elapsed.as_nanos() / cfg.interval.as_nanos()) as usize;
                    let phase = phase_for(cfg, interval_now);
                    let req = workload.next(&mut rng, phase);
                    let dm = &dms[req.template];
                    let seq = match plan {
                        Plan::Fixed(seqs) => Arc::clone(&seqs[req.template]),
                        Plan::Acn(ctrls) => {
                            let c = &ctrls[req.template];
                            c.maybe_refresh(&mut client);
                            c.current()
                        }
                    };
                    if let Err(e) = engine.run_timed(
                        &mut client,
                        &dm.program,
                        &req.params,
                        &seq,
                        &mut stats,
                        &mut hist,
                    ) {
                        if cfg.chaos.is_some() {
                            // A fault window can legitimately starve this
                            // client; count it and keep the thread alive so
                            // progress resumes once the faults heal.
                            failed.fetch_add(1, Ordering::Relaxed);
                        } else {
                            panic!("scenario transaction failed: {e}");
                        }
                    }
                    // Attribute the commit (and the aborts it absorbed) to
                    // the window in which it completed.
                    let done = start.elapsed();
                    let idx = ((done.as_nanos() / cfg.interval.as_nanos()) as usize)
                        .min(cfg.intervals - 1);
                    buckets.commits[idx].fetch_add(stats.commits - prev.commits, Ordering::Relaxed);
                    buckets.fulls[idx]
                        .fetch_add(stats.full_aborts - prev.full_aborts, Ordering::Relaxed);
                    buckets.partials[idx].fetch_add(
                        stats.partial_aborts - prev.partial_aborts,
                        Ordering::Relaxed,
                    );
                    prev = stats;
                }
                latency.lock().merge(&hist);
            });
        }
    });

    let refreshes = match &plan {
        Plan::Fixed(_) => 0,
        Plan::Acn(ctrls) => ctrls.iter().map(|c| c.refresh_count()).sum(),
    };
    cluster.shutdown();

    ScenarioResult {
        latency: latency.into_inner(),
        system: cfg.system,
        interval: cfg.interval,
        intervals: (0..cfg.intervals)
            .map(|i| IntervalStats {
                commits: buckets.commits[i].load(Ordering::Relaxed),
                full_aborts: buckets.fulls[i].load(Ordering::Relaxed),
                partial_aborts: buckets.partials[i].load(Ordering::Relaxed),
            })
            .collect(),
        refreshes,
        failed: failed.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::{Bank, BankConfig};
    use acn_simnet::LatencyModel;

    fn tiny(system: SystemKind) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::scaled(system, 2);
        cfg.cluster = ClusterConfig::test(10, 2);
        cfg.cluster.latency = LatencyModel::Zero;
        cfg.cluster.window.window = Duration::from_millis(20);
        cfg.intervals = 3;
        cfg.interval = Duration::from_millis(60);
        cfg.controller.period = Duration::from_millis(40);
        cfg
    }

    #[test]
    fn flat_scenario_commits_in_every_interval() {
        let bank = Bank::new(BankConfig {
            hot_pool: 4,
            cold_pool: 256,
            write_pct: 90,
        });
        let r = run_scenario(&bank, &tiny(SystemKind::QrDtm));
        assert_eq!(r.intervals.len(), 3);
        assert!(r.total_commits() > 0);
        assert_eq!(r.refreshes, 0);
        assert_eq!(r.total_partial_aborts(), 0, "flat cannot partially abort");
    }

    #[test]
    fn manual_cn_scenario_runs() {
        let bank = Bank::default();
        let r = run_scenario(&bank, &tiny(SystemKind::QrCn));
        assert!(r.total_commits() > 0);
        assert_eq!(r.refreshes, 0);
    }

    #[test]
    fn acn_scenario_reconfigures() {
        let bank = Bank::default();
        let r = run_scenario(&bank, &tiny(SystemKind::QrAcn));
        assert!(r.total_commits() > 0);
        assert!(r.refreshes > 0, "controller should fire at least once");
    }

    #[test]
    fn acn_scenario_with_piggybacked_sampling() {
        let bank = Bank::default();
        let mut cfg = tiny(SystemKind::QrAcn);
        cfg.controller.sampling = acn_core::SamplingMode::Piggyback;
        let r = run_scenario(&bank, &cfg);
        assert!(r.total_commits() > 0);
        assert!(r.refreshes > 0, "piggybacked sampling must still refresh");
    }

    #[test]
    fn latency_histogram_covers_every_commit() {
        let bank = Bank::default();
        let r = run_scenario(&bank, &tiny(SystemKind::QrDtm));
        assert_eq!(
            r.latency.len(),
            r.total_commits(),
            "one latency sample per committed transaction"
        );
        let p50 = r.latency.percentile(0.5).unwrap();
        let p99 = r.latency.percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 < Duration::from_secs(5), "sane upper bound: {p99:?}");
    }

    #[test]
    fn phase_schedule_clamps() {
        let cfg = tiny(SystemKind::QrDtm);
        assert_eq!(phase_for(&cfg, 5), 0, "empty schedule is phase 0");
        let mut cfg = cfg;
        cfg.phase_per_interval = vec![0, 1];
        assert_eq!(phase_for(&cfg, 0), 0);
        assert_eq!(phase_for(&cfg, 1), 1);
        assert_eq!(phase_for(&cfg, 9), 1, "repeats the last entry");
    }

    #[test]
    fn throughput_math() {
        let r = ScenarioResult {
            latency: LatencyHistogram::new(),
            system: SystemKind::QrDtm,
            interval: Duration::from_millis(500),
            intervals: vec![
                IntervalStats {
                    commits: 50,
                    full_aborts: 1,
                    partial_aborts: 0,
                },
                IntervalStats {
                    commits: 100,
                    full_aborts: 2,
                    partial_aborts: 3,
                },
            ],
            refreshes: 0,
            failed: 0,
        };
        assert_eq!(r.throughput(0), 100.0);
        assert_eq!(r.throughput(1), 200.0);
        assert_eq!(r.mean_throughput_from(1), 200.0);
        assert_eq!(r.total_commits(), 150);
        assert_eq!(r.total_full_aborts(), 3);
        assert_eq!(r.total_partial_aborts(), 3);
    }
}
