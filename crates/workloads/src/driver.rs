//! The measurement driver: cluster + client threads + per-interval stats.
//!
//! Reproduces the paper's methodology: "We measured the throughput on
//! client nodes as transactions committed per second. […] We ran QR-ACN's
//! algorithm for assessing the effectiveness of the current closed nesting
//! configuration every 10 seconds, and measured the system throughput for
//! every 10 second time interval." Intervals are scaled down together with
//! the network latency; hot-set shifts are expressed as a phase index per
//! interval.

use crate::batch::{run_waves, BatchConfig, BatchRun};
use crate::workload::Workload;
use acn_core::{
    AcnController, AlgorithmModule, BlockSeq, ContentionModel, ControllerConfig, ExecStats,
    ExecutorConfig, ExecutorEngine, LatencyHistogram, RetryPolicy, StaticModule, SumModel,
    WaveStats,
};
use acn_dtm::{Cluster, ClusterConfig, HistoryLog, ServerStats};
use acn_obs::{
    aggregate_critpath, critical_path, record_flight, AbortKind, AbortTable, ContentionLevel,
    CritPathRow, FlightRecord, MetricsRegistry, MetricsReport, NetCounters, ObsConfig,
    RecoveryCounters, SloInputs, SloPolicy, Span, SpanCollector, ThreadTraceRow, TraceSummary,
    Tracer, TxnCritPath, TxnObserver, WindowedSeries, WorkTotals, SERVER_TRACE_THREAD,
};
use acn_simnet::{FaultPlan, NetStatsSnapshot};
use acn_txir::{DependencyModel, ObjClass, Stmt};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which of the three evaluated systems executes the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Flat nesting — the QR-DTM baseline.
    QrDtm,
    /// Manual closed nesting — the QR-CN baseline
    /// ([`Workload::manual_groups`]).
    QrCn,
    /// Automated closed nesting — the paper's contribution.
    QrAcn,
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemKind::QrDtm => write!(f, "QR-DTM"),
            SystemKind::QrCn => write!(f, "QR-CN"),
            SystemKind::QrAcn => write!(f, "QR-ACN"),
        }
    }
}

/// Scenario shape.
pub struct ScenarioConfig {
    /// Cluster shape and network parameters.
    pub cluster: ClusterConfig,
    /// Client threads (≤ `cluster.clients`).
    pub client_threads: usize,
    /// Number of measurement windows.
    pub intervals: usize,
    /// Window length (the paper's "10 second time interval", scaled).
    pub interval: Duration,
    /// Contention phase per interval index; shorter vectors repeat their
    /// last entry, an empty vector means phase 0 throughout.
    pub phase_per_interval: Vec<usize>,
    /// Which system executes the workload.
    pub system: SystemKind,
    /// ACN controller tuning (ignored by the baselines).
    pub controller: ControllerConfig,
    /// Executor retry policy.
    pub retry: RetryPolicy,
    /// Executor path toggles (batched reads on by default).
    pub exec: ExecutorConfig,
    /// Base RNG seed (thread `i` uses `seed + i`).
    pub seed: u64,
    /// Deterministic fault plan installed *after* seeding (the initial
    /// state is always loaded on a healthy network). When set, worker
    /// threads tolerate terminal transaction failures — a fault window can
    /// legitimately exhaust a retry policy — and count them into
    /// [`ScenarioResult::failed`] instead of panicking.
    pub chaos: Option<FaultPlan>,
    /// When set, every client (the seeder included) appends its committed
    /// read/write versions here for the serializability checker.
    pub history: Option<Arc<HistoryLog>>,
    /// Observability: when set, every worker records txn events and abort
    /// attribution into a per-thread [`TxnObserver`], merged into
    /// [`ScenarioResult::obs`] at the end. `None` = zero overhead.
    pub obs: Option<ObsConfig>,
    /// Batch-ingest mode: when set, a coordinator collects waves of
    /// transactions, schedules them over the conflict graph of their
    /// statically resolved access sets, and dispatches independent ones
    /// concurrently across the worker pool. `None` = closed loop.
    pub batch: Option<BatchConfig>,
    /// SLO budgets evaluated over the finished run's merged telemetry.
    /// Requires [`ScenarioConfig::obs`]: tripped rules dump the retained
    /// spans as a flight-recorder artifact and land as
    /// [`FlightRecord`] rows in [`ScenarioObs::flights`]. `None` (or a
    /// disabled policy) skips evaluation entirely.
    pub slo: Option<SloConfig>,
}

/// Where a scenario's SLO budgets live and where tripped evaluations dump
/// their flight-recorder artifacts.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// The budgets to check after the run.
    pub policy: SloPolicy,
    /// Directory receiving `flight-<label>.json` Chrome-trace dumps.
    pub flight_dir: PathBuf,
    /// Artifact label distinguishing concurrent runs (figure id, seed).
    pub label: String,
}

impl ScenarioConfig {
    /// A scaled-down default: paper-shaped cluster, `threads` clients,
    /// six 200 ms intervals.
    pub fn scaled(system: SystemKind, threads: usize) -> Self {
        let mut cluster = ClusterConfig::paper(threads.max(1));
        cluster.window.window = Duration::from_millis(100);
        ScenarioConfig {
            cluster,
            client_threads: threads,
            intervals: 6,
            interval: Duration::from_millis(200),
            phase_per_interval: Vec::new(),
            system,
            controller: ControllerConfig {
                period: Duration::from_millis(200),
                alpha: 1.0,
                sampling: acn_core::SamplingMode::Explicit,
            },
            retry: RetryPolicy::default(),
            exec: ExecutorConfig::default(),
            seed: 42,
            chaos: None,
            history: None,
            obs: None,
            batch: None,
            slo: None,
        }
    }
}

/// Commit/abort counts for one measurement window. Carries every
/// [`ExecStats`] counter — earlier versions dropped `locked_aborts` and
/// `unavailable_retries` on the floor, which made lock-heavy and chaos
/// runs look artificially clean.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalStats {
    /// Transactions committed in the window.
    pub commits: u64,
    /// Full restarts absorbed in the window.
    pub full_aborts: u64,
    /// Partial rollbacks absorbed in the window.
    pub partial_aborts: u64,
    /// Restarts caused by persistent `protected` objects.
    pub locked_aborts: u64,
    /// Quorum-unavailable rounds absorbed by the retry policy.
    pub unavailable_retries: u64,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The system that ran.
    pub system: SystemKind,
    /// Window length used.
    pub interval: Duration,
    /// Per-window counters.
    pub intervals: Vec<IntervalStats>,
    /// Total ACN reconfigurations installed (0 for the baselines).
    pub refreshes: u64,
    /// End-to-end commit latency (includes retries and backoff).
    pub latency: LatencyHistogram,
    /// Transactions that failed terminally (chaos runs only; always 0 on a
    /// healthy cluster, where a terminal failure panics instead).
    pub failed: u64,
    /// Network counters accumulated over the whole run (seeding included).
    pub net: NetStatsSnapshot,
    /// Observability outputs, present when [`ScenarioConfig::obs`] was set.
    pub obs: Option<ScenarioObs>,
    /// Final per-server stats collected at shutdown, in rank order. Carries
    /// each replica's store digest, so suites can assert replica
    /// convergence after recovery chaos.
    pub server_stats: Vec<ServerStats>,
    /// Replica-recovery counters aggregated over servers (wipes, catch-up
    /// sync, refusals) and clients (read repair). All-zero on runs without
    /// amnesia faults or repair traffic.
    pub recovery: RecoveryCounters,
    /// Conflict-graph scheduling aggregates, present when the run used
    /// [`ScenarioConfig::batch`].
    pub batch: Option<WaveStats>,
}

/// Merged observability outputs of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioObs {
    /// Abort attribution merged over all worker threads.
    pub aborts: AbortTable,
    /// Trace-ring counters merged over all worker threads.
    pub trace: TraceSummary,
    /// Per-class contention levels sampled from the cluster right after
    /// the measurement deadline (empty if the quorum was unavailable).
    pub contention: Vec<ContentionLevel>,
    /// Every span the run kept — client rings and the server collector
    /// merged, sorted by `(trace, start, id)`. Empty when
    /// [`ObsConfig::trace_spans`] is off.
    pub spans: Vec<Span>,
    /// Per-committed-transaction critical-path decomposition.
    pub critpath: Vec<TxnCritPath>,
    /// [`ScenarioObs::critpath`] aggregated per `(class, block)`.
    pub critpath_rows: Vec<CritPathRow>,
    /// Span-ring completeness per worker thread, plus the server
    /// collector's row under [`SERVER_TRACE_THREAD`].
    pub thread_traces: Vec<ThreadTraceRow>,
    /// Wasted-work totals merged over all worker threads; obeys
    /// `committed + discarded(full) + discarded(partial) == executed`
    /// exactly (see [`WorkTotals::check`]).
    pub wasted: WorkTotals,
    /// Per-window commit/abort counters and latency histograms on the
    /// measurement-interval grid, merged over all worker threads.
    pub series: WindowedSeries,
    /// Tripped SLO rules and their flight-recorder artifacts (empty
    /// unless [`ScenarioConfig::slo`] was set and a budget broke).
    pub flights: Vec<FlightRecord>,
}

impl ScenarioResult {
    /// Committed transactions per second in window `i`.
    pub fn throughput(&self, i: usize) -> f64 {
        self.intervals[i].commits as f64 / self.interval.as_secs_f64()
    }

    /// Mean throughput over windows `from..`.
    pub fn mean_throughput_from(&self, from: usize) -> f64 {
        let n = self.intervals.len().saturating_sub(from).max(1);
        let total: u64 = self.intervals[from.min(self.intervals.len())..]
            .iter()
            .map(|w| w.commits)
            .sum();
        total as f64 / (n as f64 * self.interval.as_secs_f64())
    }

    /// Commits across all windows.
    pub fn total_commits(&self) -> u64 {
        self.intervals.iter().map(|w| w.commits).sum()
    }

    /// Partial rollbacks across all windows.
    pub fn total_partial_aborts(&self) -> u64 {
        self.intervals.iter().map(|w| w.partial_aborts).sum()
    }

    /// Full restarts across all windows.
    pub fn total_full_aborts(&self) -> u64 {
        self.intervals.iter().map(|w| w.full_aborts).sum()
    }

    /// Locked-out restarts across all windows.
    pub fn total_locked_aborts(&self) -> u64 {
        self.intervals.iter().map(|w| w.locked_aborts).sum()
    }

    /// Unavailable-retries across all windows.
    pub fn total_unavailable_retries(&self) -> u64 {
        self.intervals.iter().map(|w| w.unavailable_retries).sum()
    }

    /// Assemble the unified [`MetricsReport`] for this run: executor
    /// totals, network counters, latency percentiles, plus attribution /
    /// trace / contention when observability was enabled. `meta` key-values
    /// are prepended to the run's own (`system`, `interval_ms`, `windows`).
    pub fn metrics_report(&self, meta: &[(&str, String)]) -> MetricsReport {
        let mut reg = MetricsRegistry::new();
        reg.meta("system", self.system)
            .meta("interval_ms", self.interval.as_millis())
            .meta("windows", self.intervals.len());
        for (k, v) in meta {
            reg.meta(k, v);
        }
        if let Some(b) = &self.batch {
            reg.meta("batch_waves", b.waves)
                .meta("batch_txns", b.txns)
                .meta("batch_edges", b.edges)
                .meta("batch_pessimistic_edges", b.pessimistic_edges)
                .meta("batch_inexact_txns", b.inexact_txns)
                .meta("batch_layers", b.layers)
                .meta("batch_max_width", b.max_width)
                .meta("batch_cross_edges", b.cross_edges)
                .meta("batch_predicted_txns", b.predicted_txns)
                .meta("batch_mispredicts", b.mispredicts);
        }
        reg.exec(acn_obs::ExecCounters {
            commits: self.total_commits(),
            full_aborts: self.total_full_aborts(),
            partial_aborts: self.total_partial_aborts(),
            locked_aborts: self.total_locked_aborts(),
            unavailable_retries: self.total_unavailable_retries(),
        })
        .net(net_counters(&self.net))
        .latency(self.latency.summary());
        if self.recovery != RecoveryCounters::default() {
            reg.recovery(self.recovery);
        }
        if let Some(obs) = &self.obs {
            for level in &obs.contention {
                reg.contention(level.clone());
            }
            reg.aborts(&obs.aborts).trace(obs.trace);
            reg.critpath(obs.critpath_rows.clone());
            for row in &obs.thread_traces {
                reg.thread_trace(*row);
            }
            if !obs.wasted.is_empty() {
                reg.wasted(obs.wasted.clone());
            }
            reg.series(&obs.series);
            reg.flights(obs.flights.clone());
        }
        reg.snapshot()
    }
}

fn net_counters(s: &NetStatsSnapshot) -> NetCounters {
    NetCounters {
        sent: s.sent,
        delivered: s.delivered,
        dropped_failed: s.dropped_failed,
        dropped_closed: s.dropped_closed,
        dropped_link: s.dropped_link,
        dropped_chaos: s.dropped_chaos,
        chaos_duplicated: s.chaos_duplicated,
        chaos_delayed: s.chaos_delayed,
        bytes_sent: s.bytes_sent,
        bytes_delivered: s.bytes_delivered,
    }
}

/// Every distinct object class the workload's templates open, in id order.
fn collect_classes(dms: &[Arc<DependencyModel>]) -> Vec<ObjClass> {
    fn walk(stmts: &[Stmt], out: &mut Vec<ObjClass>) {
        for s in stmts {
            match s {
                Stmt::Open { class, .. } if !out.iter().any(|c| c.id == class.id) => {
                    out.push(*class);
                }
                Stmt::Cond {
                    then_br, else_br, ..
                } => {
                    walk(then_br, out);
                    walk(else_br, out);
                }
                _ => {}
            }
        }
    }
    let mut classes = Vec::new();
    for dm in dms {
        walk(&dm.program.stmts, &mut classes);
    }
    classes.sort_by_key(|c| c.id);
    classes
}

pub(crate) enum Plan {
    Fixed(Vec<Arc<BlockSeq>>),
    Acn(Vec<Arc<AcnController>>),
}

/// Per-thread observer outputs merged under one lock when each worker's
/// scope ends: attribution, trace-ring counters, the wasted-work ledger
/// totals and the windowed commit/abort series (all threads share one
/// grid, so the merge is exact).
pub(crate) struct MergedObs {
    pub(crate) aborts: AbortTable,
    pub(crate) trace: TraceSummary,
    pub(crate) work: WorkTotals,
    pub(crate) series: WindowedSeries,
}

impl MergedObs {
    pub(crate) fn new(window_ns: u64) -> Self {
        MergedObs {
            aborts: AbortTable::default(),
            trace: TraceSummary::default(),
            work: WorkTotals::default(),
            series: WindowedSeries::new(window_ns),
        }
    }
}

pub(crate) struct Buckets {
    pub(crate) commits: Vec<AtomicU64>,
    pub(crate) fulls: Vec<AtomicU64>,
    pub(crate) partials: Vec<AtomicU64>,
    pub(crate) locked: Vec<AtomicU64>,
    pub(crate) unavail: Vec<AtomicU64>,
}

impl Buckets {
    fn new(n: usize) -> Self {
        let make = || (0..n).map(|_| AtomicU64::new(0)).collect();
        Buckets {
            commits: make(),
            fulls: make(),
            partials: make(),
            locked: make(),
            unavail: make(),
        }
    }
}

pub(crate) fn phase_for(cfg: &ScenarioConfig, interval: usize) -> usize {
    match cfg.phase_per_interval.len() {
        0 => 0,
        n => cfg.phase_per_interval[interval.min(n - 1)],
    }
}

/// Run one scenario and collect per-interval statistics.
///
/// # Panics
/// Without a chaos plan, panics on quorum unavailability or retry
/// exhaustion — scenarios on a healthy cluster treat those as
/// configuration errors. With [`ScenarioConfig::chaos`] set they are
/// counted into [`ScenarioResult::failed`] instead.
pub fn run_scenario(workload: &dyn Workload, cfg: &ScenarioConfig) -> ScenarioResult {
    run_scenario_with_model(workload, cfg, || Box::new(SumModel))
}

/// [`run_scenario`] with a custom contention model factory (ablations).
pub fn run_scenario_with_model(
    workload: &dyn Workload,
    cfg: &ScenarioConfig,
    model: impl Fn() -> Box<dyn ContentionModel>,
) -> ScenarioResult {
    assert!(cfg.client_threads >= 1);
    assert!(
        cfg.client_threads <= cfg.cluster.clients,
        "not enough client slots"
    );
    // Span tracing: one bounded collector shared by every server thread,
    // drained (with the same origin instant as the client rings) after
    // shutdown.
    let span_collector = match cfg.obs {
        Some(o) if o.trace_spans => Some(Arc::new(SpanCollector::new(o.span_capacity))),
        _ => None,
    };
    let mut cluster_cfg = cfg.cluster.clone();
    if cluster_cfg.spans.is_none() {
        cluster_cfg.spans = span_collector.clone();
    }
    let cluster = Cluster::start(cluster_cfg);

    // Seed initial state from slot 0 before measurement starts. The seeder
    // records into the history log too — the checker needs the initial
    // versions to account for later reads of them.
    {
        let mut seeder = cluster.client(0);
        if let Some(h) = &cfg.history {
            seeder.set_history(Arc::clone(h));
        }
        workload.seed(&mut seeder);
    }

    // Faults start only after the initial state is fully loaded.
    if let Some(plan) = &cfg.chaos {
        cluster.install_chaos(plan);
    }

    // Static Module: analyze every template once.
    let static_module = StaticModule::new();
    let dms: Vec<Arc<DependencyModel>> = workload
        .templates()
        .iter()
        .map(|p| static_module.analyze(p).expect("workload template invalid"))
        .collect();

    let plan = match cfg.system {
        SystemKind::QrDtm => {
            Plan::Fixed(dms.iter().map(|dm| Arc::new(BlockSeq::flat(dm))).collect())
        }
        SystemKind::QrCn => Plan::Fixed(
            dms.iter()
                .enumerate()
                .map(|(t, dm)| Arc::new(BlockSeq::group_units(dm, &workload.manual_groups(t, dm))))
                .collect(),
        ),
        SystemKind::QrAcn => Plan::Acn(
            dms.iter()
                .map(|dm| {
                    Arc::new(AcnController::new(
                        Arc::clone(dm),
                        AlgorithmModule::with_model(model()),
                        cfg.controller,
                    ))
                })
                .collect(),
        ),
    };

    let buckets = Buckets::new(cfg.intervals);
    let latency = Mutex::new(LatencyHistogram::new());
    let failed = AtomicU64::new(0);
    // Per-thread observers merge here when the scope ends. The series
    // grid equals the measurement interval, so window rows line up with
    // the `IntervalStats` buckets.
    let merged_obs: Mutex<MergedObs> = Mutex::new(MergedObs::new(cfg.interval.as_nanos() as u64));
    // Per-thread span rings drain here; the server collector's spans join
    // after shutdown (when every server thread has flushed).
    let merged_spans: Mutex<(Vec<Span>, Vec<ThreadTraceRow>)> = Mutex::new(Default::default());
    // Client-side recovery traffic (read repairs sent, sync refusals seen),
    // summed over worker threads.
    let merged_client: Mutex<(u64, u64)> = Mutex::new((0, 0));
    let deadline_len = cfg.interval * cfg.intervals as u32;
    let start = Instant::now();

    // With piggybacked sampling, every client carries the union of all
    // templates' classes on its remote reads.
    let piggyback_classes: Vec<u16> = match (&plan, cfg.controller.sampling) {
        (Plan::Acn(ctrls), acn_core::SamplingMode::Piggyback) => {
            let mut all: Vec<u16> = ctrls.iter().flat_map(|c| c.classes()).collect();
            all.sort_unstable();
            all.dedup();
            all
        }
        _ => Vec::new(),
    };

    let wave_stats = if let Some(bc) = &cfg.batch {
        Some(run_waves(&BatchRun {
            cfg,
            bc,
            workload,
            cluster: &cluster,
            dms: &dms,
            plan: &plan,
            buckets: &buckets,
            latency: &latency,
            failed: &failed,
            merged_obs: &merged_obs,
            merged_spans: &merged_spans,
            merged_client: &merged_client,
            piggyback_classes: &piggyback_classes,
            start,
            deadline_len,
        }))
    } else {
        run_closed_loop(
            workload,
            cfg,
            &cluster,
            &dms,
            &plan,
            &buckets,
            &latency,
            &failed,
            &merged_obs,
            &merged_spans,
            &merged_client,
            &piggyback_classes,
            start,
            deadline_len,
        );
        None
    };
    drive_to_result(
        cfg,
        cluster,
        &dms,
        plan,
        buckets,
        latency,
        failed,
        merged_obs,
        merged_spans,
        merged_client,
        span_collector,
        start,
        wave_stats,
    )
}

/// The closed-loop measurement phase: each worker thread owns its client
/// handle and generates, decomposes and executes transactions back to back
/// until the deadline.
#[allow(clippy::too_many_arguments)]
fn run_closed_loop(
    workload: &dyn Workload,
    cfg: &ScenarioConfig,
    cluster: &Cluster,
    dms: &[Arc<DependencyModel>],
    plan: &Plan,
    buckets: &Buckets,
    latency: &Mutex<LatencyHistogram>,
    failed: &AtomicU64,
    merged_obs: &Mutex<MergedObs>,
    merged_spans: &Mutex<(Vec<Span>, Vec<ThreadTraceRow>)>,
    merged_client: &Mutex<(u64, u64)>,
    piggyback_classes: &[u16],
    start: Instant,
    deadline_len: Duration,
) {
    std::thread::scope(|s| {
        // Timed crash/partition events run on a supervisor thread; the
        // schedule ends at its last event, all of which precede the
        // measurement deadline in a sane plan, so the scope's implicit
        // join does not stall.
        if let Some(fault_plan) = &cfg.chaos {
            if !fault_plan.events.is_empty() {
                let net = cluster.net().clone();
                let events = fault_plan.events.clone();
                s.spawn(move || net.run_fault_schedule(&events, start));
            }
        }
        for t in 0..cfg.client_threads {
            let mut client = cluster.client(t);
            if !piggyback_classes.is_empty() {
                client.set_piggyback_classes(piggyback_classes.to_vec());
            }
            if let Some(h) = &cfg.history {
                client.set_history(Arc::clone(h));
            }
            if let Some(o) = cfg.obs.filter(|o| o.trace_spans) {
                // Origin = the measurement start, the same zero the
                // interval clock and the server collector drain use.
                let node = (cfg.cluster.servers + t) as u32;
                client.set_tracer(Tracer::new(start, node, t as u64, o.span_capacity));
            }
            let engine = ExecutorEngine::with_config(cfg.retry, cfg.exec);
            let mut rng = StdRng::seed_from_u64(cfg.seed + t as u64);
            s.spawn(move || {
                let mut stats = ExecStats::default();
                let mut hist = LatencyHistogram::new();
                let mut observer = cfg.obs.map(TxnObserver::new);
                // Per-thread windowed series on the run-origin grid; the
                // merge at scope end is exact because every thread shares
                // the same window width and zero.
                let mut series = cfg
                    .obs
                    .map(|_| WindowedSeries::new(cfg.interval.as_nanos() as u64));
                let mut prev = stats;
                loop {
                    let elapsed = start.elapsed();
                    if elapsed >= deadline_len {
                        break;
                    }
                    let interval_now = (elapsed.as_nanos() / cfg.interval.as_nanos()) as usize;
                    let phase = phase_for(cfg, interval_now);
                    let req = workload.next(&mut rng, phase);
                    let dm = &dms[req.template];
                    let seq = match plan {
                        Plan::Fixed(seqs) => Arc::clone(&seqs[req.template]),
                        Plan::Acn(ctrls) => {
                            let c = &ctrls[req.template];
                            c.maybe_refresh(&mut client);
                            c.current()
                        }
                    };
                    if let Some(tr) = client.tracer_mut() {
                        tr.start_txn(req.template as u16);
                    }
                    let res = engine.run_timed_observed(
                        &mut client,
                        &dm.program,
                        &req.params,
                        &seq,
                        &mut stats,
                        &mut hist,
                        observer.as_mut(),
                    );
                    if let Some(tr) = client.tracer_mut() {
                        tr.end_txn(res.is_ok());
                    }
                    if let Err(e) = res {
                        if cfg.chaos.is_some() {
                            // A fault window can legitimately starve this
                            // client; count it and keep the thread alive so
                            // progress resumes once the faults heal.
                            failed.fetch_add(1, Ordering::Relaxed);
                        } else {
                            panic!("scenario transaction failed: {e}");
                        }
                    }
                    // Attribute the commit (and the aborts it absorbed) to
                    // the window in which it completed.
                    let done = start.elapsed();
                    let idx = ((done.as_nanos() / cfg.interval.as_nanos()) as usize)
                        .min(cfg.intervals - 1);
                    buckets.commits[idx].fetch_add(stats.commits - prev.commits, Ordering::Relaxed);
                    buckets.fulls[idx]
                        .fetch_add(stats.full_aborts - prev.full_aborts, Ordering::Relaxed);
                    buckets.partials[idx].fetch_add(
                        stats.partial_aborts - prev.partial_aborts,
                        Ordering::Relaxed,
                    );
                    buckets.locked[idx]
                        .fetch_add(stats.locked_aborts - prev.locked_aborts, Ordering::Relaxed);
                    buckets.unavail[idx].fetch_add(
                        stats.unavailable_retries - prev.unavailable_retries,
                        Ordering::Relaxed,
                    );
                    if let Some(series) = series.as_mut() {
                        let at_ns = done.as_nanos() as u64;
                        if stats.commits > prev.commits {
                            // End-to-end iteration latency (retries and
                            // backoff included), like `hist`.
                            let lat = (done - elapsed).as_nanos() as u64;
                            series.record_commit(at_ns, lat);
                        }
                        let fulls = (stats.full_aborts - prev.full_aborts)
                            + (stats.locked_aborts - prev.locked_aborts);
                        let partials = stats.partial_aborts - prev.partial_aborts;
                        if fulls + partials > 0 {
                            series.record_aborts(at_ns, fulls, partials);
                        }
                    }
                    prev = stats;
                }
                if let Some(tracer) = client.take_tracer() {
                    let (spans, summary) = tracer.drain();
                    let mut m = merged_spans.lock();
                    m.0.extend(spans);
                    m.1.push(ThreadTraceRow {
                        thread: t as u64,
                        recorded: summary.recorded,
                        dropped: summary.dropped,
                        capacity: summary.capacity,
                    });
                }
                latency.lock().merge(&hist);
                {
                    let cs = client.stats();
                    let mut m = merged_client.lock();
                    m.0 += cs.repair_writes_sent;
                    m.1 += cs.sync_refusals_seen;
                }
                if let Some(obs) = &observer {
                    let mut m = merged_obs.lock();
                    let m = &mut *m;
                    obs.merge_into(&mut m.aborts, &mut m.trace, &mut m.work);
                    if let Some(series) = &series {
                        m.series.merge(series);
                    }
                }
            });
        }
    });
}

/// Post-measurement assembly shared by both execution modes: controller
/// refresh totals, contention sampling, cluster shutdown, span merging and
/// the final [`ScenarioResult`].
#[allow(clippy::too_many_arguments)]
fn drive_to_result(
    cfg: &ScenarioConfig,
    cluster: Cluster,
    dms: &[Arc<DependencyModel>],
    plan: Plan,
    buckets: Buckets,
    latency: Mutex<LatencyHistogram>,
    failed: AtomicU64,
    merged_obs: Mutex<MergedObs>,
    merged_spans: Mutex<(Vec<Span>, Vec<ThreadTraceRow>)>,
    merged_client: Mutex<(u64, u64)>,
    span_collector: Option<Arc<SpanCollector>>,
    start: Instant,
    wave_stats: Option<WaveStats>,
) -> ScenarioResult {
    let refreshes = match &plan {
        Plan::Fixed(_) => 0,
        Plan::Acn(ctrls) => ctrls.iter().map(|c| c.refresh_count()).sum(),
    };

    // While the cluster is still up: one contention sample over every class
    // the workload touches (best-effort — a chaos plan may have taken the
    // quorum down, in which case the report just omits contention rows).
    let mut obs = cfg.obs.map(|_| {
        let merged = merged_obs.into_inner();
        let classes = collect_classes(dms);
        let ids: Vec<u16> = classes.iter().map(|c| c.id).collect();
        let mut sampler = cluster.client(0);
        let contention = match sampler.query_contention_full(&ids) {
            Ok(sample) => classes
                .iter()
                .map(|c| {
                    let milli = |m: &std::collections::HashMap<u16, f64>| {
                        (m.get(&c.id).copied().unwrap_or(0.0) * 1000.0).round() as u64
                    };
                    ContentionLevel {
                        class: c.name.to_string(),
                        writes_milli: milli(&sample.writes),
                        aborts_milli: milli(&sample.aborts),
                    }
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        ScenarioObs {
            aborts: merged.aborts,
            trace: merged.trace,
            contention,
            spans: Vec::new(),
            critpath: Vec::new(),
            critpath_rows: Vec::new(),
            thread_traces: Vec::new(),
            wasted: merged.work,
            series: merged.series,
            flights: Vec::new(),
        }
    });

    let net = cluster.net().stats();
    let server_stats = cluster.shutdown();

    // Every server thread has joined: drain the shared span sink, merge it
    // with the client rings, and decompose the committed transactions'
    // critical paths.
    if let Some(obs) = obs.as_mut() {
        let (mut spans, mut thread_rows) = merged_spans.into_inner();
        if let Some(collector) = &span_collector {
            let (srv, summary) = collector.drain(start);
            spans.extend(srv);
            thread_rows.push(ThreadTraceRow {
                thread: SERVER_TRACE_THREAD,
                recorded: summary.recorded,
                dropped: summary.dropped,
                capacity: summary.capacity,
            });
        }
        spans.sort_by_key(|s| (s.trace, s.start_ns, s.id));
        thread_rows.sort_by_key(|r| r.thread);
        let critpath = critical_path(&spans);
        let critpath_rows = aggregate_critpath(&critpath, |c| {
            dms.get(c as usize)
                .map(|dm| dm.program.name.to_string())
                .unwrap_or_else(|| format!("class{c}"))
        });
        obs.spans = spans;
        obs.critpath = critpath;
        obs.critpath_rows = critpath_rows;
        obs.thread_traces = thread_rows;
    }
    let (repair_writes_sent, _sync_refusals_seen) = merged_client.into_inner();
    let recovery = RecoveryCounters {
        amnesia_wipes: server_stats.iter().map(|s| s.amnesia_wipes).sum(),
        syncs_completed: server_stats.iter().map(|s| s.syncs_completed).sum(),
        sync_objects_received: server_stats.iter().map(|s| s.sync_objects_received).sum(),
        sync_vote_refusals: server_stats.iter().map(|s| s.sync_vote_refusals).sum(),
        sync_read_refusals: server_stats.iter().map(|s| s.sync_read_refusals).sum(),
        repair_writes_sent,
        repair_writes_applied: server_stats.iter().map(|s| s.repair_writes_applied).sum(),
        restart_replays: server_stats.iter().map(|s| s.restart_replays).sum(),
        wal_records_replayed: server_stats.iter().map(|s| s.wal_records_replayed).sum(),
        torn_tails_truncated: server_stats.iter().map(|s| s.torn_tails_truncated).sum(),
        delta_objects_fetched: server_stats.iter().map(|s| s.delta_objects_fetched).sum(),
        wal_io_errors: server_stats.iter().map(|s| s.wal_io_errors).sum(),
        wal_sync_batches: server_stats.iter().map(|s| s.wal_sync_batches).sum(),
        wal_records_synced: server_stats.iter().map(|s| s.wal_records_synced).sum(),
    };
    let latency = latency.into_inner();

    // SLO evaluation over the finished run's merged telemetry; tripped
    // rules dump the retained spans as a flight-recorder artifact. Needs
    // the observer outputs, so `slo` without `obs` evaluates nothing.
    if let (Some(obs), Some(slo)) = (obs.as_mut(), cfg.slo.as_ref()) {
        if !slo.policy.is_disabled() {
            let sum =
                |b: &[AtomicU64]| -> u64 { b.iter().map(|a| a.load(Ordering::Relaxed)).sum() };
            let inputs = SloInputs {
                p99_ns: latency
                    .percentile(0.99)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0),
                commits: sum(&buckets.commits),
                aborts: sum(&buckets.fulls) + sum(&buckets.partials) + sum(&buckets.locked),
                wal_refusals: obs.aborts.total_of(&[AbortKind::WalRefused]),
                sync_refusals: recovery.sync_vote_refusals + recovery.sync_read_refusals,
            };
            let triggers = slo.policy.evaluate(&inputs);
            if !triggers.is_empty() {
                // Best-effort artifact: an unwritable flight dir must not
                // fail the run, but the tripped rules still surface as
                // rows (with an empty artifact path).
                obs.flights = record_flight(
                    &slo.flight_dir,
                    &slo.label,
                    &triggers,
                    &obs.spans,
                    &obs.thread_traces,
                )
                .unwrap_or_else(|_| {
                    triggers
                        .iter()
                        .map(|t| FlightRecord {
                            trigger: t.rule.label().to_owned(),
                            value_milli: t.value_milli,
                            budget_milli: t.budget_milli,
                            artifact: String::new(),
                        })
                        .collect()
                });
            }
        }
    }

    ScenarioResult {
        server_stats,
        recovery,
        latency,
        system: cfg.system,
        interval: cfg.interval,
        intervals: (0..cfg.intervals)
            .map(|i| IntervalStats {
                commits: buckets.commits[i].load(Ordering::Relaxed),
                full_aborts: buckets.fulls[i].load(Ordering::Relaxed),
                partial_aborts: buckets.partials[i].load(Ordering::Relaxed),
                locked_aborts: buckets.locked[i].load(Ordering::Relaxed),
                unavailable_retries: buckets.unavail[i].load(Ordering::Relaxed),
            })
            .collect(),
        refreshes,
        failed: failed.into_inner(),
        net,
        obs,
        batch: wave_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::{Bank, BankConfig};
    use crate::batch::SpecMode;
    use acn_simnet::LatencyModel;

    fn tiny(system: SystemKind) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::scaled(system, 2);
        cfg.cluster = ClusterConfig::test(10, 2);
        cfg.cluster.latency = LatencyModel::Zero;
        cfg.cluster.window.window = Duration::from_millis(20);
        cfg.intervals = 3;
        cfg.interval = Duration::from_millis(60);
        cfg.controller.period = Duration::from_millis(40);
        cfg
    }

    #[test]
    fn flat_scenario_commits_in_every_interval() {
        let bank = Bank::new(BankConfig {
            hot_pool: 4,
            cold_pool: 256,
            write_pct: 90,
        });
        let r = run_scenario(&bank, &tiny(SystemKind::QrDtm));
        assert_eq!(r.intervals.len(), 3);
        assert!(r.total_commits() > 0);
        assert_eq!(r.refreshes, 0);
        assert_eq!(r.total_partial_aborts(), 0, "flat cannot partially abort");
    }

    #[test]
    fn manual_cn_scenario_runs() {
        let bank = Bank::default();
        let r = run_scenario(&bank, &tiny(SystemKind::QrCn));
        assert!(r.total_commits() > 0);
        assert_eq!(r.refreshes, 0);
    }

    #[test]
    fn acn_scenario_reconfigures() {
        let bank = Bank::default();
        let r = run_scenario(&bank, &tiny(SystemKind::QrAcn));
        assert!(r.total_commits() > 0);
        assert!(r.refreshes > 0, "controller should fire at least once");
    }

    #[test]
    fn acn_scenario_with_piggybacked_sampling() {
        let bank = Bank::default();
        let mut cfg = tiny(SystemKind::QrAcn);
        cfg.controller.sampling = acn_core::SamplingMode::Piggyback;
        let r = run_scenario(&bank, &cfg);
        assert!(r.total_commits() > 0);
        assert!(r.refreshes > 0, "piggybacked sampling must still refresh");
    }

    #[test]
    fn latency_histogram_covers_every_commit() {
        let bank = Bank::default();
        let r = run_scenario(&bank, &tiny(SystemKind::QrDtm));
        assert_eq!(
            r.latency.len(),
            r.total_commits(),
            "one latency sample per committed transaction"
        );
        let p50 = r.latency.percentile(0.5).unwrap();
        let p99 = r.latency.percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 < Duration::from_secs(5), "sane upper bound: {p99:?}");
    }

    #[test]
    fn phase_schedule_clamps() {
        let cfg = tiny(SystemKind::QrDtm);
        assert_eq!(phase_for(&cfg, 5), 0, "empty schedule is phase 0");
        let mut cfg = cfg;
        cfg.phase_per_interval = vec![0, 1];
        assert_eq!(phase_for(&cfg, 0), 0);
        assert_eq!(phase_for(&cfg, 1), 1);
        assert_eq!(phase_for(&cfg, 9), 1, "repeats the last entry");
    }

    #[test]
    fn throughput_math() {
        let r = ScenarioResult {
            latency: LatencyHistogram::new(),
            system: SystemKind::QrDtm,
            interval: Duration::from_millis(500),
            intervals: vec![
                IntervalStats {
                    commits: 50,
                    full_aborts: 1,
                    partial_aborts: 0,
                    locked_aborts: 4,
                    unavailable_retries: 0,
                },
                IntervalStats {
                    commits: 100,
                    full_aborts: 2,
                    partial_aborts: 3,
                    locked_aborts: 1,
                    unavailable_retries: 7,
                },
            ],
            refreshes: 0,
            failed: 0,
            net: NetStatsSnapshot::default(),
            obs: None,
            server_stats: Vec::new(),
            recovery: RecoveryCounters::default(),
            batch: None,
        };
        assert_eq!(r.throughput(0), 100.0);
        assert_eq!(r.throughput(1), 200.0);
        assert_eq!(r.mean_throughput_from(1), 200.0);
        assert_eq!(r.total_commits(), 150);
        assert_eq!(r.total_full_aborts(), 3);
        assert_eq!(r.total_partial_aborts(), 3);
        // Regression: these two used to be dropped on the floor.
        assert_eq!(r.total_locked_aborts(), 5);
        assert_eq!(r.total_unavailable_retries(), 7);
        // The unified report carries every executor counter through.
        let report = r.metrics_report(&[("bench", "unit".to_string())]);
        assert_eq!(report.exec.commits, 150);
        assert_eq!(report.exec.locked_aborts, 5);
        assert_eq!(report.exec.unavailable_retries, 7);
        let lines = report.to_json_lines();
        let parsed = MetricsReport::parse_json_lines(&lines).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn batch_scenario_commits_and_reports_waves() {
        let bank = Bank::new(BankConfig {
            hot_pool: 4,
            cold_pool: 256,
            write_pct: 90,
        });
        let mut cfg = tiny(SystemKind::QrCn);
        cfg.batch = Some(BatchConfig::default());
        let r = run_scenario(&bank, &cfg);
        assert!(r.total_commits() > 0, "batch mode makes progress");
        let ws = r.batch.expect("wave stats present in batch mode");
        assert!(ws.waves > 0);
        assert!(ws.txns >= r.total_commits(), "every commit was scheduled");
        assert!(ws.edges > 0, "hot branches must conflict within a wave");
        let report = r.metrics_report(&[]);
        assert!(
            report.meta.iter().any(|(k, _)| k == "batch_waves"),
            "wave stats exported in the report meta"
        );
    }

    #[test]
    fn batch_attribution_reconciles_with_speculation_kinds() {
        let bank = Bank::new(BankConfig {
            hot_pool: 2,
            cold_pool: 64,
            write_pct: 95,
        });
        let mut cfg = tiny(SystemKind::QrCn);
        cfg.batch = Some(BatchConfig {
            wave: 16,
            spec: SpecMode::Partial,
            overlap: true,
            speculate_inexact: false,
        });
        cfg.obs = Some(ObsConfig::default());
        let r = run_scenario(&bank, &cfg);
        assert!(r.total_commits() > 0);
        let obs = r.obs.as_ref().expect("obs enabled");
        // The exactness invariant must survive the Spec* remapping: every
        // executor-counted abort is attributed exactly once, whichever
        // label it carries.
        assert_eq!(
            obs.aborts.total_of(&acn_obs::AbortKind::EXECUTOR_KINDS),
            r.total_full_aborts() + r.total_partial_aborts() + r.total_locked_aborts(),
            "attribution must reconcile with the interval counters"
        );
        // In batch mode the executor runs with speculation labelling, so
        // no abort may carry the closed-loop labels.
        assert_eq!(
            obs.aborts.total_of(&[
                acn_obs::AbortKind::ReadInvalid,
                acn_obs::AbortKind::CommitConflict,
                acn_obs::AbortKind::Partial,
            ]),
            0,
            "batch-mode aborts must be attributed to Spec* kinds"
        );
    }

    #[test]
    fn batch_full_restart_never_partially_rolls_back() {
        let bank = Bank::default();
        let mut cfg = tiny(SystemKind::QrCn);
        cfg.batch = Some(BatchConfig {
            wave: 16,
            spec: SpecMode::FullRestart,
            overlap: true,
            speculate_inexact: false,
        });
        let r = run_scenario(&bank, &cfg);
        assert!(r.total_commits() > 0);
        assert_eq!(
            r.total_partial_aborts(),
            0,
            "the Block-STM ablation arm runs flat sequences"
        );
    }

    #[test]
    fn neworder_batch_schedules_at_object_granularity() {
        // The regression PR 6 shipped with: ORDER/NEW_ORDER/ORDER_LINE are
        // `Var`-indexed, so without symbolic resolution every NewOrder
        // instance was inexact and the class-level fallback serialized the
        // waves (max_width 1). With the symbolic evaluator + counter
        // predictor the whole mix must resolve predicted-exact — no
        // `speculate_inexact` crutch needed.
        let tpcc = crate::tpcc::Tpcc::new(
            crate::tpcc::TpccConfig {
                warehouses: 2,
                districts_per_warehouse: 4,
                customers_per_district: 20,
                items: 40,
                ol_min: 3,
                ol_max: 6,
            },
            crate::tpcc::TpccMix::NEW_ORDER,
        );
        let mut cfg = tiny(SystemKind::QrCn);
        cfg.batch = Some(BatchConfig {
            wave: 24,
            spec: SpecMode::Partial,
            overlap: true,
            speculate_inexact: false,
        });
        cfg.obs = Some(ObsConfig::default());
        let r = run_scenario(&tpcc, &cfg);
        assert!(r.total_commits() > 0);
        let ws = r.batch.expect("wave stats present in batch mode");
        assert_eq!(
            ws.inexact_txns, 0,
            "every NewOrder access set must resolve (predicted-)exact"
        );
        assert!(
            ws.predicted_txns > 0,
            "the hot-counter predictor must be in play, not just statics"
        );
        assert!(
            ws.max_width > 1,
            "different districts must share a layer (got width {})",
            ws.max_width
        );
        // Predictions ride the same exactness contract as everything else.
        let obs = r.obs.as_ref().expect("obs enabled");
        assert_eq!(
            obs.aborts.total_of(&acn_obs::AbortKind::EXECUTOR_KINDS),
            r.total_full_aborts() + r.total_partial_aborts() + r.total_locked_aborts(),
            "attribution must reconcile with the interval counters"
        );
        let report = r.metrics_report(&[]);
        assert!(
            report.meta.iter().any(|(k, _)| k == "batch_predicted_txns"),
            "predictor counters exported in the report meta"
        );
    }

    #[test]
    fn observed_scenario_reconciles_attribution() {
        let bank = Bank::new(BankConfig {
            hot_pool: 4,
            cold_pool: 64,
            write_pct: 95,
        });
        let mut cfg = tiny(SystemKind::QrCn);
        cfg.obs = Some(ObsConfig::default());
        let r = run_scenario(&bank, &cfg);
        assert!(r.total_commits() > 0);
        assert!(r.net.sent > 0, "network counters captured");
        let obs = r.obs.as_ref().expect("obs enabled");
        // Exactness: every executor-counted abort was attributed once.
        assert_eq!(
            obs.aborts.total_of(&acn_obs::AbortKind::EXECUTOR_KINDS),
            r.total_full_aborts() + r.total_partial_aborts() + r.total_locked_aborts(),
            "attribution must reconcile with the interval counters"
        );
        assert!(obs.trace.recorded > 0, "events were traced");
        let report = r.metrics_report(&[]);
        let parsed = MetricsReport::parse_json_lines(&report.to_json_lines()).unwrap();
        assert_eq!(parsed, report);
    }
}
