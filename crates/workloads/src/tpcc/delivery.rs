//! The Delivery transaction profile.
//!
//! The paper uses Delivery as the *negative control*: it "accesses objects
//! such that the difference between their contention levels is not
//! significant (all the objects have similar low contention levels)", so
//! neither manual nor automated closed nesting can improve on flat
//! execution — the experiment measures QR-ACN's overhead instead. Order,
//! NewOrder and OrderLine rows are drawn from a large uniform pool;
//! parameters: `[order_index, order_line_index, c_index, carrier]`.

use super::Tpcc;
use crate::schema::{
    CUSTOMER, C_BALANCE, C_DELIV_CNT, NEW_ORDER, NO_PENDING, OL_AMOUNT, OL_DELIV_D, ORDER,
    ORDER_LINE, O_CARRIER,
};
use acn_txir::{DependencyModel, Program, ProgramBuilder, UnitBlockId, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Pool of order ids Delivery draws from (large ⇒ uniform low contention).
const ORDER_POOL: u64 = 100_000;

pub fn template() -> Program {
    let mut b = ProgramBuilder::new("tpcc/delivery", 4);
    let no = b.open_update(NEW_ORDER, b.param(0));
    b.set(no, NO_PENDING, 0i64);
    let o = b.open_update(ORDER, b.param(0));
    b.set(o, O_CARRIER, b.param(3));
    let ol = b.open_update(ORDER_LINE, b.param(1));
    let amt = b.get(ol, OL_AMOUNT);
    b.set(ol, OL_DELIV_D, 1i64);
    let c = b.open_update(CUSTOMER, b.param(2));
    let bal = b.get(c, C_BALANCE);
    let bal2 = b.add(bal, amt);
    b.set(c, C_BALANCE, bal2);
    let cnt = b.get(c, C_DELIV_CNT);
    let cnt2 = b.add(cnt, 1i64);
    b.set(c, C_DELIV_CNT, cnt2);
    b.finish()
}

/// Units: 0 = NewOrder, 1 = Order, 2 = OrderLine, 3 = Customer (the
/// customer credit depends on the line amount).
pub fn manual_groups(dm: &DependencyModel) -> Vec<Vec<UnitBlockId>> {
    assert_eq!(dm.unit_count(), 4, "unexpected Delivery unit count");
    vec![vec![0, 1], vec![2, 3]]
}

pub fn params(tpcc: &Tpcc, rng: &mut StdRng) -> Vec<Value> {
    let cfg = tpcc.config();
    let order = rng.gen_range(0..ORDER_POOL);
    let line = order * 16 + rng.gen_range(0..16);
    let d_index = tpcc.district_index(
        rng.gen_range(0..cfg.warehouses),
        rng.gen_range(0..cfg.districts_per_warehouse),
    );
    let c_index = tpcc.customer_index(d_index, rng.gen_range(0..cfg.customers_per_district));
    vec![
        Value::Int(order as i64),
        Value::Int(line as i64),
        Value::Int(c_index as i64),
        Value::Int(rng.gen_range(1..10i64)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_structure_and_dependency() {
        let dm = DependencyModel::analyze(template()).unwrap();
        assert_eq!(dm.unit_count(), 4);
        let edges = dm.default_unit_edges();
        assert!(
            edges.contains(&(2, 3)),
            "customer credit depends on the line amount"
        );
        assert!(!edges.contains(&(0, 1)));
    }

    #[test]
    fn order_and_line_ids_are_related() {
        let tpcc = Tpcc::default();
        let mut rng = rand::SeedableRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = params(&tpcc, &mut rng);
            let order = p[0].as_int().unwrap();
            let line = p[1].as_int().unwrap();
            assert_eq!(line / 16, order);
        }
    }
}
