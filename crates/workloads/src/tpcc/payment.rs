//! The Payment transaction profile.
//!
//! Updates the Warehouse and District year-to-date totals (the hot spots
//! Fig 4(b) is about — only `warehouses` Warehouse rows exist), debits the
//! Customer and inserts a History row. Parameters:
//! `[w, d_index, c_index, amount, h_id]`.

use super::Tpcc;
use crate::schema::{CUSTOMER, C_BALANCE, DISTRICT, D_YTD, HISTORY, H_AMOUNT, WAREHOUSE, W_YTD};
use acn_txir::{DependencyModel, Program, ProgramBuilder, UnitBlockId, Value};
use rand::rngs::StdRng;
use rand::Rng;

pub fn template() -> Program {
    let mut b = ProgramBuilder::new("tpcc/payment", 5);
    let amt = b.param(3);
    let wh = b.open_update(WAREHOUSE, b.param(0));
    let wy = b.get(wh, W_YTD);
    let wy2 = b.add(wy, amt);
    b.set(wh, W_YTD, wy2);
    let d = b.open_update(DISTRICT, b.param(1));
    let dy = b.get(d, D_YTD);
    let dy2 = b.add(dy, amt);
    b.set(d, D_YTD, dy2);
    let c = b.open_update(CUSTOMER, b.param(2));
    let bal = b.get(c, C_BALANCE);
    let bal2 = b.sub(bal, amt);
    b.set(c, C_BALANCE, bal2);
    let h = b.open_update(HISTORY, b.param(4));
    b.set(h, H_AMOUNT, amt);
    b.finish()
}

/// Units: 0 = Warehouse, 1 = District, 2 = Customer, 3 = History. The
/// programmer's grouping keeps spec order with the hot pair up front.
pub fn manual_groups(dm: &DependencyModel) -> Vec<Vec<UnitBlockId>> {
    assert_eq!(dm.unit_count(), 4, "unexpected Payment unit count");
    vec![vec![0, 1], vec![2, 3]]
}

pub fn params(tpcc: &Tpcc, rng: &mut StdRng) -> Vec<Value> {
    let cfg = tpcc.config();
    let w = rng.gen_range(0..cfg.warehouses);
    let d_index = tpcc.district_index(w, rng.gen_range(0..cfg.districts_per_warehouse));
    let c_index = tpcc.customer_index(d_index, rng.gen_range(0..cfg.customers_per_district));
    vec![
        Value::Int(w as i64),
        Value::Int(d_index as i64),
        Value::Int(c_index as i64),
        Value::Int(rng.gen_range(1..5_000i64)),
        Value::Int(rng.gen_range(0..u32::MAX as i64)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_structure() {
        let dm = DependencyModel::analyze(template()).unwrap();
        assert_eq!(dm.unit_count(), 4);
        assert_eq!(dm.units[0].classes, vec![WAREHOUSE]);
        assert_eq!(dm.units[1].classes, vec![DISTRICT]);
        assert_eq!(dm.units[2].classes, vec![CUSTOMER]);
        assert_eq!(dm.units[3].classes, vec![HISTORY]);
        // All four rows are mutually independent: ACN may shift the hot
        // Warehouse/District blocks to the very end.
        assert!(dm.default_unit_edges().is_empty());
    }

    #[test]
    fn params_are_consistent() {
        let tpcc = Tpcc::default();
        let mut rng = rand::SeedableRng::seed_from_u64(9);
        for _ in 0..100 {
            let p = params(&tpcc, &mut rng);
            assert_eq!(p.len(), 5);
            let w = p[0].as_int().unwrap() as u64;
            let d = p[1].as_int().unwrap() as u64;
            assert!(w < tpcc.config().warehouses);
            assert_eq!(d / tpcc.config().districts_per_warehouse, w);
            assert!(p[3].as_int().unwrap() > 0);
        }
    }
}
