//! The TPC-C benchmark — the OLTP workload of §VI-A.
//!
//! A structurally faithful scaled-down port of the TPC-C order-processing
//! schema and the three write-transaction profiles the paper evaluates:
//!
//! * `neworder` — the NewOrder profile (Fig 4(a)): reads Warehouse and
//!   Customer, *increments the District's next-order id* (the hot spot),
//!   updates one Stock row per order line and inserts Order / NewOrder /
//!   OrderLine rows whose ids derive from the District counter.
//! * `payment` — the Payment profile (Fig 4(b)): updates Warehouse and
//!   District year-to-date totals (both hot), the Customer balance and a
//!   History row.
//! * `delivery` — the Delivery profile (Fig 4(d)): touches Order,
//!   NewOrder, OrderLine and Customer rows drawn from large pools, so
//!   "the difference between their contention levels is not significant"
//!   and closed nesting cannot help — the overhead probe.
//!
//! Index derivation (dense u64 keys): `district = w·10 + d`,
//! `customer = district·10_000 + c`, `stock = w·1_000_000 + item`,
//! `order = district·1_000_000 + o_id`, `order_line = order·16 + line`.

mod delivery;
mod neworder;
mod payment;

use crate::schema::{D_TAX, ITEM, I_PRICE, STOCK, S_QTY, WAREHOUSE, W_TAX};
use crate::workload::{TxnRequest, Workload};
use acn_dtm::DtmClient;
use acn_txir::{DependencyModel, ObjectId, Program, UnitBlockId, Value};
use rand::rngs::StdRng;
use rand::Rng;

use crate::schema::DISTRICT;

/// Scale parameters (scaled down from the TPC-C specification so that a
/// laptop-sized cluster sees paper-like contention).
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Number of warehouses.
    pub warehouses: u64,
    /// Districts per warehouse (spec: 10).
    pub districts_per_warehouse: u64,
    /// Customers per district.
    pub customers_per_district: u64,
    /// Catalogue size.
    pub items: u64,
    /// Minimum order-line count for NewOrder (spec: 5–15).
    pub ol_min: usize,
    /// Maximum order-line count for NewOrder.
    pub ol_max: usize,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 10,
            customers_per_district: 100,
            items: 200,
            ol_min: 5,
            ol_max: 10,
        }
    }
}

/// Transaction mix (percentages; must sum to 100).
#[derive(Debug, Clone, Copy)]
pub struct TpccMix {
    /// NewOrder share.
    pub neworder: u8,
    /// Payment share.
    pub payment: u8,
    /// Delivery share.
    pub delivery: u8,
}

impl TpccMix {
    /// 100 % NewOrder (Fig 4(a)).
    pub const NEW_ORDER: TpccMix = TpccMix {
        neworder: 100,
        payment: 0,
        delivery: 0,
    };
    /// 100 % Payment (Fig 4(b)).
    pub const PAYMENT: TpccMix = TpccMix {
        neworder: 0,
        payment: 100,
        delivery: 0,
    };
    /// 50 % NewOrder + 50 % Payment (Fig 4(c)).
    pub const MIXED: TpccMix = TpccMix {
        neworder: 50,
        payment: 50,
        delivery: 0,
    };
    /// 100 % Delivery (Fig 4(d)).
    pub const DELIVERY: TpccMix = TpccMix {
        neworder: 0,
        payment: 0,
        delivery: 100,
    };
}

/// The TPC-C workload. Template layout: `[payment, delivery,
/// neworder(ol_min), …, neworder(ol_max)]`.
pub struct Tpcc {
    cfg: TpccConfig,
    mix: TpccMix,
    templates: Vec<Program>,
}

impl Tpcc {
    /// Build the benchmark with explicit scale and mix.
    pub fn new(cfg: TpccConfig, mix: TpccMix) -> Self {
        assert_eq!(
            mix.neworder as u16 + mix.payment as u16 + mix.delivery as u16,
            100,
            "mix must sum to 100"
        );
        assert!(cfg.ol_min >= 1 && cfg.ol_min <= cfg.ol_max);
        let mut templates = vec![payment::template(), delivery::template()];
        for k in cfg.ol_min..=cfg.ol_max {
            templates.push(neworder::template(k));
        }
        Tpcc {
            cfg,
            mix,
            templates,
        }
    }

    /// The scale parameters this instance runs with.
    pub fn config(&self) -> TpccConfig {
        self.cfg
    }

    /// Dense key of district `d` of warehouse `w`.
    pub fn district_index(&self, w: u64, d: u64) -> u64 {
        w * self.cfg.districts_per_warehouse + d
    }

    /// Dense key of customer `c` of district `d_index`.
    pub fn customer_index(&self, d_index: u64, c: u64) -> u64 {
        d_index * 10_000 + c
    }

    /// Dense key of `item`'s stock row in warehouse `w`.
    pub fn stock_index(&self, w: u64, item: u64) -> u64 {
        w * 1_000_000 + item
    }

    fn template_index_for_ol(&self, k: usize) -> usize {
        2 + (k - self.cfg.ol_min)
    }
}

impl Default for Tpcc {
    fn default() -> Self {
        Self::new(TpccConfig::default(), TpccMix::NEW_ORDER)
    }
}

impl Workload for Tpcc {
    fn name(&self) -> &str {
        "tpcc"
    }

    fn templates(&self) -> &[Program] {
        &self.templates
    }

    fn manual_groups(&self, t: usize, dm: &DependencyModel) -> Vec<Vec<UnitBlockId>> {
        match t {
            0 => payment::manual_groups(dm),
            1 => delivery::manual_groups(dm),
            _ => neworder::manual_groups(dm, self.cfg.ol_min + (t - 2)),
        }
    }

    fn next(&self, rng: &mut StdRng, _phase: usize) -> TxnRequest {
        let roll = rng.gen_range(0..100u8);
        if roll < self.mix.neworder {
            let k = rng.gen_range(self.cfg.ol_min..=self.cfg.ol_max);
            TxnRequest {
                template: self.template_index_for_ol(k),
                params: neworder::params(self, rng, k),
            }
        } else if roll < self.mix.neworder + self.mix.payment {
            TxnRequest {
                template: 0,
                params: payment::params(self, rng),
            }
        } else {
            TxnRequest {
                template: 1,
                params: delivery::params(self, rng),
            }
        }
    }

    /// Seed item prices, warehouse/district taxes and initial stock so the
    /// monetary arithmetic produces non-trivial values.
    fn seed(&self, client: &mut DtmClient) {
        // Items + stock, batched to bound read-set sizes.
        for chunk in (0..self.cfg.items).collect::<Vec<_>>().chunks(25) {
            crate::seed_txn(client, |client, ctx| {
                for &i in chunk {
                    let item = ObjectId::new(ITEM, i);
                    ctx.open(client, item, true)?;
                    ctx.set_field(item, I_PRICE, Value::Int(100 + (i as i64 % 900)));
                    for w in 0..self.cfg.warehouses {
                        let stock = ObjectId::new(STOCK, self.stock_index(w, i));
                        ctx.open(client, stock, true)?;
                        ctx.set_field(stock, S_QTY, Value::Int(1_000));
                    }
                }
                Ok(())
            });
        }
        crate::seed_txn(client, |client, ctx| {
            for w in 0..self.cfg.warehouses {
                let wh = ObjectId::new(WAREHOUSE, w);
                ctx.open(client, wh, true)?;
                ctx.set_field(wh, W_TAX, Value::Int(8));
                for d in 0..self.cfg.districts_per_warehouse {
                    let dist = ObjectId::new(DISTRICT, self.district_index(w, d));
                    ctx.open(client, dist, true)?;
                    ctx.set_field(dist, D_TAX, Value::Int(2));
                }
            }
            Ok(())
        });
    }
}

/// Parameters for the minimum-line-count NewOrder template — a stable
/// instance shape for micro-benchmarks that pin one template.
pub fn neworder_params_for_bench(tpcc: &Tpcc, rng: &mut StdRng) -> Vec<Value> {
    neworder::params(tpcc, rng, tpcc.cfg.ol_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn template_layout_matches_mix_dispatch() {
        let t = Tpcc::default();
        assert_eq!(t.templates()[0].name, "tpcc/payment");
        assert_eq!(t.templates()[1].name, "tpcc/delivery");
        assert_eq!(t.templates()[2].name, "tpcc/neworder/5");
        let last = t.templates().last().unwrap();
        assert_eq!(last.name, "tpcc/neworder/10");
    }

    #[test]
    fn mixes_dispatch_to_right_templates() {
        let mut rng = StdRng::seed_from_u64(5);
        let no = Tpcc::new(TpccConfig::default(), TpccMix::NEW_ORDER);
        for _ in 0..50 {
            assert!(no.next(&mut rng, 0).template >= 2);
        }
        let pay = Tpcc::new(TpccConfig::default(), TpccMix::PAYMENT);
        for _ in 0..50 {
            assert_eq!(pay.next(&mut rng, 0).template, 0);
        }
        let del = Tpcc::new(TpccConfig::default(), TpccMix::DELIVERY);
        for _ in 0..50 {
            assert_eq!(del.next(&mut rng, 0).template, 1);
        }
        let mixed = Tpcc::new(TpccConfig::default(), TpccMix::MIXED);
        let (mut n, mut p) = (0, 0);
        for _ in 0..400 {
            match mixed.next(&mut rng, 0).template {
                0 => p += 1,
                t if t >= 2 => n += 1,
                other => panic!("unexpected template {other}"),
            }
        }
        assert!(n > 120 && p > 120, "n={n} p={p}");
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_is_rejected() {
        let _ = Tpcc::new(
            TpccConfig::default(),
            TpccMix {
                neworder: 50,
                payment: 20,
                delivery: 10,
            },
        );
    }

    #[test]
    fn index_derivations_are_disjoint() {
        let t = Tpcc::default();
        let d01 = t.district_index(0, 1);
        let d10 = t.district_index(1, 0);
        assert_ne!(d01, d10);
        assert_ne!(t.customer_index(d01, 5), t.customer_index(d10, 5));
        assert_ne!(t.stock_index(0, 7), t.stock_index(1, 7));
    }

    #[test]
    fn all_templates_analyze() {
        let t = Tpcc::default();
        for p in t.templates() {
            let dm = DependencyModel::analyze(p.clone()).unwrap();
            assert!(
                dm.unit_count() >= 4,
                "{} has {} units",
                p.name,
                dm.unit_count()
            );
        }
    }

    #[test]
    fn manual_groups_are_legal_for_all_templates() {
        let t = Tpcc::default();
        for (idx, p) in t.templates().iter().enumerate() {
            let dm = DependencyModel::analyze(p.clone()).unwrap();
            let groups = t.manual_groups(idx, &dm);
            let seq = acn_core::BlockSeq::group_units(&dm, &groups);
            assert!(seq.len() >= 2, "{} manual nesting is trivial", p.name);
        }
    }
}
