//! The NewOrder transaction profile.
//!
//! Parameter layout for a `k`-line order:
//! `[w, d_index, c_index, item_0…item_{k−1}, stock_0…stock_{k−1},
//!   qty_0…qty_{k−1}]`.
//!
//! The TPC-C specification "performs the remote operations initially in
//! the execution" — Warehouse, then the hot District increment, then
//! Customer, then the per-line Item/Stock work, then the inserts. ACN's
//! measured win on this profile comes from shifting the District open as
//! close to the commit phase as the Order/NewOrder/OrderLine id
//! derivations allow.

use super::Tpcc;
use crate::schema::{
    CUSTOMER, C_DISCOUNT, DISTRICT, D_NEXT_OID, D_TAX, ITEM, I_PRICE, NEW_ORDER, NO_PENDING,
    OL_AMOUNT, OL_ITEM, ORDER, ORDER_LINE, O_CUSTOMER, O_OL_CNT, O_TOTAL, STOCK, S_QTY, S_YTD,
    WAREHOUSE, W_TAX,
};
use acn_txir::{ComputeOp, DependencyModel, Operand, Program, ProgramBuilder, UnitBlockId, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Build the `k`-line NewOrder template.
pub fn template(k: usize) -> Program {
    let params = (3 + 3 * k) as u16;
    let mut b = ProgramBuilder::new(format!("tpcc/neworder/{k}"), params);

    // Header: warehouse tax, district counter (hot), customer discount.
    let wh = b.open_read(WAREHOUSE, b.param(0));
    let wtax = b.get(wh, W_TAX);
    let d = b.open_update(DISTRICT, b.param(1));
    let dtax = b.get(d, D_TAX);
    let oid = b.get(d, D_NEXT_OID);
    let oid_next = b.add(oid, 1i64);
    b.set(d, D_NEXT_OID, oid_next);
    let cust = b.open_read(CUSTOMER, b.param(2));
    let disc = b.get(cust, C_DISCOUNT);

    // Per-line item price lookup and stock decrement.
    let mut total = b.constant(0i64);
    let mut amounts = Vec::with_capacity(k);
    for i in 0..k {
        let item_p = b.param((3 + i) as u16);
        let stock_p = b.param((3 + k + i) as u16);
        let qty_p = b.param((3 + 2 * k + i) as u16);
        let it = b.open_read(ITEM, item_p);
        let price = b.get(it, I_PRICE);
        let st = b.open_update(STOCK, stock_p);
        let sq = b.get(st, S_QTY);
        let raw = b.compute(ComputeOp::Sub, [sq.into(), qty_p.into()]);
        let enough = b.compute(ComputeOp::Ge, [raw.into(), 10i64.into()]);
        let refill = b.add(raw, 91i64);
        let newq = b.compute(
            ComputeOp::Select,
            [enough.into(), raw.into(), refill.into()],
        );
        b.set(st, S_QTY, newq);
        let sy = b.get(st, S_YTD);
        let sy2 = b.compute(ComputeOp::Add, [sy.into(), qty_p.into()]);
        b.set(st, S_YTD, sy2);
        let amt = b.compute(ComputeOp::Mul, [price.into(), qty_p.into()]);
        total = b.add(total, amt);
        amounts.push(amt);
    }

    // Inserts: ids derive from the District counter, so these blocks can
    // only run after the District open (the dependency ACN must respect
    // when shifting the hot block towards commit).
    let obase = b.compute(ComputeOp::Mul, [b.param(1).into(), 1_000_000i64.into()]);
    let oidx = b.add(obase, oid);
    let ord = b.open_update(ORDER, oidx);
    b.set(ord, O_OL_CNT, k as i64);
    b.set(ord, O_CUSTOMER, b.param(2));
    // grand = total · (100 + w_tax + d_tax) / 100 · (100 − discount) / 100
    let taxes = b.add(wtax, dtax);
    let tax_pct = b.add(taxes, 100i64);
    let taxed_raw = b.compute(ComputeOp::Mul, [total.into(), tax_pct.into()]);
    let taxed = b.compute(ComputeOp::Div, [taxed_raw.into(), 100i64.into()]);
    let disc_pct = b.compute(ComputeOp::Sub, [Operand::from(100i64), disc.into()]);
    let disc_raw = b.compute(ComputeOp::Mul, [taxed.into(), disc_pct.into()]);
    let grand = b.compute(ComputeOp::Div, [disc_raw.into(), 100i64.into()]);
    b.set(ord, O_TOTAL, grand);

    let no = b.open_update(NEW_ORDER, oidx);
    b.set(no, NO_PENDING, 1i64);

    let olbase = b.compute(ComputeOp::Mul, [oidx.into(), 16i64.into()]);
    for (i, &amt) in amounts.iter().enumerate() {
        let olx = b.add(olbase, i as i64);
        let ol = b.open_update(ORDER_LINE, olx);
        b.set(ol, OL_ITEM, b.param((3 + i) as u16));
        b.set(ol, OL_AMOUNT, amt);
    }
    b.finish()
}

/// Unit layout of the `k`-line template: 0 = Warehouse, 1 = District,
/// 2 = Customer, then per line (Item, Stock), then Order, NewOrder and the
/// OrderLines.
pub fn manual_groups(dm: &DependencyModel, k: usize) -> Vec<Vec<UnitBlockId>> {
    let expected = 3 + 2 * k + 2 + k;
    assert_eq!(dm.unit_count(), expected, "unexpected NewOrder unit count");
    // Programmer's grouping: header block, one block per line, one block
    // for all the inserts — spec order, District in the first block.
    let mut groups = vec![vec![0, 1, 2]];
    for i in 0..k {
        groups.push(vec![3 + 2 * i, 4 + 2 * i]);
    }
    groups.push((3 + 2 * k..expected).collect());
    groups
}

/// Generate instance parameters.
pub fn params(tpcc: &Tpcc, rng: &mut StdRng, k: usize) -> Vec<Value> {
    let cfg = tpcc.config();
    let w = rng.gen_range(0..cfg.warehouses);
    let d = rng.gen_range(0..cfg.districts_per_warehouse);
    let d_index = tpcc.district_index(w, d);
    let c = rng.gen_range(0..cfg.customers_per_district);
    let mut out = Vec::with_capacity(3 + 3 * k);
    out.push(Value::Int(w as i64));
    out.push(Value::Int(d_index as i64));
    out.push(Value::Int(tpcc.customer_index(d_index, c) as i64));
    // Items are drawn without replacement: opening the same Stock row via
    // two different statements would alias the handles, and the static
    // dependency analysis (like the paper's Soot-based one) assumes
    // distinct opens touch distinct objects when reordering blocks. The
    // executor now enforces that assumption at run time — an aliased open
    // aborts the attempt and re-runs it in flat program order — so drawing
    // without replacement is a performance choice (keeps the degraded
    // path cold), not a correctness requirement.
    let mut items: Vec<u64> = Vec::with_capacity(k);
    while items.len() < k {
        let it = rng.gen_range(0..cfg.items);
        if !items.contains(&it) {
            items.push(it);
        }
    }
    for &it in &items {
        out.push(Value::Int(it as i64));
    }
    for &it in &items {
        out.push(Value::Int(tpcc.stock_index(w, it) as i64));
    }
    for _ in 0..k {
        out.push(Value::Int(rng.gen_range(1..10i64)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn unit_structure_matches_layout() {
        let k = 5;
        let dm = DependencyModel::analyze(template(k)).unwrap();
        assert_eq!(dm.unit_count(), 3 + 2 * k + 2 + k);
        assert_eq!(dm.units[0].classes, vec![WAREHOUSE]);
        assert_eq!(dm.units[1].classes, vec![DISTRICT]);
        assert_eq!(dm.units[2].classes, vec![CUSTOMER]);
        assert_eq!(dm.units[3].classes, vec![ITEM]);
        assert_eq!(dm.units[4].classes, vec![STOCK]);
        let order_unit = 3 + 2 * k;
        assert_eq!(dm.units[order_unit].classes, vec![ORDER]);
        assert_eq!(dm.units[order_unit + 1].classes, vec![NEW_ORDER]);
        assert_eq!(dm.units[order_unit + 2].classes, vec![ORDER_LINE]);
    }

    #[test]
    fn inserts_depend_on_district_but_stocks_do_not() {
        let k = 5;
        let dm = DependencyModel::analyze(template(k)).unwrap();
        let edges = dm.default_unit_edges();
        let district = 1;
        let order_unit = 3 + 2 * k;
        assert!(
            edges.contains(&(district, order_unit)),
            "Order id derives from the District counter"
        );
        assert!(edges.contains(&(district, order_unit + 1)));
        for i in 0..k {
            let stock = 4 + 2 * i;
            assert!(
                !edges.contains(&(district, stock)),
                "stock line {i} must not depend on District"
            );
        }
    }

    #[test]
    fn params_shape_matches_template() {
        let tpcc = Tpcc::default();
        let mut rng = StdRng::seed_from_u64(2);
        for k in 5..=10 {
            let p = params(&tpcc, &mut rng, k);
            assert_eq!(p.len(), 3 + 3 * k);
            assert_eq!(template(k).params as usize, p.len());
        }
    }

    #[test]
    fn stock_indices_match_item_and_warehouse() {
        let tpcc = Tpcc::default();
        let mut rng = StdRng::seed_from_u64(4);
        let k = 5;
        let p = params(&tpcc, &mut rng, k);
        let w = p[0].as_int().unwrap() as u64;
        for i in 0..k {
            let item = p[3 + i].as_int().unwrap() as u64;
            let stock = p[3 + k + i].as_int().unwrap() as u64;
            assert_eq!(stock, tpcc.stock_index(w, item));
        }
    }

    #[test]
    fn manual_groups_have_district_in_first_block() {
        let k = 5;
        let dm = DependencyModel::analyze(template(k)).unwrap();
        let groups = manual_groups(&dm, k);
        assert!(groups[0].contains(&1), "spec order: District up front");
        assert_eq!(groups.len(), 1 + k + 1);
    }
}
