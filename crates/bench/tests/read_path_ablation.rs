//! Acceptance checks for the batched read path: the ablation must show a
//! ≥2× reduction in quorum traffic on Bank-style wide transactions, and
//! delta validation must keep shipped validate entries linear — not
//! quadratic — in the read-set size.

use acn_bench::figures::read_path_sample;

#[test]
fn batching_halves_messages_on_eight_object_bank_txns() {
    let unbatched = read_path_sample(8, 20, false);
    let batched = read_path_sample(8, 20, true);
    assert_eq!(unbatched.commits, 20);
    assert_eq!(batched.commits, 20);
    assert_eq!(unbatched.batched_rounds, 0);
    assert!(batched.batched_rounds > 0, "batch path must engage");
    assert!(
        unbatched.messages_sent >= 2 * batched.messages_sent,
        "expected >=2x message reduction: unbatched {} vs batched {}",
        unbatched.messages_sent,
        batched.messages_sent
    );
    assert!(
        unbatched.read_rounds >= 2 * batched.read_rounds,
        "expected >=2x fewer read rounds: {} vs {}",
        unbatched.read_rounds,
        batched.read_rounds
    );
    assert!(
        unbatched.bytes_sent > batched.bytes_sent,
        "batching must also shrink bytes: {} vs {}",
        unbatched.bytes_sent,
        batched.bytes_sent
    );
}

#[test]
fn delta_validation_grows_linearly_not_quadratically() {
    // Doubling the read-set size should roughly quadruple the unbatched
    // validate traffic (sum 0..n-1 per member) but at most double-ish the
    // batched traffic (one delta per Block).
    let txns = 10;
    let (small, large) = (6, 12);
    let unb_small = read_path_sample(small, txns, false);
    let unb_large = read_path_sample(large, txns, false);
    let bat_small = read_path_sample(small, txns, true);
    let bat_large = read_path_sample(large, txns, true);

    let unb_ratio =
        unb_large.validate_entries_sent as f64 / unb_small.validate_entries_sent.max(1) as f64;
    let bat_ratio =
        bat_large.validate_entries_sent as f64 / bat_small.validate_entries_sent.max(1) as f64;
    assert!(
        unb_ratio > 3.0,
        "unbatched validate traffic should grow ~quadratically, got {unb_ratio:.2}x \
         ({} -> {})",
        unb_small.validate_entries_sent,
        unb_large.validate_entries_sent
    );
    assert!(
        bat_ratio < 3.0,
        "batched validate traffic should grow ~linearly, got {bat_ratio:.2}x \
         ({} -> {})",
        bat_small.validate_entries_sent,
        bat_large.validate_entries_sent
    );
    // And in absolute terms the delta path ships far fewer entries.
    assert!(
        bat_large.validate_entries_sent * 2 < unb_large.validate_entries_sent,
        "delta validation must undercut full revalidation: {} vs {}",
        bat_large.validate_entries_sent,
        unb_large.validate_entries_sent
    );
}
