//! Regenerate the paper's Figure 4.
//!
//! ```sh
//! cargo run --release -p acn-bench --bin figures            # all six
//! cargo run --release -p acn-bench --bin figures fig4a      # one subplot
//! cargo run --release -p acn-bench --bin figures list       # enumerate
//! cargo run --release -p acn-bench --bin figures readpath   # batched-read ablation
//! cargo run --release -p acn-bench --bin figures batch      # batch-ingest before/after
//! cargo run --release -p acn-bench --bin figures batch --smoke --out dir/  # CI scale
//! cargo run --release -p acn-bench --bin figures wal        # durability-mode ablation
//! cargo run --release -p acn-bench --bin figures wal --smoke --out dir/    # CI scale
//! cargo run --release -p acn-bench --bin figures obs        # telemetry-overhead A/B
//! cargo run --release -p acn-bench --bin figures obs --smoke --out dir/    # CI scale
//! cargo run --release -p acn-bench --bin figures fig4f --trace out/  # span trace
//! cargo run --release -p acn-bench --bin figures fig4f --prom out/   # Prometheus text
//! ```

use acn_bench::figures::{
    all_figures, print_figure, print_read_path_ablation, run_figure, write_csv, write_jsonl,
    write_prom, write_trace,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--csv DIR` additionally writes each figure's series as CSV.
    let csv_dir = args.iter().position(|a| a == "--csv").map(|i| {
        let dir = args.get(i + 1).expect("--csv requires a directory").clone();
        args.drain(i..=i + 1);
        std::path::PathBuf::from(dir)
    });
    // `--jsonl DIR` writes each system's full MetricsReport as JSON-lines.
    let jsonl_dir = args.iter().position(|a| a == "--jsonl").map(|i| {
        let dir = args
            .get(i + 1)
            .expect("--jsonl requires a directory")
            .clone();
        args.drain(i..=i + 1);
        std::path::PathBuf::from(dir)
    });
    // `--trace DIR` writes each system's span trace as Chrome-trace JSON
    // (open in Perfetto or chrome://tracing). Requires observability on.
    let trace_dir = args.iter().position(|a| a == "--trace").map(|i| {
        let dir = args
            .get(i + 1)
            .expect("--trace requires a directory")
            .clone();
        args.drain(i..=i + 1);
        std::path::PathBuf::from(dir)
    });
    // `--prom DIR` writes each system's metrics in Prometheus exposition
    // format (parsed back and re-rendered for equality before landing).
    let prom_dir = args.iter().position(|a| a == "--prom").map(|i| {
        let dir = args
            .get(i + 1)
            .expect("--prom requires a directory")
            .clone();
        args.drain(i..=i + 1);
        std::path::PathBuf::from(dir)
    });
    let figs = all_figures();

    if args.first().map(String::as_str) == Some("list") {
        for f in &figs {
            println!("{:7} {} — paper: {}", f.id, f.title, f.paper_claim);
        }
        return;
    }

    if args.first().map(String::as_str) == Some("batch") {
        use acn_bench::batch_bench::{run_batch_bench, BenchScale};
        let scale = if args.iter().any(|a| a == "--smoke") {
            BenchScale::smoke()
        } else {
            BenchScale::full()
        };
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        let benches = run_batch_bench(&scale, &out).expect("batch bench failed");
        eprintln!(
            "wrote {} and {}",
            out.join("BENCH_seed.json").display(),
            out.join("BENCH_batch.json").display()
        );
        // TPC-C NewOrder must schedule at object granularity at every
        // scale: the symbolic resolver plus the hot-counter predictor
        // resolve each Var-indexed open, so no instance falls back to
        // the class-level pessimistic tier and the hot waves stop
        // serializing. (This is the regression the CI smoke leg guards.)
        let tpcc = benches.iter().find(|b| b.key == "tpcc_neworder").unwrap();
        for arm in [&tpcc.partial, &tpcc.full_restart] {
            let w = arm.waves.as_ref().expect("batch arm records wave stats");
            assert!(
                w.inexact_txns == 0 && w.max_width > 1,
                "NewOrder `{}` arm must resolve every access symbolically and \
                 parallelize its waves (inexact_txns={}, max_width={})",
                arm.label,
                w.inexact_txns,
                w.max_width
            );
        }
        // The CI smoke leg only checks the pipeline end to end; the
        // speedup floor is asserted at full scale.
        if !args.iter().any(|a| a == "--smoke") {
            let bank = benches.iter().find(|b| b.key == "bank").unwrap();
            assert!(
                bank.speedup_vs_seed() >= 1.3,
                "batch mode must beat the closed loop by >=1.3x on the saturated Bank \
                 (got {:.2}x)",
                bank.speedup_vs_seed()
            );
        }
        return;
    }

    if args.first().map(String::as_str) == Some("wal") {
        use acn_bench::batch_bench::BenchScale;
        use acn_bench::wal_bench::run_wal_bench;
        let scale = if args.iter().any(|a| a == "--smoke") {
            BenchScale::smoke()
        } else {
            BenchScale::full()
        };
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        let bench = run_wal_bench(&scale, &out).expect("wal bench failed");
        eprintln!("wrote {}", out.join("BENCH_wal.json").display());
        // The CI smoke leg only checks the pipeline end to end; the
        // retention floor is asserted at full scale. Group commit must
        // keep >=80% of Buffered's throughput while every ack it releases
        // carries EveryRecord-level durability — below that, batching is
        // not paying for the deferral and the knob needs retuning.
        if !args.iter().any(|a| a == "--smoke") {
            assert!(
                bench.group_commit_over_buffered() >= 0.8,
                "group commit must retain >=80% of Buffered throughput (got {:.1}%)",
                bench.group_commit_over_buffered() * 100.0
            );
            assert!(
                bench.group_commit.records_per_sync() > bench.every_record.records_per_sync(),
                "group commit must amortize more records per fsync than EveryRecord \
                 ({:.2} vs {:.2})",
                bench.group_commit.records_per_sync(),
                bench.every_record.records_per_sync()
            );
        }
        return;
    }

    if args.first().map(String::as_str) == Some("obs") {
        use acn_bench::batch_bench::BenchScale;
        use acn_bench::obs_bench::{run_obs_bench, OVERHEAD_BUDGET_PCT};
        let scale = if args.iter().any(|a| a == "--smoke") {
            BenchScale::smoke()
        } else {
            BenchScale::full()
        };
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        let bench = run_obs_bench(&scale, &out).expect("obs bench failed");
        eprintln!("wrote {}", out.join("BENCH_obs.json").display());
        println!(
            "telemetry overhead: {:.2}% (off {:.0} tps, on {:.0} tps, budget {:.0}%)",
            bench.overhead_pct(),
            bench.off.commits_per_sec,
            bench.on.commits_per_sec,
            OVERHEAD_BUDGET_PCT
        );
        // The "cheap enough to leave on" claim, enforced at every scale
        // this bench runs at — CI gates the smoke scale on exactly this.
        assert!(
            bench.overhead_pct() < OVERHEAD_BUDGET_PCT,
            "full telemetry must cost <{OVERHEAD_BUDGET_PCT}% throughput \
             (measured {:.2}%)",
            bench.overhead_pct()
        );
        return;
    }

    if args.first().map(String::as_str) == Some("readpath") {
        let objects: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
        let txns: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50);
        if objects < 2 {
            eprintln!("readpath needs at least 2 objects (got {objects})");
            std::process::exit(2);
        }
        print_read_path_ablation(objects, txns);
        return;
    }

    let wanted: Vec<&str> = if args.is_empty() {
        figs.iter().map(|f| f.id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for id in wanted {
        let Some(spec) = figs.iter().find(|f| f.id == id) else {
            eprintln!("unknown figure `{id}` — try `figures list`");
            std::process::exit(2);
        };
        eprintln!(
            "running {} (3 systems × {} intervals × {:?}) …",
            spec.id, spec.intervals, spec.interval
        );
        let result = run_figure(spec);
        print_figure(spec, &result);
        if let Some(dir) = &csv_dir {
            let path = write_csv(spec, &result, dir).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
        if let Some(dir) = &jsonl_dir {
            for path in write_jsonl(spec, &result, dir).expect("write jsonl") {
                eprintln!("wrote {}", path.display());
            }
        }
        if let Some(dir) = &trace_dir {
            let paths = write_trace(spec, &result, dir).expect("write trace");
            if paths.is_empty() {
                eprintln!("no spans recorded (is ACN_OBS=0?) — no trace written");
            }
            for path in paths {
                eprintln!("wrote {}", path.display());
            }
        }
        if let Some(dir) = &prom_dir {
            for path in write_prom(spec, &result, dir).expect("write prom") {
                eprintln!("wrote {}", path.display());
            }
        }
    }
}
