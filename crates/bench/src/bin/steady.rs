//! Steady-state diagnostic: run one workload at a FIXED contention phase
//! for all three systems — separates adaptation lag from structural
//! overhead when tuning the Figure-4 scenarios.
//!
//! ```sh
//! cargo run --release -p acn-bench --bin steady bank 0      # [workload] [phase] [hot_pool]
//! cargo run --release -p acn-bench --bin steady vacation 1
//! cargo run --release -p acn-bench --bin steady neworder 0
//! ```

use acn_bench::figures::obs_from_env;
use acn_dtm::ClusterConfig;
use acn_simnet::LatencyModel;
use acn_workloads::bank::{Bank, BankConfig};
use acn_workloads::tpcc::{Tpcc, TpccConfig, TpccMix};
use acn_workloads::vacation::{Vacation, VacationConfig};
use acn_workloads::{run_scenario, ScenarioConfig, SystemKind, Workload};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("bank");
    let phase: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let hot_pool: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    let threads: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);

    let workload: Box<dyn Workload> = match name {
        "bank" => Box::new(Bank::new(BankConfig {
            hot_pool,
            cold_pool: 4096,
            write_pct: 90,
        })),
        "vacation" => Box::new(Vacation::new(VacationConfig {
            hot_pool,
            cold_pool: 4096,
            customers: 8192,
            write_pct: 90,
            queries_per_txn: 8,
        })),
        "neworder" => Box::new(Tpcc::new(
            TpccConfig {
                warehouses: 1,
                districts_per_warehouse: 4,
                customers_per_district: 400,
                items: 200,
                ol_min: 5,
                ol_max: 10,
            },
            TpccMix::NEW_ORDER,
        )),
        "payment" => Box::new(Tpcc::new(
            TpccConfig {
                warehouses: 1,
                districts_per_warehouse: 4,
                customers_per_district: 400,
                items: 200,
                ol_min: 5,
                ol_max: 10,
            },
            TpccMix::PAYMENT,
        )),
        other => {
            eprintln!("unknown workload `{other}` (bank|vacation|neworder|payment)");
            std::process::exit(2);
        }
    };

    println!("steady-state: workload={name} phase={phase}");
    for system in [SystemKind::QrDtm, SystemKind::QrCn, SystemKind::QrAcn] {
        let mut cluster = ClusterConfig::paper(threads);
        cluster.latency = LatencyModel::Uniform {
            min: Duration::from_micros(80),
            max: Duration::from_micros(240),
        };
        cluster.window.window = Duration::from_millis(150);
        let cfg = ScenarioConfig {
            cluster,
            client_threads: threads,
            intervals: 5,
            interval: Duration::from_millis(400),
            phase_per_interval: vec![phase],
            system,
            controller: acn_core::ControllerConfig {
                period: Duration::from_millis(400),
                alpha: 1.0,
                sampling: acn_core::SamplingMode::Explicit,
            },
            retry: acn_core::RetryPolicy::default(),
            exec: acn_core::ExecutorConfig::default(),
            seed: 42,
            chaos: None,
            history: None,
            obs: obs_from_env(),
            batch: None,
            slo: None,
        };
        let r = run_scenario(workload.as_ref(), &cfg);
        let per: Vec<String> = (0..cfg.intervals)
            .map(|i| format!("{:.0}", r.throughput(i)))
            .collect();
        // Top abort-inducing classes ride along with the throughput line
        // (empty when ACN_OBS=0 disables observability).
        let top = r
            .obs
            .as_ref()
            .map(|obs| {
                obs.aborts
                    .top_classes(3)
                    .into_iter()
                    .map(|(name, n)| format!("{name}={n}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .filter(|s| !s.is_empty())
            .map(|s| format!("  top aborters: {s}"))
            .unwrap_or_default();
        println!(
            "{:>7}: [{}] tail-mean {:.0} txn/s  ({}f/{}p/{}l aborts, {} reconfigs){}",
            system.to_string(),
            per.join(", "),
            r.mean_throughput_from(2),
            r.total_full_aborts(),
            r.total_partial_aborts(),
            r.total_locked_aborts(),
            r.refreshes,
            top
        );
    }
}
