//! # acn-bench — figure regeneration and benchmark support
//!
//! The [`figures`] module defines one specification per
//! subplot of the paper's Figure 4 (workload, phase schedule, cluster
//! shape) and a runner that executes all three systems (QR-DTM, QR-CN,
//! QR-ACN) and prints the throughput-per-interval series next to the
//! paper's reported improvements. The `figures` binary is the CLI front
//! end; criterion micro-benchmarks live in `benches/`.

pub mod batch_bench;
pub mod figures;
pub mod obs_bench;
pub mod wal_bench;
