//! The telemetry-overhead A/B: `BENCH_obs.json`.
//!
//! Same saturated Bank, same closed loop, two arms: observability fully
//! on ([`acn_obs::ObsConfig::default`] — trace rings, abort attribution,
//! the wasted-work ledger, windowed series *and* span tracing) versus
//! fully off (`cfg.obs = None`, the `ACN_OBS=0` kill-switch path). Each
//! arm runs three times and keeps its best throughput, so a scheduler
//! hiccup in one rep cannot masquerade as telemetry cost. The exported
//! overhead is the fraction of the off arm's throughput the on arm gives
//! up; the `figures obs` front end asserts it stays under
//! [`OVERHEAD_BUDGET_PCT`] — the "observability is cheap enough to leave
//! on" claim, enforced at every scale the bench runs at.

use crate::batch_bench::{saturated_bank, BenchScale};
use acn_dtm::ClusterConfig;
use acn_obs::ObsConfig;
use acn_simnet::LatencyModel;
use acn_workloads::{run_scenario, ScenarioConfig, SystemKind, Workload};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The on arm may cost at most this share of the off arm's throughput.
pub const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Reps per arm; each arm reports its best.
const REPS: usize = 3;

/// One arm of the A/B.
#[derive(Debug, Clone)]
pub struct ObsArm {
    /// `obs_on` / `obs_off`.
    pub label: &'static str,
    /// Best-of-reps committed transactions per second.
    pub commits_per_sec: f64,
    /// Commits of the best rep.
    pub commits: u64,
}

/// The measured A/B.
#[derive(Debug, Clone)]
pub struct ObsBench {
    /// Telemetry disabled (`cfg.obs = None`).
    pub off: ObsArm,
    /// Telemetry fully enabled ([`ObsConfig::default`]).
    pub on: ObsArm,
}

impl ObsBench {
    /// Throughput the on arm gives up, as a percentage of the off arm's.
    /// Negative when the on arm happened to run faster (noise floor).
    pub fn overhead_pct(&self) -> f64 {
        (1.0 - self.on.commits_per_sec / self.off.commits_per_sec.max(1e-9)) * 100.0
    }
}

fn obs_scenario(scale: &BenchScale, obs: Option<ObsConfig>) -> ScenarioConfig {
    let mut cluster = ClusterConfig::paper(scale.threads);
    cluster.latency = LatencyModel::Uniform {
        min: Duration::from_micros(80),
        max: Duration::from_micros(240),
    };
    cluster.window.window = Duration::from_millis(150);
    let mut cfg = ScenarioConfig::scaled(SystemKind::QrCn, scale.threads);
    cfg.cluster = cluster;
    cfg.intervals = scale.intervals;
    cfg.interval = scale.interval;
    cfg.obs = obs;
    cfg
}

fn run_arm(
    label: &'static str,
    workload: &dyn Workload,
    scale: &BenchScale,
    obs: Option<ObsConfig>,
) -> ObsArm {
    let secs = scale.interval.as_secs_f64() * scale.intervals as f64;
    let mut best = ObsArm {
        label,
        commits_per_sec: 0.0,
        commits: 0,
    };
    for rep in 0..REPS {
        eprintln!("  obs bench: {label} rep {}/{REPS} …", rep + 1);
        let r = run_scenario(workload, &obs_scenario(scale, obs));
        let tput = if secs > 0.0 {
            r.total_commits() as f64 / secs
        } else {
            0.0
        };
        if tput > best.commits_per_sec {
            best.commits_per_sec = tput;
            best.commits = r.total_commits();
        }
    }
    best
}

/// Render `BENCH_obs.json`. Values are formatted with fixed precision
/// from already-guarded finite floats, so the output is always valid
/// JSON.
pub fn render_obs_json(bench: &ObsBench, scale: &BenchScale) -> String {
    let arm = |a: &ObsArm| {
        format!(
            "{{\n      \"commits_per_sec\": {:.1},\n      \"commits\": {}\n    }}",
            a.commits_per_sec, a.commits
        )
    };
    format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"workload\": \"bank_saturated\",\n  \
         \"threads\": {},\n  \"intervals\": {},\n  \"interval_ms\": {},\n  \
         \"reps_per_arm\": {},\n  \"arms\": {{\n    \"obs_off\": {},\n    \"obs_on\": {}\n  }},\n  \
         \"overhead_pct\": {:.2},\n  \"budget_pct\": {:.1}\n}}\n",
        scale.threads,
        scale.intervals,
        scale.interval.as_millis(),
        REPS,
        arm(&bench.off),
        arm(&bench.on),
        bench.overhead_pct(),
        OVERHEAD_BUDGET_PCT,
    )
}

/// Run the A/B at the given scale and write `BENCH_obs.json` under `out`.
/// Does *not* assert the budget — the caller owns the gate, so tests can
/// inspect a failing measurement instead of panicking inside the run.
pub fn run_obs_bench(scale: &BenchScale, out: &Path) -> std::io::Result<ObsBench> {
    let bank = saturated_bank();
    let off = run_arm("obs_off", &bank, scale, None);
    let on = run_arm("obs_on", &bank, scale, Some(ObsConfig::default()));
    let bench = ObsBench { off, on };
    std::fs::create_dir_all(out)?;
    let path: PathBuf = out.join("BENCH_obs.json");
    std::fs::write(&path, render_obs_json(&bench, scale))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math_and_json_shape() {
        let bench = ObsBench {
            off: ObsArm {
                label: "obs_off",
                commits_per_sec: 1000.0,
                commits: 1200,
            },
            on: ObsArm {
                label: "obs_on",
                commits_per_sec: 970.0,
                commits: 1164,
            },
        };
        assert!((bench.overhead_pct() - 3.0).abs() < 1e-9);
        let json = render_obs_json(&bench, &BenchScale::smoke());
        assert!(json.contains("\"overhead_pct\": 3.00"));
        assert!(json.contains("\"obs_off\""));
        assert!(json.contains("\"obs_on\""));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn zero_throughput_off_arm_never_divides_by_zero() {
        let bench = ObsBench {
            off: ObsArm {
                label: "obs_off",
                commits_per_sec: 0.0,
                commits: 0,
            },
            on: ObsArm {
                label: "obs_on",
                commits_per_sec: 0.0,
                commits: 0,
            },
        };
        assert!(bench.overhead_pct().is_finite());
        let json = render_obs_json(&bench, &BenchScale::smoke());
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }
}
