//! Figure-4 experiment specifications and the three-system runner.
//!
//! Every subplot of the paper's Figure 4 is a time series of throughput
//! (committed transactions per second) per measurement interval for
//! QR-DTM (flat), QR-CN (manual closed nesting) and QR-ACN. The paper's
//! test-bed is 10 servers + up to 20 clients on a 1 Gbps LAN with 10 s
//! intervals; this harness scales time down (LAN-like simulated latency,
//! sub-second intervals) while preserving the cost structure, so the
//! *shape* — who wins, roughly by how much, and when QR-ACN "kicks in" —
//! is the reproduction target, not absolute numbers.

use acn_dtm::ClusterConfig;
use acn_obs::{MetricsReport, ObsConfig};
use acn_simnet::LatencyModel;
use acn_workloads::bank::{Bank, BankConfig};
use acn_workloads::tpcc::{Tpcc, TpccConfig, TpccMix};
use acn_workloads::vacation::{Vacation, VacationConfig};
use acn_workloads::{run_scenario, ScenarioConfig, ScenarioResult, SystemKind, Workload};
use std::time::Duration;

/// Observability default for bench runs: on unless `ACN_OBS=0`. The
/// trace-ring path costs a couple of integer stores per event, so leaving
/// it on is the right default; the env switch exists for overhead A/B
/// measurements.
pub fn obs_from_env() -> Option<ObsConfig> {
    match std::env::var("ACN_OBS") {
        Ok(v) if v == "0" => None,
        _ => Some(ObsConfig::default()),
    }
}

/// One experiment (= one subplot of Figure 4).
pub struct FigureSpec {
    pub id: &'static str,
    pub title: &'static str,
    /// What the paper reports for this subplot.
    pub paper_claim: &'static str,
    pub workload: Box<dyn Workload>,
    /// Contention phase per interval (empty = static workload).
    pub phases: Vec<usize>,
    pub intervals: usize,
    pub interval: Duration,
    pub threads: usize,
}

fn paper_cluster(threads: usize) -> ClusterConfig {
    let mut c = ClusterConfig::paper(threads);
    // Slightly heavier than the LAN default so re-executed remote work
    // dominates local bookkeeping, as on the paper's test-bed.
    c.latency = LatencyModel::Uniform {
        min: Duration::from_micros(80),
        max: Duration::from_micros(240),
    };
    c.window.window = Duration::from_millis(150);
    c
}

fn tpcc_contended() -> TpccConfig {
    TpccConfig {
        warehouses: 1,
        districts_per_warehouse: 4,
        customers_per_district: 400,
        items: 200,
        ol_min: 5,
        ol_max: 10,
    }
}

/// All six Figure-4 experiments.
pub fn all_figures() -> Vec<FigureSpec> {
    vec![
        FigureSpec {
            id: "fig4a",
            title: "TPC-C, 100% NewOrder",
            paper_claim: "QR-ACN +53% over QR-DTM, +38% over QR-CN after kick-in",
            workload: Box::new(Tpcc::new(tpcc_contended(), TpccMix::NEW_ORDER)),
            phases: vec![],
            intervals: 6,
            interval: Duration::from_millis(400),
            threads: 8,
        },
        FigureSpec {
            id: "fig4b",
            title: "TPC-C, 100% Payment",
            paper_claim: "QR-ACN +53% over QR-DTM, +45% over QR-CN after kick-in",
            workload: Box::new(Tpcc::new(tpcc_contended(), TpccMix::PAYMENT)),
            phases: vec![],
            intervals: 6,
            interval: Duration::from_millis(400),
            threads: 8,
        },
        FigureSpec {
            id: "fig4c",
            title: "TPC-C, 50% NewOrder + 50% Payment",
            paper_claim: "QR-ACN +28% over QR-DTM, +9% over QR-CN after kick-in",
            workload: Box::new(Tpcc::new(tpcc_contended(), TpccMix::MIXED)),
            phases: vec![],
            intervals: 6,
            interval: Duration::from_millis(400),
            threads: 8,
        },
        FigureSpec {
            id: "fig4d",
            title: "TPC-C, 100% Delivery (uniform low contention)",
            paper_claim: "no system wins; QR-ACN within 3% of QR-CN (overhead probe)",
            workload: Box::new(Tpcc::new(tpcc_contended(), TpccMix::DELIVERY)),
            phases: vec![],
            intervals: 6,
            interval: Duration::from_millis(400),
            threads: 8,
        },
        FigureSpec {
            id: "fig4e",
            title: "Vacation, hot table shifts at t2 and t4",
            paper_claim: "QR-ACN +120% over QR-DTM, +35% over QR-CN at t2; +8% over QR-DTM at t4",
            workload: Box::new(Vacation::new(VacationConfig {
                hot_pool: 3,
                cold_pool: 4096,
                customers: 8192,
                write_pct: 90,
                queries_per_txn: 8,
            })),
            phases: vec![0, 1, 1, 2, 2, 2],
            intervals: 6,
            interval: Duration::from_millis(400),
            threads: 16,
        },
        FigureSpec {
            id: "fig4f",
            title: "Bank, 90% writes, hot class shifts at t2 and t4",
            paper_claim: "QR-ACN gain up to 55% after optimizing sub-transactions",
            workload: Box::new(Bank::new(BankConfig {
                hot_pool: 6,
                cold_pool: 4096,
                write_pct: 90,
            })),
            phases: vec![0, 1, 1, 0, 0, 0],
            intervals: 6,
            interval: Duration::from_millis(400),
            threads: 8,
        },
    ]
}

/// Results of one figure: the three systems' series.
pub struct FigureResult {
    pub spec_id: &'static str,
    pub results: Vec<ScenarioResult>,
}

/// Run one figure's three systems sequentially.
pub fn run_figure(spec: &FigureSpec) -> FigureResult {
    let systems = [SystemKind::QrDtm, SystemKind::QrCn, SystemKind::QrAcn];
    let mut results = Vec::new();
    for system in systems {
        let cfg = ScenarioConfig {
            cluster: paper_cluster(spec.threads),
            client_threads: spec.threads,
            intervals: spec.intervals,
            interval: spec.interval,
            phase_per_interval: spec.phases.clone(),
            system,
            controller: acn_core::ControllerConfig {
                // One assessment per measurement interval, like the paper's
                // 10 s algorithm period against 10 s intervals. Samples are
                // lightly smoothed so one noisy window cannot flip the
                // composition.
                period: spec.interval,
                alpha: 0.7,
                sampling: acn_core::SamplingMode::Piggyback,
            },
            retry: acn_core::RetryPolicy::default(),
            exec: acn_core::ExecutorConfig::default(),
            seed: 42,
            chaos: None,
            history: None,
            obs: obs_from_env(),
            batch: None,
            slo: None,
        };
        eprintln!("  {system} …");
        results.push(run_scenario(spec.workload.as_ref(), &cfg));
    }
    FigureResult {
        spec_id: spec.id,
        results,
    }
}

/// Render the per-interval table plus the headline comparisons.
pub fn print_figure(spec: &FigureSpec, fig: &FigureResult) {
    println!("\n== {} — {} ==", spec.id, spec.title);
    println!("paper: {}", spec.paper_claim);
    if !spec.phases.is_empty() {
        println!("phase schedule: {:?}", spec.phases);
    }
    print!("{:>10}", "interval");
    for r in &fig.results {
        print!("{:>10}", r.system.to_string());
    }
    println!();
    for i in 0..spec.intervals {
        print!("{:>10}", format!("t{}", i + 1));
        for r in &fig.results {
            print!("{:>10.0}", r.throughput(i));
        }
        println!();
    }
    let (dtm, cn, acn) = (&fig.results[0], &fig.results[1], &fig.results[2]);
    // "After kick-in" = from the second interval on, once the first
    // reconfiguration has landed.
    let from = 1;
    let (d, c, a) = (
        dtm.mean_throughput_from(from),
        cn.mean_throughput_from(from),
        acn.mean_throughput_from(from),
    );
    println!(
        "measured (t2..): QR-ACN vs QR-DTM {:+.0}%, QR-ACN vs QR-CN {:+.0}%",
        (a / d - 1.0) * 100.0,
        (a / c - 1.0) * 100.0
    );
    // Per-interval peaks — the shift experiments mix phases that favour
    // different systems, so the best-interval gain is the headline the
    // paper quotes ("gain becomes up to 55%").
    let peak = |base: &ScenarioResult| {
        (0..spec.intervals)
            .map(|i| acn.throughput(i) / base.throughput(i).max(1e-9) - 1.0)
            .fold(f64::NEG_INFINITY, f64::max)
            * 100.0
    };
    println!(
        "peak interval gain: QR-ACN vs QR-DTM {:+.0}%, QR-ACN vs QR-CN {:+.0}%",
        peak(dtm),
        peak(cn)
    );
    let pct = |r: &ScenarioResult, q: f64| {
        r.latency
            .percentile(q)
            .map(|d| format!("{:.1}ms", d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "-".into())
    };
    println!(
        "commit latency p50/p99: DTM {}/{}  CN {}/{}  ACN {}/{}",
        pct(dtm, 0.5),
        pct(dtm, 0.99),
        pct(cn, 0.5),
        pct(cn, 0.99),
        pct(acn, 0.5),
        pct(acn, 0.99),
    );
    println!(
        "aborts: DTM {}f/{}p  CN {}f/{}p  ACN {}f/{}p  (ACN reconfigs: {})",
        dtm.total_full_aborts(),
        dtm.total_partial_aborts(),
        cn.total_full_aborts(),
        cn.total_partial_aborts(),
        acn.total_full_aborts(),
        acn.total_partial_aborts(),
        acn.refreshes
    );
    for r in &fig.results {
        if let Some(obs) = &r.obs {
            let top: Vec<String> = obs
                .aborts
                .top_classes(3)
                .into_iter()
                .map(|(name, n)| format!("{name}={n}"))
                .collect();
            if !top.is_empty() {
                println!(
                    "{:>7} hottest aborters: {}",
                    r.system.to_string(),
                    top.join("  ")
                );
            }
        }
    }
}

/// Write one figure's series as CSV (`interval,system,throughput,commits,
/// full_aborts,partial_aborts`), for external plotting.
pub fn write_csv(
    spec: &FigureSpec,
    fig: &FigureResult,
    dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", spec.id));
    let mut f = std::fs::File::create(&path)?;
    writeln!(
        f,
        "interval,system,throughput,commits,full_aborts,partial_aborts"
    )?;
    for r in &fig.results {
        for (i, w) in r.intervals.iter().enumerate() {
            writeln!(
                f,
                "{},{},{:.1},{},{},{}",
                i + 1,
                r.system,
                r.throughput(i),
                w.commits,
                w.full_aborts,
                w.partial_aborts
            )?;
        }
    }
    Ok(path)
}

/// Write one figure's full metrics as JSON-lines, one
/// `<figure>-<system>.jsonl` file per system, each a complete
/// [`MetricsReport`] export. Every file is parsed back and compared for
/// equality before this returns, so a partial write never goes unnoticed.
pub fn write_jsonl(
    spec: &FigureSpec,
    fig: &FigureResult,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for r in &fig.results {
        let report = r.metrics_report(&[
            ("figure", spec.id.to_string()),
            ("title", spec.title.to_string()),
        ]);
        let text = report.to_json_lines();
        let parsed = MetricsReport::parse_json_lines(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        assert_eq!(parsed, report, "JSON-lines export must round-trip");
        let path = dir.join(format!(
            "{}-{}.jsonl",
            spec.id,
            r.system.to_string().to_lowercase()
        ));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(text.as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

/// Write one figure's metrics in Prometheus exposition format, one
/// `<figure>-<system>.prom` file per system. Each exposition is parsed
/// back with the vendored parser and re-rendered for exact equality
/// before it lands on disk — the scrape surface rides the same
/// round-trip contract as every other codec in the workspace.
pub fn write_prom(
    spec: &FigureSpec,
    fig: &FigureResult,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for r in &fig.results {
        let report = r.metrics_report(&[
            ("figure", spec.id.to_string()),
            ("title", spec.title.to_string()),
        ]);
        let families = acn_obs::report_to_prom(&report);
        let text = acn_obs::render_prom(&families);
        let parsed = acn_obs::parse_prom(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        assert_eq!(
            acn_obs::render_prom(&parsed),
            text,
            "Prometheus exposition must round-trip"
        );
        let path = dir.join(format!(
            "{}-{}.prom",
            spec.id,
            r.system.to_string().to_lowercase()
        ));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(text.as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

/// Write one figure's span traces as Chrome-trace JSON, one
/// `<figure>-<system>.trace.json` file per system that recorded spans —
/// open them in Perfetto or `chrome://tracing`. Every file is parsed back
/// with the vendored parser and compared for exact equality before this
/// returns, so a malformed export never goes unnoticed.
pub fn write_trace(
    spec: &FigureSpec,
    fig: &FigureResult,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for r in &fig.results {
        let Some(obs) = &r.obs else { continue };
        if obs.spans.is_empty() {
            continue;
        }
        let text = acn_obs::write_chrome_trace(&obs.spans, &obs.thread_traces);
        let (spans, threads) = acn_obs::parse_chrome_trace(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        assert_eq!(spans, obs.spans, "Chrome-trace export must round-trip");
        assert_eq!(
            threads, obs.thread_traces,
            "completeness rows must round-trip"
        );
        let path = dir.join(format!(
            "{}-{}.trace.json",
            spec.id,
            r.system.to_string().to_lowercase()
        ));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(text.as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

/// One arm of the read-path ablation: network and client counters for a
/// run of Bank-style wide-read transactions under one executor config.
#[derive(Debug, Clone, Copy)]
pub struct ReadPathSample {
    /// Messages handed to the network across the whole run.
    pub messages_sent: u64,
    /// Estimated payload bytes handed to the network.
    pub bytes_sent: u64,
    /// Quorum read rounds the client completed.
    pub read_rounds: u64,
    /// Of those, batched rounds (multi-object).
    pub batched_rounds: u64,
    /// Validation entries shipped, counted per receiving member.
    pub validate_entries_sent: u64,
    /// Transactions committed.
    pub commits: u64,
}

/// Run `txns` Bank-style audit-and-credit transactions, each opening
/// `objects` accounts (read-mostly: the first account takes the credit),
/// on a fresh 10-server cluster, and return the counter deltas. The
/// schedule splits the opens into two Blocks so the second batch exercises
/// delta validation against the first batch's watermarks.
pub fn read_path_sample(objects: usize, txns: usize, batched: bool) -> ReadPathSample {
    use acn_core::{BlockSeq, ExecStats, ExecutorConfig, ExecutorEngine, RetryPolicy};
    use acn_dtm::Cluster;
    use acn_txir::{DependencyModel, FieldId, ObjClass, ProgramBuilder, Value};

    const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
    const BAL: FieldId = FieldId(0);
    assert!(objects >= 2, "the ablation needs a multi-object read-set");

    // audit+credit(objects): sum every account's balance, credit account 0.
    let mut b = ProgramBuilder::new("bank/audit_credit", objects as u16);
    let first = b.open_update(ACCOUNT, b.param(0));
    let mut sum = b.get(first, BAL);
    for i in 1..objects as u16 {
        let acc = b.open_read(ACCOUNT, b.param(i));
        let v = b.get(acc, BAL);
        sum = b.add(sum, v);
    }
    let credited = b.add(sum, 1i64);
    b.set(first, BAL, credited);
    let dm = DependencyModel::analyze(b.finish()).unwrap();

    // Two Blocks of objects/2 opens each: the second Block's batch ships
    // only the validation delta past the first batch's watermark.
    let half = dm.unit_count() / 2;
    let groups = vec![
        (0..half).collect::<Vec<_>>(),
        (half..dm.unit_count()).collect(),
    ];
    let seq = BlockSeq::group_units(&dm, &groups);

    let cluster = Cluster::start(acn_dtm::ClusterConfig::test(10, 1));
    let mut client = cluster.client(0);
    let engine = ExecutorEngine::with_config(
        RetryPolicy::default(),
        ExecutorConfig {
            batched_reads: batched,
            ..ExecutorConfig::default()
        },
    );
    let net_before = cluster.net().stats();
    let cli_before = client.stats();
    let mut stats = ExecStats::default();
    let params: Vec<Value> = (0..objects as i64).map(Value::Int).collect();
    for _ in 0..txns {
        engine
            .run(&mut client, &dm.program, &params, &seq, &mut stats)
            .expect("ablation transaction failed");
    }
    let net = cluster.net().stats().since(&net_before);
    let cli = client.stats();
    cluster.shutdown();
    ReadPathSample {
        messages_sent: net.sent,
        bytes_sent: net.bytes_sent,
        read_rounds: cli.remote_reads - cli_before.remote_reads,
        batched_rounds: cli.batched_reads - cli_before.batched_reads,
        validate_entries_sent: cli.validate_entries_sent - cli_before.validate_entries_sent,
        commits: stats.commits,
    }
}

/// Run and print the batched-vs-unbatched read-path ablation.
pub fn print_read_path_ablation(objects: usize, txns: usize) {
    println!("\n== read path ablation — {objects}-object Bank audit+credit × {txns} ==");
    let unbatched = read_path_sample(objects, txns, false);
    let batched = read_path_sample(objects, txns, true);
    let row = |label: &str, s: &ReadPathSample| {
        println!(
            "{label:>10}: {:>6} msgs  {:>8} bytes  {:>5} read rounds ({} batched)  {:>6} validate entries",
            s.messages_sent, s.bytes_sent, s.read_rounds, s.batched_rounds, s.validate_entries_sent
        );
    };
    row("unbatched", &unbatched);
    row("batched", &batched);
    println!(
        "reduction: {:.1}x messages, {:.1}x read rounds, {:.1}x validate entries",
        unbatched.messages_sent as f64 / batched.messages_sent.max(1) as f64,
        unbatched.read_rounds as f64 / batched.read_rounds.max(1) as f64,
        unbatched.validate_entries_sent as f64 / batched.validate_entries_sent.max(1) as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_figures_are_specified() {
        let figs = all_figures();
        assert_eq!(figs.len(), 6);
        let ids: Vec<&str> = figs.iter().map(|f| f.id).collect();
        assert_eq!(
            ids,
            vec!["fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f"]
        );
    }

    #[test]
    fn shift_figures_have_phase_schedules() {
        let figs = all_figures();
        assert!(figs[4].phases.len() == figs[4].intervals);
        assert!(figs[5].phases.len() == figs[5].intervals);
        // TPC-C figures are static workloads.
        for f in &figs[..4] {
            assert!(f.phases.is_empty());
        }
    }

    #[test]
    fn workloads_generate_for_every_declared_phase() {
        use rand::SeedableRng;
        let figs = all_figures();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for f in &figs {
            for &p in f.phases.iter().chain([0usize].iter()) {
                let req = f.workload.next(&mut rng, p);
                assert!(req.template < f.workload.templates().len());
            }
        }
    }
}
