//! The batch-ingest before/after benchmark: `BENCH_seed.json` (closed
//! loop) vs `BENCH_batch.json` (conflict-graph batch scheduling), on the
//! saturated Bank and the TPC-C NewOrder profile.
//!
//! The seed arm is the repo's ordinary closed loop: every worker generates
//! and retries its own transactions, so under a saturated hot set most of
//! the cluster's time goes into optimistic work that validation then
//! throws away. The batch arm feeds the same workload through the
//! conflict-graph wave scheduler: statically known conflicts become
//! ordering edges, independent transactions run concurrently, and the
//! dynamic leftovers surface as `Spec*` aborts repaired by partial
//! rollback. The third arm — same scheduler, flat sequences — is the
//! Block-STM-style ablation: every mis-speculation pays a full
//! re-execution, isolating what partial rollback itself buys.

use acn_core::RetryPolicy;
use acn_dtm::ClusterConfig;
use acn_obs::AbortKind;
use acn_simnet::LatencyModel;
use acn_workloads::bank::{Bank, BankConfig};
use acn_workloads::tpcc::{Tpcc, TpccConfig, TpccMix};
use acn_workloads::{
    run_scenario, BatchConfig, ScenarioConfig, ScenarioResult, SpecMode, SystemKind, Workload,
};
use std::time::Duration;

/// Run shape for the before/after comparison. [`BenchScale::full`] is the
/// recorded configuration; [`BenchScale::smoke`] is the CI-sized variant.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Worker threads (= client slots).
    pub threads: usize,
    /// Measurement windows per arm.
    pub intervals: usize,
    /// Window length.
    pub interval: Duration,
    /// Transactions per scheduled wave.
    pub wave: usize,
}

impl BenchScale {
    /// The configuration behind the recorded `BENCH_*.json` numbers.
    pub fn full() -> Self {
        BenchScale {
            threads: 8,
            intervals: 5,
            interval: Duration::from_millis(400),
            wave: 32,
        }
    }

    /// Reduced scale for the CI bench-smoke job: same shape, ~6x shorter.
    pub fn smoke() -> Self {
        BenchScale {
            threads: 4,
            intervals: 3,
            interval: Duration::from_millis(120),
            wave: 16,
        }
    }
}

/// The saturated Bank: a small hot pool of branches under 90% writes.
/// Sixteen branches across eight optimistic workers collide on most
/// attempts (each transfer writes two branches), so the closed loop
/// discards over half its work as validation aborts — while the colored
/// conflict graph still yields enough parallel width to keep the workers
/// fed. A pool of four would serialize the graph itself (every pair of
/// transfers conflicts) and measure nothing but the chain.
pub(crate) fn saturated_bank() -> Bank {
    Bank::new(BankConfig {
        hot_pool: 16,
        cold_pool: 2048,
        write_pct: 90,
    })
}

/// TPC-C NewOrder: Param-indexed warehouse/district/stock opens resolve
/// exactly, and the Var-indexed order rows (`oidx = d·1M + D_NEXT_OID`)
/// now resolve *predicted-exact* through the symbolic evaluator plus the
/// coordinator's hot-counter predictor — so waves schedule at object
/// granularity (`inexact_txns == 0`, `max_width > 1`) instead of
/// serializing under the class-level fallback. The profile still runs
/// with `speculate_inexact` so any residually inexact instance
/// speculates rather than serializes; wrong counter predictions surface
/// as `spec_mispredict` aborts repaired per [`SpecMode`].
fn tpcc_new_order() -> Tpcc {
    Tpcc::new(
        TpccConfig {
            warehouses: 1,
            districts_per_warehouse: 4,
            customers_per_district: 400,
            items: 200,
            ol_min: 5,
            ol_max: 10,
        },
        TpccMix::NEW_ORDER,
    )
}

fn bench_scenario(scale: &BenchScale, batch: Option<BatchConfig>) -> ScenarioConfig {
    let mut cluster = ClusterConfig::paper(scale.threads);
    cluster.latency = LatencyModel::Uniform {
        min: Duration::from_micros(80),
        max: Duration::from_micros(240),
    };
    cluster.window.window = Duration::from_millis(150);
    let mut cfg = ScenarioConfig::scaled(SystemKind::QrCn, scale.threads);
    cfg.cluster = cluster;
    cfg.intervals = scale.intervals;
    cfg.interval = scale.interval;
    cfg.retry = RetryPolicy::default();
    cfg.obs = crate::figures::obs_from_env();
    cfg.batch = batch;
    cfg
}

/// The measured summary of one arm.
#[derive(Debug, Clone)]
pub struct ArmSummary {
    /// Arm label (`closed_loop`, `batch_partial`, `batch_full_restart`).
    pub label: &'static str,
    /// Mean committed transactions per second over the whole run.
    pub commits_per_sec: f64,
    /// p99 end-to-end commit latency, milliseconds.
    pub p99_ms: f64,
    /// Where the p99 came from: the span critical path when tracing was
    /// on, the commit-latency histogram otherwise.
    pub p99_source: &'static str,
    /// Total commits.
    pub commits: u64,
    /// Abort mix: `(kind label, count)` for every executor kind that
    /// fired, from attribution when observability was on, from the
    /// interval counters otherwise.
    pub aborts: Vec<(&'static str, u64)>,
    /// Wave-scheduling aggregates (batch arms only).
    pub waves: Option<acn_core::WaveStats>,
}

/// Condense one scenario result into the exported arm summary.
pub fn summarize(label: &'static str, r: &ScenarioResult) -> ArmSummary {
    let secs = r.interval.as_secs_f64() * r.intervals.len() as f64;
    // A degenerate run (zero intervals, zero-length windows) must export
    // 0.0, never NaN/inf — `{:.1}` would render those as invalid JSON.
    let commits_per_sec = if secs > 0.0 {
        r.total_commits() as f64 / secs
    } else {
        0.0
    };
    let (p99_ms, p99_source) = match r.obs.as_ref().filter(|o| !o.critpath.is_empty()) {
        Some(obs) => {
            let mut e2e: Vec<u64> = obs.critpath.iter().map(|c| c.end_to_end_ns).collect();
            e2e.sort_unstable();
            // The filter above guarantees `e2e` is non-empty, but keep the
            // guard explicit: `clamp(1, 0)` would panic, not truncate.
            if e2e.is_empty() {
                (0.0, "critpath")
            } else {
                let idx = ((e2e.len() as f64 * 0.99).ceil() as usize).clamp(1, e2e.len()) - 1;
                (e2e[idx] as f64 / 1e6, "critpath")
            }
        }
        None => (
            r.latency
                .percentile(0.99)
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(0.0),
            "histogram",
        ),
    };
    let aborts = match &r.obs {
        Some(obs) => AbortKind::EXECUTOR_KINDS
            .iter()
            .map(|k| (k.label(), obs.aborts.total_of(std::slice::from_ref(k))))
            .filter(|(_, n)| *n > 0)
            .collect(),
        None => [
            ("full", r.total_full_aborts()),
            ("partial", r.total_partial_aborts()),
            ("locked", r.total_locked_aborts()),
        ]
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .collect(),
    };
    ArmSummary {
        label,
        commits_per_sec,
        p99_ms,
        p99_source,
        commits: r.total_commits(),
        aborts,
        waves: r.batch,
    }
}

/// All three arms of one workload.
#[derive(Debug, Clone)]
pub struct WorkloadBench {
    /// Short workload key used in the JSON (`bank`, `tpcc_neworder`).
    pub key: &'static str,
    /// Whether the batch arms speculated through inexact access sets
    /// instead of taking the class-level pessimistic fallback.
    pub speculate_inexact: bool,
    /// Closed-loop seed arm.
    pub seed: ArmSummary,
    /// Batch arm with partial-rollback repair.
    pub partial: ArmSummary,
    /// Batch arm with Block-STM-style full re-execution.
    pub full_restart: ArmSummary,
}

impl WorkloadBench {
    /// Batch (partial) throughput over the closed-loop seed.
    pub fn speedup_vs_seed(&self) -> f64 {
        self.partial.commits_per_sec / self.seed.commits_per_sec.max(1e-9)
    }

    /// Partial-rollback batch throughput over the full-restart ablation.
    pub fn partial_over_full(&self) -> f64 {
        self.partial.commits_per_sec / self.full_restart.commits_per_sec.max(1e-9)
    }
}

/// Run the three arms for one workload. `speculate_inexact` picks the
/// scheduler's policy for access sets the static analysis could not
/// resolve: `false` keeps the pessimistic class-level fallback, `true`
/// drops those edges and lets dynamic validation + rollback repair the
/// collisions.
pub fn bench_workload(
    key: &'static str,
    workload: &dyn Workload,
    scale: &BenchScale,
    speculate_inexact: bool,
) -> WorkloadBench {
    let arm = |label, batch: Option<BatchConfig>| {
        eprintln!("  {key}: {label} …");
        summarize(
            label,
            &run_scenario(workload, &bench_scenario(scale, batch)),
        )
    };
    let seed = arm("closed_loop", None);
    let partial = arm(
        "batch_partial",
        Some(BatchConfig {
            wave: scale.wave,
            spec: SpecMode::Partial,
            overlap: true,
            speculate_inexact,
        }),
    );
    let full_restart = arm(
        "batch_full_restart",
        Some(BatchConfig {
            wave: scale.wave,
            spec: SpecMode::FullRestart,
            overlap: true,
            speculate_inexact,
        }),
    );
    WorkloadBench {
        key,
        speculate_inexact,
        seed,
        partial,
        full_restart,
    }
}

fn json_arm(a: &ArmSummary, indent: &str) -> String {
    let aborts: Vec<String> = a
        .aborts
        .iter()
        .map(|(k, n)| format!("\"{k}\": {n}"))
        .collect();
    let mut s = format!(
        "{indent}\"commits_per_sec\": {:.1},\n\
         {indent}\"p99_ms\": {:.3},\n\
         {indent}\"p99_source\": \"{}\",\n\
         {indent}\"commits\": {},\n\
         {indent}\"aborts\": {{{}}}",
        a.commits_per_sec,
        a.p99_ms,
        a.p99_source,
        a.commits,
        aborts.join(", ")
    );
    if let Some(w) = &a.waves {
        s.push_str(&format!(
            ",\n{indent}\"waves\": {},\n\
             {indent}\"wave_txns\": {},\n\
             {indent}\"wave_edges\": {},\n\
             {indent}\"pessimistic_edges\": {},\n\
             {indent}\"inexact_txns\": {},\n\
             {indent}\"predicted_txns\": {},\n\
             {indent}\"mispredicts\": {},\n\
             {indent}\"cross_edges\": {},\n\
             {indent}\"mean_layers\": {:.2},\n\
             {indent}\"max_width\": {}",
            w.waves,
            w.txns,
            w.edges,
            w.pessimistic_edges,
            w.inexact_txns,
            w.predicted_txns,
            w.mispredicts,
            w.cross_edges,
            w.layers as f64 / (w.waves.max(1)) as f64,
            w.max_width
        ));
    }
    s
}

/// Render `BENCH_seed.json`: the closed-loop baseline per workload.
pub fn render_seed_json(benches: &[WorkloadBench], scale: &BenchScale) -> String {
    let mut out = String::from("{\n  \"bench\": \"batch_seed\",\n  \"mode\": \"closed_loop\",\n");
    out.push_str(&format!(
        "  \"threads\": {},\n  \"intervals\": {},\n  \"interval_ms\": {},\n",
        scale.threads,
        scale.intervals,
        scale.interval.as_millis()
    ));
    out.push_str("  \"workloads\": {\n");
    let entries: Vec<String> = benches
        .iter()
        .map(|b| {
            format!(
                "    \"{}\": {{\n{}\n    }}",
                b.key,
                json_arm(&b.seed, "      ")
            )
        })
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

/// Render `BENCH_batch.json`: the batch arms, the speedup over the seed,
/// and the partial-vs-full-restart ablation.
pub fn render_batch_json(benches: &[WorkloadBench], scale: &BenchScale) -> String {
    let mut out = String::from("{\n  \"bench\": \"batch\",\n  \"mode\": \"batch_partial\",\n");
    out.push_str(&format!(
        "  \"threads\": {},\n  \"intervals\": {},\n  \"interval_ms\": {},\n  \"wave\": {},\n",
        scale.threads,
        scale.intervals,
        scale.interval.as_millis(),
        scale.wave
    ));
    out.push_str("  \"workloads\": {\n");
    let entries: Vec<String> = benches
        .iter()
        .map(|b| {
            format!(
                "    \"{}\": {{\n      \"speculate_inexact\": {},\n{},\n      \
                 \"speedup_vs_seed\": {:.2},\n      \"ablation\": {{\n\
                         \"full_restart\": {{\n{}\n        }}\n      }},\n      \
                 \"partial_over_full_restart\": {:.2}\n    }}",
                b.key,
                b.speculate_inexact,
                json_arm(&b.partial, "      "),
                b.speedup_vs_seed(),
                json_arm(&b.full_restart, "          "),
                b.partial_over_full()
            )
        })
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

/// Run the whole before/after benchmark and write `BENCH_seed.json` and
/// `BENCH_batch.json` into `dir`. Returns the per-workload summaries.
pub fn run_batch_bench(
    scale: &BenchScale,
    dir: &std::path::Path,
) -> std::io::Result<Vec<WorkloadBench>> {
    std::fs::create_dir_all(dir)?;
    let bank = saturated_bank();
    let tpcc = tpcc_new_order();
    let benches = vec![
        bench_workload("bank", &bank, scale, false),
        bench_workload("tpcc_neworder", &tpcc, scale, true),
    ];
    std::fs::write(
        dir.join("BENCH_seed.json"),
        render_seed_json(&benches, scale),
    )?;
    std::fs::write(
        dir.join("BENCH_batch.json"),
        render_batch_json(&benches, scale),
    )?;
    for b in &benches {
        println!(
            "{:>14}: closed loop {:>7.1}/s | batch {:>7.1}/s ({:.2}x) | full-restart {:>7.1}/s \
             (partial/full {:.2}x) | p99 {:.1}ms -> {:.1}ms [{}]",
            b.key,
            b.seed.commits_per_sec,
            b.partial.commits_per_sec,
            b.speedup_vs_seed(),
            b.full_restart.commits_per_sec,
            b.partial_over_full(),
            b.seed.p99_ms,
            b.partial.p99_ms,
            b.partial.p99_source,
        );
        if let Some(w) = &b.partial.waves {
            println!(
                "{:>14}  waves={} txns={} edges={} (pessimistic {}, cross {}) inexact={} \
                 predicted={} mispredicts={} mean_layers={:.1} max_width={} \
                 speculate_inexact={}",
                "",
                w.waves,
                w.txns,
                w.edges,
                w.pessimistic_edges,
                w.cross_edges,
                w.inexact_txns,
                w.predicted_txns,
                w.mispredicts,
                w.layers as f64 / w.waves.max(1) as f64,
                w.max_width,
                b.speculate_inexact,
            );
        }
    }
    Ok(benches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_well_formed() {
        let arm = |label, cps| ArmSummary {
            label,
            commits_per_sec: cps,
            p99_ms: 4.2,
            p99_source: "histogram",
            commits: 100,
            aborts: vec![("spec_full", 3), ("locked_out", 1)],
            waves: Some(acn_core::WaveStats {
                waves: 5,
                txns: 160,
                edges: 40,
                pessimistic_edges: 8,
                inexact_txns: 12,
                layers: 15,
                max_width: 9,
                cross_edges: 7,
                predicted_txns: 96,
                mispredicts: 3,
            }),
        };
        let b = WorkloadBench {
            key: "bank",
            speculate_inexact: false,
            seed: ArmSummary {
                waves: None,
                ..arm("closed_loop", 100.0)
            },
            partial: arm("batch_partial", 150.0),
            full_restart: arm("batch_full_restart", 120.0),
        };
        assert!((b.speedup_vs_seed() - 1.5).abs() < 1e-9);
        assert!((b.partial_over_full() - 1.25).abs() < 1e-9);
        let scale = BenchScale::smoke();
        let seed = render_seed_json(std::slice::from_ref(&b), &scale);
        let batch = render_batch_json(std::slice::from_ref(&b), &scale);
        for text in [&seed, &batch] {
            assert_eq!(
                text.matches('{').count(),
                text.matches('}').count(),
                "balanced braces in:\n{text}"
            );
        }
        assert!(seed.contains("\"closed_loop\"") || seed.contains("batch_seed"));
        assert!(batch.contains("\"speedup_vs_seed\": 1.50"));
        assert!(batch.contains("\"full_restart\""));
        assert!(batch.contains("\"pessimistic_edges\": 8"));
        assert!(batch.contains("\"cross_edges\": 7"));
        assert!(batch.contains("\"predicted_txns\": 96"));
        assert!(batch.contains("\"mispredicts\": 3"));
        assert!(batch.contains("\"speculate_inexact\": false"));
    }
}
