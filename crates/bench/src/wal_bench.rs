//! The WAL durability ablation: `BENCH_wal.json` — EveryRecord vs
//! GroupCommit vs Buffered on the saturated Bank, with real file-backed
//! logs so every sync pays an actual `fsync`.
//!
//! The three arms span the honesty spectrum. `EveryRecord` syncs before
//! every 2PC ack — the fully honest baseline, one fsync per record.
//! `Buffered` acks immediately and syncs only at shutdown — the fastest
//! and the least honest: a crash loses every ack since the last sync.
//! `GroupCommit` is the claim under test: acks still wait for the fsync
//! that covers them (EveryRecord-level durability for everything the
//! client was told committed), but one fsync amortizes over every record
//! that accumulated while the previous one ran. The recorded headline is
//! the `group_commit_over_buffered` ratio — how much of Buffered's
//! throughput group commit retains while giving up none of its honesty.
//!
//! What that ratio comes out to is a property of the deployment point,
//! not of the code alone: honesty costs roughly one fsync per 2PC round
//! on the critical path, so the visible overhead is the fsync:RTT ratio.
//! The bench pins a representative point — four servers per host disk
//! and a same-region cross-AZ network (0.4–1.2 ms RTT) — and records it
//! in the JSON. On an intra-rack 100 µs fabric with ten logs sharing one
//! spindle the same code measures mostly the host's flush queue; that
//! configuration is a storage-bound stress test, not this ablation.

use crate::batch_bench::{saturated_bank, summarize, ArmSummary, BenchScale};
use acn_core::RetryPolicy;
use acn_dtm::{ClusterConfig, DurabilityMode, PersistenceMode};
use acn_simnet::LatencyModel;
use acn_workloads::{run_scenario, ScenarioConfig, SystemKind};
use std::path::Path;
use std::time::Duration;

/// One durability arm: the scenario summary plus the WAL sync counters
/// that show *why* the throughput moved.
#[derive(Debug, Clone)]
pub struct WalArm {
    /// Arm key in the JSON (`every_record`, `group_commit`, `buffered`).
    pub key: &'static str,
    /// Throughput / latency / abort summary of the run.
    pub summary: ArmSummary,
    /// Syncs that flushed at least one record, summed over all servers.
    pub wal_sync_batches: u64,
    /// Records those syncs covered.
    pub wal_records_synced: u64,
}

impl WalArm {
    /// Mean records amortized per fsync (1.0 for EveryRecord by
    /// construction; the batching win group commit is named after).
    pub fn records_per_sync(&self) -> f64 {
        self.wal_records_synced as f64 / self.wal_sync_batches.max(1) as f64
    }
}

/// All three arms of the ablation.
#[derive(Debug, Clone)]
pub struct WalBench {
    /// Sync before every ack.
    pub every_record: WalArm,
    /// Batched syncs, acks still deferred until covered.
    pub group_commit: WalArm,
    /// Immediate acks, sync at shutdown only.
    pub buffered: WalArm,
}

impl WalBench {
    /// Group-commit throughput as a fraction of Buffered's — the share of
    /// the dishonest arm's speed retained at full ack honesty.
    pub fn group_commit_over_buffered(&self) -> f64 {
        self.group_commit.summary.commits_per_sec / self.buffered.summary.commits_per_sec.max(1e-9)
    }

    /// Group-commit throughput over the per-record-fsync baseline.
    pub fn group_commit_over_every_record(&self) -> f64 {
        self.group_commit.summary.commits_per_sec
            / self.every_record.summary.commits_per_sec.max(1e-9)
    }
}

/// The recorded group-commit shape: a batch closes at 32 records or 1 ms,
/// whichever lands first — small enough that ack latency stays bounded by
/// the RPC timeout, large enough to amortize under saturation.
pub fn group_commit_mode() -> DurabilityMode {
    DurabilityMode::GroupCommit {
        max_records: 32,
        max_delay: Duration::from_millis(1),
    }
}

fn wal_scenario(scale: &BenchScale, mode: DurabilityMode, wal_dir: &Path) -> ScenarioConfig {
    let mut cluster = ClusterConfig::paper(scale.threads);
    // Four servers, not the ten-node paper shape: every server's WAL
    // lands on this host's single disk, and ten colocated logs saturate
    // the device's flush queue — the bench would measure the host's
    // fsync capacity, not the durability discipline. A real deployment
    // gives each server its own device; four logs per disk keeps the
    // per-sync cost representative. The shape is identical across all
    // three arms, so the ablation stays a fair comparison.
    cluster.servers = 4;
    // Same-region cross-AZ RTT (0.4–1.2 ms), the deployment the paper's
    // durability story targets. The fsyncs this bench pays are real, so
    // the network model has to be the matching half of the deployment
    // point: against an intra-rack 100 µs fabric the ablation would
    // measure this host's flush latency and nothing else.
    cluster.latency = LatencyModel::Uniform {
        min: Duration::from_micros(400),
        max: Duration::from_micros(1200),
    };
    cluster.window.window = Duration::from_millis(150);
    cluster.persistence = PersistenceMode::File(wal_dir.to_path_buf());
    cluster.durability = mode;
    let mut cfg = ScenarioConfig::scaled(SystemKind::QrCn, scale.threads);
    cfg.cluster = cluster;
    cfg.intervals = scale.intervals;
    cfg.interval = scale.interval;
    cfg.retry = RetryPolicy::default();
    cfg.obs = crate::figures::obs_from_env();
    cfg
}

fn run_arm(key: &'static str, scale: &BenchScale, mode: DurabilityMode) -> WalArm {
    eprintln!("  wal: {key} …");
    // Fresh per-arm log directory: a stale log from a previous run would
    // replay into the new cluster and skew the seeded state.
    let wal_dir = std::env::temp_dir().join(format!("acn-wal-bench-{key}"));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let result = run_scenario(&saturated_bank(), &wal_scenario(scale, mode, &wal_dir));
    let arm = WalArm {
        key,
        summary: summarize(key, &result),
        wal_sync_batches: result.recovery.wal_sync_batches,
        wal_records_synced: result.recovery.wal_records_synced,
    };
    let _ = std::fs::remove_dir_all(&wal_dir);
    arm
}

fn json_arm(a: &WalArm, indent: &str) -> String {
    let aborts: Vec<String> = a
        .summary
        .aborts
        .iter()
        .map(|(k, n)| format!("\"{k}\": {n}"))
        .collect();
    format!(
        "{indent}\"commits_per_sec\": {:.1},\n\
         {indent}\"p99_ms\": {:.3},\n\
         {indent}\"p99_source\": \"{}\",\n\
         {indent}\"commits\": {},\n\
         {indent}\"wal_sync_batches\": {},\n\
         {indent}\"wal_records_synced\": {},\n\
         {indent}\"records_per_sync\": {:.2},\n\
         {indent}\"aborts\": {{{}}}",
        a.summary.commits_per_sec,
        a.summary.p99_ms,
        a.summary.p99_source,
        a.summary.commits,
        a.wal_sync_batches,
        a.wal_records_synced,
        a.records_per_sync(),
        aborts.join(", ")
    )
}

/// Render `BENCH_wal.json`.
pub fn render_wal_json(b: &WalBench, scale: &BenchScale) -> String {
    let mut out = String::from("{\n  \"bench\": \"wal\",\n  \"workload\": \"bank_saturated\",\n");
    out.push_str(&format!(
        "  \"threads\": {},\n  \"intervals\": {},\n  \"interval_ms\": {},\n",
        scale.threads,
        scale.intervals,
        scale.interval.as_millis()
    ));
    out.push_str("  \"servers\": 4,\n  \"rtt_us\": { \"min\": 400, \"max\": 1200 },\n");
    out.push_str("  \"group_commit_shape\": { \"max_records\": 32, \"max_delay_ms\": 1 },\n");
    out.push_str("  \"arms\": {\n");
    let entries: Vec<String> = [&b.every_record, &b.group_commit, &b.buffered]
        .iter()
        .map(|a| format!("    \"{}\": {{\n{}\n    }}", a.key, json_arm(a, "      ")))
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str(&format!(
        "\n  }},\n  \"group_commit_over_buffered\": {:.3},\n  \
         \"group_commit_over_every_record\": {:.3}\n}}\n",
        b.group_commit_over_buffered(),
        b.group_commit_over_every_record()
    ));
    out
}

/// Run all three arms and write `BENCH_wal.json` into `dir`.
pub fn run_wal_bench(scale: &BenchScale, dir: &Path) -> std::io::Result<WalBench> {
    std::fs::create_dir_all(dir)?;
    let bench = WalBench {
        every_record: run_arm("every_record", scale, DurabilityMode::EveryRecord),
        group_commit: run_arm("group_commit", scale, group_commit_mode()),
        buffered: run_arm("buffered", scale, DurabilityMode::Buffered),
    };
    std::fs::write(dir.join("BENCH_wal.json"), render_wal_json(&bench, scale))?;
    for a in [&bench.every_record, &bench.group_commit, &bench.buffered] {
        println!(
            "{:>13}: {:>7.1}/s | p99 {:>6.1}ms [{}] | {:>6} syncs over {:>7} records \
             ({:.2} records/sync)",
            a.key,
            a.summary.commits_per_sec,
            a.summary.p99_ms,
            a.summary.p99_source,
            a.wal_sync_batches,
            a.wal_records_synced,
            a.records_per_sync(),
        );
    }
    println!(
        "group commit retains {:.0}% of Buffered throughput ({:.2}x over EveryRecord)",
        bench.group_commit_over_buffered() * 100.0,
        bench.group_commit_over_every_record()
    );
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_json_rendering_is_well_formed() {
        let arm = |key, cps, batches, records| WalArm {
            key,
            summary: ArmSummary {
                label: key,
                commits_per_sec: cps,
                p99_ms: 3.1,
                p99_source: "histogram",
                commits: 500,
                aborts: vec![("full", 7)],
                waves: None,
            },
            wal_sync_batches: batches,
            wal_records_synced: records,
        };
        let b = WalBench {
            every_record: arm("every_record", 800.0, 4000, 4000),
            group_commit: arm("group_commit", 1900.0, 900, 4100),
            buffered: arm("buffered", 2000.0, 10, 4200),
        };
        assert!((b.group_commit_over_buffered() - 0.95).abs() < 1e-9);
        assert!((b.every_record.records_per_sync() - 1.0).abs() < 1e-9);
        let text = render_wal_json(&b, &BenchScale::smoke());
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "balanced braces in:\n{text}"
        );
        for needle in [
            "\"bench\": \"wal\"",
            "\"rtt_us\": { \"min\": 400, \"max\": 1200 }",
            "\"every_record\"",
            "\"group_commit\"",
            "\"buffered\"",
            "\"group_commit_over_buffered\": 0.950",
            "\"records_per_sync\": 4.56",
            "\"wal_sync_batches\": 900",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
