//! End-to-end transaction latency on a zero-latency cluster: what closed
//! nesting costs (child context + merge per Block) relative to flat
//! execution, with the network out of the picture.

use acn_core::{BlockSeq, ExecStats, ExecutorConfig, ExecutorEngine, RetryPolicy};
use acn_dtm::{Cluster, ClusterConfig};
use acn_txir::{DependencyModel, FieldId, ObjClass, ProgramBuilder, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const BRANCH: ObjClass = ObjClass::new(0, "Branch");
const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
const BAL: FieldId = FieldId(0);

fn transfer_dm() -> DependencyModel {
    let mut b = ProgramBuilder::new("bench/transfer", 5);
    let amt = b.param(4);
    let br1 = b.open_update(BRANCH, b.param(0));
    let br2 = b.open_update(BRANCH, b.param(1));
    let v1 = b.get(br1, BAL);
    let n1 = b.sub(v1, amt);
    b.set(br1, BAL, n1);
    let v2 = b.get(br2, BAL);
    let n2 = b.add(v2, amt);
    b.set(br2, BAL, n2);
    let a1 = b.open_update(ACCOUNT, b.param(2));
    let a2 = b.open_update(ACCOUNT, b.param(3));
    let w1 = b.get(a1, BAL);
    let m1 = b.sub(w1, amt);
    b.set(a1, BAL, m1);
    let w2 = b.get(a2, BAL);
    let m2 = b.add(w2, amt);
    b.set(a2, BAL, m2);
    DependencyModel::analyze(b.finish()).unwrap()
}

fn bench_commit_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit_path");
    g.sample_size(40);
    let dm = transfer_dm();
    let cases = [
        ("flat", BlockSeq::flat(&dm)),
        ("nested_per_unit", BlockSeq::from_units(&dm)),
        (
            "nested_two_blocks",
            BlockSeq::group_units(&dm, &[vec![0, 1], vec![2, 3]]),
        ),
    ];
    for (label, seq) in cases {
        let cluster = Cluster::start(ClusterConfig::test(10, 1));
        let mut client = cluster.client(0);
        let engine = ExecutorEngine::default();
        let mut stats = ExecStats::default();
        let mut k = 0i64;
        g.bench_function(label, |b| {
            b.iter(|| {
                k += 1;
                engine
                    .run(
                        &mut client,
                        &dm.program,
                        &[
                            Value::Int(k % 8),
                            Value::Int((k + 1) % 8),
                            Value::Int(100 + k % 64),
                            Value::Int(200 + k % 64),
                            Value::Int(1),
                        ],
                        &seq,
                        &mut stats,
                    )
                    .unwrap();
                black_box(stats.commits)
            })
        });
        cluster.shutdown();
    }
    g.finish();
}

/// Wide audit: open `n` accounts, sum balances, credit the first — a
/// read-dominated shape where the batched quorum read pays off.
fn audit_dm(n: u16) -> DependencyModel {
    let mut b = ProgramBuilder::new("bench/audit", n);
    let first = b.open_update(ACCOUNT, b.param(0));
    let mut sum = b.get(first, BAL);
    for i in 1..n {
        let acc = b.open_read(ACCOUNT, b.param(i));
        let v = b.get(acc, BAL);
        sum = b.add(sum, v);
    }
    let credited = b.add(sum, 1i64);
    b.set(first, BAL, credited);
    DependencyModel::analyze(b.finish()).unwrap()
}

/// Batched vs unbatched read path on an 8-object flat transaction: the
/// batched engine fetches all statically known opens in one quorum round.
fn bench_read_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_path");
    g.sample_size(40);
    let dm = audit_dm(8);
    let seq = BlockSeq::flat(&dm);
    let params: Vec<Value> = (0..8i64).map(Value::Int).collect();
    let cases = [
        (
            "unbatched",
            ExecutorConfig {
                batched_reads: false,
                ..ExecutorConfig::default()
            },
        ),
        (
            "batched",
            ExecutorConfig {
                batched_reads: true,
                ..ExecutorConfig::default()
            },
        ),
    ];
    for (label, exec) in cases {
        let cluster = Cluster::start(ClusterConfig::test(10, 1));
        let mut client = cluster.client(0);
        let engine = ExecutorEngine::with_config(RetryPolicy::default(), exec);
        let mut stats = ExecStats::default();
        g.bench_function(label, |b| {
            b.iter(|| {
                engine
                    .run(&mut client, &dm.program, &params, &seq, &mut stats)
                    .unwrap();
                black_box(stats.commits)
            })
        });
        cluster.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_commit_path, bench_read_path);
criterion_main!(benches);
