//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **merge threshold** — Step 2's similarity band changes how many
//!   Blocks survive; this measures recompute cost and records the
//!   resulting block counts across thresholds;
//! * **contention model** — the default write-count/Sum model vs the
//!   di-Sanzo-style analytic abort-probability model;
//! * **checkpointing vs closed nesting** — per-transaction latency of the
//!   checkpointing executor (state clone per UnitBlock) against the
//!   closed-nesting executor on an uncontended zero-latency cluster: the
//!   pure overhead comparison behind the paper's design choice.

use acn_core::{
    run_checkpointed, AbortProbabilityModel, AlgorithmModule, BlockSeq, CheckpointStats, ExecStats,
    ExecutorEngine, RetryPolicy, SumModel,
};
use acn_dtm::{Cluster, ClusterConfig};
use acn_txir::{DependencyModel, Value};
use acn_workloads::schema;
use acn_workloads::tpcc::{Tpcc, TpccConfig, TpccMix};
use acn_workloads::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

fn neworder_dm() -> DependencyModel {
    let tpcc = Tpcc::new(TpccConfig::default(), TpccMix::NEW_ORDER);
    DependencyModel::analyze(tpcc.templates()[2].clone()).unwrap()
}

fn tpcc_levels() -> HashMap<u16, f64> {
    [
        (schema::WAREHOUSE.id, 3.0),
        (schema::DISTRICT.id, 20.0),
        (schema::STOCK.id, 2.0),
        (schema::ITEM.id, 0.0),
        (schema::CUSTOMER.id, 0.1),
        (schema::ORDER.id, 0.5),
        (schema::NEW_ORDER.id, 0.5),
        (schema::ORDER_LINE.id, 0.5),
    ]
    .into()
}

fn bench_merge_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_merge_threshold");
    let dm = neworder_dm();
    let lv = tpcc_levels();
    for &(rel, abs) in &[(0.0, 0.0), (0.25, 0.5), (0.5, 1.0), (1.0, 4.0)] {
        let module = AlgorithmModule::new(
            acn_core::AlgorithmConfig {
                rel_threshold: rel,
                abs_threshold: abs,
            },
            Box::new(SumModel),
        );
        let blocks = module.recompute(&dm, &lv).len();
        g.bench_with_input(
            BenchmarkId::new(format!("rel{rel}_abs{abs}_blocks{blocks}"), blocks),
            &blocks,
            |b, _| b.iter(|| black_box(module.recompute(&dm, &lv))),
        );
    }
    g.finish();
}

fn bench_contention_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_contention_model");
    let dm = neworder_dm();
    let lv = tpcc_levels();
    let sum = AlgorithmModule::with_model(Box::new(SumModel));
    g.bench_function("write_count_sum", |b| {
        b.iter(|| black_box(sum.recompute(&dm, &lv)))
    });
    let analytic = AlgorithmModule::with_model(Box::new(AbortProbabilityModel { exposure: 0.1 }));
    g.bench_function("analytic_abort_probability", |b| {
        b.iter(|| black_box(analytic.recompute(&dm, &lv)))
    });
    g.finish();
}

fn bench_checkpoint_vs_nesting(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_checkpoint_vs_nesting");
    g.sample_size(30);
    let tpcc = Tpcc::new(TpccConfig::default(), TpccMix::NEW_ORDER);
    let dm = DependencyModel::analyze(tpcc.templates()[2].clone()).unwrap();
    let seq = BlockSeq::from_units(&dm);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);

    // Closed nesting (QR-CN style per-unit children).
    {
        let cluster = Cluster::start(ClusterConfig::test(10, 1));
        let mut client = cluster.client(0);
        tpcc.seed(&mut client);
        let engine = ExecutorEngine::default();
        let mut stats = ExecStats::default();
        g.bench_function("closed_nesting", |b| {
            b.iter(|| {
                // Pin the 5-line template so both executors run identical
                // instance shapes.
                let params: Vec<Value> =
                    acn_workloads::tpcc::neworder_params_for_bench(&tpcc, &mut rng);
                engine
                    .run(&mut client, &dm.program, &params, &seq, &mut stats)
                    .unwrap();
                black_box(stats.commits)
            })
        });
        cluster.shutdown();
    }

    // Checkpointing: identical schedule, state snapshot per block.
    {
        let cluster = Cluster::start(ClusterConfig::test(10, 1));
        let mut client = cluster.client(0);
        tpcc.seed(&mut client);
        let mut stats = CheckpointStats::default();
        let policy = RetryPolicy::default();
        g.bench_function("checkpointing", |b| {
            b.iter(|| {
                let params: Vec<Value> =
                    acn_workloads::tpcc::neworder_params_for_bench(&tpcc, &mut rng);
                run_checkpointed(&mut client, &dm.program, &params, &seq, &policy, &mut stats)
                    .unwrap();
                black_box(stats.commits)
            })
        });
        cluster.shutdown();
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_merge_threshold,
    bench_contention_model,
    bench_checkpoint_vs_nesting
);
criterion_main!(benches);
