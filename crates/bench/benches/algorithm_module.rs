//! Algorithm Module cost (Steps 1–3) per invocation.
//!
//! The paper's Fig 4(d) argument rests on this being cheap: "the overhead
//! of this algorithm is limited because, usually, transactions' sizes are
//! not as big to make its computation unfeasible". This bench measures a
//! full recompute — re-attachment with cycle checks, merge, sort — on the
//! real benchmark templates.

use acn_core::{AlgorithmModule, SumModel};
use acn_txir::DependencyModel;
use acn_workloads::bank::Bank;
use acn_workloads::schema;
use acn_workloads::tpcc::{Tpcc, TpccConfig, TpccMix};
use acn_workloads::vacation::Vacation;
use acn_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

fn levels() -> HashMap<u16, f64> {
    [
        (schema::BRANCH.id, 8.0),
        (schema::ACCOUNT.id, 1.0),
        (schema::CAR.id, 9.0),
        (schema::FLIGHT.id, 0.5),
        (schema::ROOM.id, 0.5),
        (schema::CUSTOMER_V.id, 0.2),
        (schema::WAREHOUSE.id, 3.0),
        (schema::DISTRICT.id, 20.0),
        (schema::STOCK.id, 2.0),
    ]
    .into()
}

fn bench_recompute(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm_module");
    let module = AlgorithmModule::with_model(Box::new(SumModel));
    let lv = levels();

    let bank = Bank::default();
    let bank_dm = DependencyModel::analyze(bank.templates()[0].clone()).unwrap();
    g.bench_function("bank_transfer_4units", |b| {
        b.iter(|| black_box(module.recompute(&bank_dm, &lv)))
    });

    let vacation = Vacation::default();
    let vac_dm = DependencyModel::analyze(vacation.templates()[0].clone()).unwrap();
    g.bench_function("vacation_reserve_4units", |b| {
        b.iter(|| black_box(module.recompute(&vac_dm, &lv)))
    });

    let tpcc = Tpcc::new(
        TpccConfig {
            ol_min: 5,
            ol_max: 15,
            ..TpccConfig::default()
        },
        TpccMix::NEW_ORDER,
    );
    for (label, idx) in [
        ("tpcc_neworder_5_20units", 2usize),
        ("tpcc_neworder_10_35units", 7),
        ("tpcc_neworder_15_50units", 12),
    ] {
        let dm = DependencyModel::analyze(tpcc.templates()[idx].clone()).unwrap();
        g.bench_function(label, |b| b.iter(|| black_box(module.recompute(&dm, &lv))));
    }
    g.finish();
}

criterion_group!(benches, bench_recompute);
criterion_main!(benches);
