//! Quorum construction micro-benchmarks: read/write quorums on healthy
//! and degraded trees, level-majority vs the classic recursive protocol.

use acn_quorum::{classic, DaryTree, LevelQuorums};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_level_quorums(c: &mut Criterion) {
    let mut g = c.benchmark_group("level_quorums");
    for &n in &[10usize, 40, 121] {
        let q = LevelQuorums::new(DaryTree::ternary(n));
        g.bench_with_input(BenchmarkId::new("read_healthy", n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(q.read_quorum(seed, &|_| true))
            })
        });
        g.bench_with_input(BenchmarkId::new("write_healthy", n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(q.write_quorum(seed, &|_| true))
            })
        });
        // Two leaves down: the fault-tolerant path.
        let dead = [n - 1, n - 2];
        g.bench_with_input(BenchmarkId::new("read_degraded", n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(q.read_quorum(seed, &|r| !dead.contains(&r)))
            })
        });
    }
    g.finish();
}

fn bench_classic_quorums(c: &mut Criterion) {
    let mut g = c.benchmark_group("classic_quorums");
    for &n in &[10usize, 40, 121] {
        let t = DaryTree::ternary(n);
        g.bench_with_input(BenchmarkId::new("read_healthy", n), &n, |b, _| {
            b.iter(|| black_box(classic::read_quorum(&t, &|_| true)))
        });
        g.bench_with_input(BenchmarkId::new("write_healthy", n), &n, |b, _| {
            b.iter(|| black_box(classic::write_quorum(&t, &|_| true)))
        });
        g.bench_with_input(BenchmarkId::new("read_root_dead", n), &n, |b, _| {
            b.iter(|| black_box(classic::read_quorum(&t, &|r| r != 0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_level_quorums, bench_classic_quorums);
criterion_main!(benches);
