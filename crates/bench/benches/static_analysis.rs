//! Static Module cost: full analysis (validation, UnitGraph, data-flow,
//! UnitBlock extraction, eligibility) per transaction template. This runs
//! once per template at application start, but its cost bounds how large a
//! transaction the approach can digest.

use acn_txir::DependencyModel;
use acn_workloads::bank::Bank;
use acn_workloads::tpcc::{Tpcc, TpccConfig, TpccMix};
use acn_workloads::vacation::Vacation;
use acn_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("static_analysis");
    let bank = Bank::default();
    g.bench_function("bank_transfer", |b| {
        let p = &bank.templates()[0];
        b.iter(|| black_box(DependencyModel::analyze(p.clone()).unwrap()))
    });
    let vacation = Vacation::default();
    g.bench_function("vacation_reserve", |b| {
        let p = &vacation.templates()[0];
        b.iter(|| black_box(DependencyModel::analyze(p.clone()).unwrap()))
    });
    let tpcc = Tpcc::new(
        TpccConfig {
            ol_min: 5,
            ol_max: 15,
            ..TpccConfig::default()
        },
        TpccMix::NEW_ORDER,
    );
    g.bench_function("tpcc_payment", |b| {
        let p = &tpcc.templates()[0];
        b.iter(|| black_box(DependencyModel::analyze(p.clone()).unwrap()))
    });
    for (label, idx) in [("tpcc_neworder_5", 2usize), ("tpcc_neworder_15", 12)] {
        g.bench_function(label, |b| {
            let p = &tpcc.templates()[idx];
            b.iter(|| black_box(DependencyModel::analyze(p.clone()).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
