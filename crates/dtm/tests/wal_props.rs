//! Property tests for the durable write-ahead log.
//!
//! Two families of invariants keep crash-restart recovery honest:
//!
//! * **Codec exactness** — `decode(encode(r)) == r` for every record, and
//!   a framed log decodes back to itself with nothing torn. Recovery
//!   correctness is meaningless if the bytes round-trip lossily.
//! * **Prefix validity** — a crash can cut the log after *any* record, so
//!   replaying any prefix must yield a valid state: the exact left-fold
//!   intermediate of the full replay (versions never ahead of the full
//!   log, replies a literal prefix), and replay must be idempotent per
//!   dedup key so a log that was partially re-shipped applies once.

use acn_dtm::{
    decode_stream, replay, FaultLog, FaultLogConfig, MemLog, Msg, Persistence, TxnId, WalRecord,
};
use acn_simnet::NodeId;
use acn_txir::{FieldId, ObjClass, ObjectId, ObjectVal, Value};
use proptest::prelude::*;
use std::collections::HashMap;

const CLASSES: [ObjClass; 3] = [
    ObjClass::new(0, "acct"),
    ObjClass::new(1, "order"),
    ObjClass::new(2, "item"),
];

/// Small object space (3 classes × 8 indices) so records collide on
/// objects and dedup keys actually repeat across a generated log.
fn obj(c: u8, i: u8) -> ObjectId {
    ObjectId::new(CLASSES[(c % 3) as usize], (i % 8) as u64)
}

fn txn(client: u8, seq: u8) -> TxnId {
    TxnId {
        client: NodeId((client % 4) as u32),
        seq: (seq % 16) as u64,
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        (0usize..4).prop_map(|i| Value::Str(["", "a", "wal", "torn tail"][i].into())),
    ]
}

fn objval_strategy() -> impl Strategy<Value = ObjectVal> {
    prop::collection::vec((0u16..4, value_strategy()), 0..3)
        .prop_map(|fields| ObjectVal::from_fields(fields.into_iter().map(|(f, v)| (FieldId(f), v))))
}

fn objs_strategy() -> impl Strategy<Value = Vec<ObjectId>> {
    prop::collection::vec((0u8..3, 0u8..8), 0..4).prop_map(|v| {
        let mut o: Vec<ObjectId> = v.iter().map(|&(c, i)| obj(c, i)).collect();
        o.sort_unstable();
        o.dedup();
        o
    })
}

fn writes_strategy() -> impl Strategy<Value = Vec<(ObjectId, u64, ObjectVal)>> {
    prop::collection::vec(((0u8..3, 0u8..8), 1u64..6, objval_strategy()), 0..4).prop_map(|v| {
        v.into_iter()
            .map(|((c, i), ver, val)| (obj(c, i), ver, val))
            .collect()
    })
}

fn record_strategy() -> BoxedStrategy<WalRecord> {
    let ids = || (0u8..4, 0u8..16, 0u64..32);
    prop_oneof![
        (ids(), objs_strategy()).prop_map(|((c, s, req), objs)| WalRecord::PrepareGrant {
            txn: txn(c, s),
            req,
            objs,
        }),
        (ids(), writes_strategy()).prop_map(|((c, s, req), writes)| WalRecord::CommitApply {
            txn: txn(c, s),
            req,
            writes,
        }),
        ids().prop_map(|(c, s, req)| WalRecord::Abort {
            txn: txn(c, s),
            req,
        }),
        (0u64..10).prop_map(|incarnation| WalRecord::IncarnationBump { incarnation }),
    ]
    .boxed()
}

fn log_strategy() -> impl Strategy<Value = Vec<WalRecord>> {
    prop::collection::vec(record_strategy(), 0..24)
}

fn frame_all(log: &[WalRecord]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for rec in log {
        rec.frame_into(&mut bytes);
    }
    bytes
}

/// The shape of a replies list without needing `Msg: PartialEq`: the
/// dedup key plus the wire kind of the cached reply.
fn reply_shape(replies: &[((TxnId, u64), Msg)]) -> Vec<((TxnId, u64), u8)> {
    replies.iter().map(|(k, m)| (*k, m.kind())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every record kind survives encode→decode exactly.
    #[test]
    fn codec_round_trips_exactly(rec in record_strategy()) {
        let payload = rec.encode();
        prop_assert_eq!(WalRecord::decode(&payload), Some(rec));
    }

    /// A whole framed log decodes back to itself: same records, every
    /// byte consumed, nothing reported torn.
    #[test]
    fn framed_log_decodes_whole_and_untorn(log in log_strategy()) {
        let bytes = frame_all(&log);
        let (records, good, torn) = decode_stream(&bytes);
        prop_assert_eq!(records, log);
        prop_assert_eq!(good, bytes.len());
        prop_assert!(!torn);
    }

    /// The in-memory ring is a faithful log: load returns exactly what
    /// was appended, in order, with no torn tail — and reset empties it.
    #[test]
    fn memlog_loads_exactly_what_was_appended(log in log_strategy()) {
        let mut wal = MemLog::new();
        for rec in &log {
            wal.append(rec).unwrap();
        }
        let loaded = wal.load();
        prop_assert_eq!(loaded.records, log);
        prop_assert_eq!(loaded.torn_tails_truncated, 0);
        wal.reset();
        prop_assert!(wal.load().records.is_empty());
    }

    /// Replaying any prefix of a valid log is a valid state: the exact
    /// left-fold intermediate of the full replay. Versions never run
    /// ahead of the full log, the replies list is a literal prefix, and
    /// no cut point panics.
    #[test]
    fn any_prefix_replays_to_a_valid_state(log in log_strategy(), cut in any::<u16>()) {
        let cut = cut as usize % (log.len() + 1);
        let pre = replay(log[..cut].to_vec());
        let full = replay(log.clone());
        prop_assert!(pre.records <= cut as u64);
        prop_assert!(pre.incarnation <= full.incarnation);
        let full_versions: HashMap<_, _> = full.store.known_versions().into_iter().collect();
        for (o, v) in pre.store.known_versions() {
            let fv = full_versions.get(&o).copied();
            prop_assert!(Some(v) <= fv, "prefix ahead of full log on {o:?}: {v} > {fv:?}");
        }
        let shape = reply_shape(&pre.replies);
        prop_assert_eq!(shape.as_slice(), &reply_shape(&full.replies)[..shape.len()]);
        // Everything still prepared after the prefix is either decided
        // later in the log or still prepared at its end.
        for t in pre.prepared.keys() {
            let decided_later = log[cut..].iter().any(|r| matches!(
                r,
                WalRecord::CommitApply { txn, .. } | WalRecord::Abort { txn, .. } if txn == t
            ));
            prop_assert!(decided_later || full.prepared.contains_key(t));
        }
    }

    /// Group-commit equivalence: a group-committed log crashed at *any*
    /// point recovers byte-identically to the same workload logged with
    /// `EveryRecord` and crashed at the last sync boundary — the unsynced
    /// suffix is the only thing group commit puts at risk.
    #[test]
    fn group_commit_crash_recovers_to_the_last_sync_boundary(
        log in log_strategy(),
        group in 1usize..6,
        cut in any::<u16>(),
    ) {
        let cut = cut as usize % (log.len() + 1);
        let lossy = || FaultLogConfig {
            lose_unsynced_on_restart: true,
            ..FaultLogConfig::default()
        };
        // Group-committed: sync every `group`-th append, crash after `cut`
        // appends, restart drops whatever no sync covered.
        let mut gc = FaultLog::new(Box::new(MemLog::new()), lossy());
        for (i, rec) in log[..cut].iter().enumerate() {
            gc.append(rec).unwrap();
            if (i + 1) % group == 0 {
                gc.sync().unwrap();
            }
        }
        let survived = gc.load().records;
        // EveryRecord: every append synced, crashed at the boundary the
        // group-committed log's last sync covered.
        let boundary = (cut / group) * group;
        let mut er = FaultLog::new(Box::new(MemLog::new()), lossy());
        for rec in &log[..boundary] {
            er.append(rec).unwrap();
            er.sync().unwrap();
        }
        let reference = er.load().records;
        prop_assert_eq!(&survived, &reference);
        let a = replay(survived.clone());
        let b = replay(reference.clone());
        prop_assert_eq!(a.store.digest(), b.store.digest());
        let mut av = a.store.known_versions();
        let mut bv = b.store.known_versions();
        av.sort_unstable();
        bv.sort_unstable();
        prop_assert_eq!(av, bv);
        prop_assert_eq!(a.prepared, b.prepared);
        prop_assert_eq!(a.incarnation, b.incarnation);
        prop_assert_eq!(reply_shape(&a.replies), reply_shape(&b.replies));
    }

    /// Replay is idempotent per dedup key: a log that was re-shipped in
    /// full (`log + log`) produces the same store, prepared table and
    /// incarnation as one copy.
    #[test]
    fn replaying_a_log_twice_equals_once(log in log_strategy()) {
        let once = replay(log.clone());
        let mut twice_input = log.clone();
        twice_input.extend(log.clone());
        let twice = replay(twice_input);
        prop_assert_eq!(once.store.digest(), twice.store.digest());
        prop_assert_eq!(once.prepared, twice.prepared);
        prop_assert_eq!(once.incarnation, twice.incarnation);
        prop_assert_eq!(reply_shape(&once.replies), reply_shape(&twice.replies));
    }
}
