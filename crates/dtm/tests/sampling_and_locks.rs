//! Contention sampling transports and lock-out behaviour.

use acn_dtm::{ClientConfig, Cluster, ClusterConfig, DtmError, Msg, TxnCtx, TxnId};
use acn_simnet::NodeId;
use acn_txir::{FieldId, ObjClass, ObjectId, Value};
use std::time::Duration;

const BRANCH: ObjClass = ObjClass::new(0, "Branch");
const BAL: FieldId = FieldId(0);

fn seed(client: &mut acn_dtm::DtmClient, obj: ObjectId, value: i64) {
    let mut ctx = TxnCtx::begin(client);
    ctx.open(client, obj, true).unwrap();
    ctx.set_field(obj, BAL, Value::Int(value));
    ctx.commit(client).unwrap();
}

/// Piggybacked sampling rides on existing reads: after enabling it, the
/// client learns contention levels without any `ContentionReq` round,
/// i.e. with zero additional messages.
#[test]
fn piggyback_learns_levels_without_extra_messages() {
    let mut cfg = ClusterConfig::test(4, 1);
    cfg.window.window = Duration::from_millis(100);
    // Read repair may add a fire-and-forget message to a lagging replica
    // on whichever read happens to see the lag first; this test compares
    // raw message counts, so keep the repair path out of the measurement.
    cfg.client_cfg.read_repair_max = 0;
    let cluster = Cluster::start(cfg);
    let mut client = cluster.client(0);
    let hot = ObjectId::new(BRANCH, 1);
    for i in 0..8 {
        seed(&mut client, hot, i);
    }
    // One window later the write burst is the last complete window (past
    // 2·window it would — correctly — have faded to cold).
    std::thread::sleep(Duration::from_millis(130));

    client.set_piggyback_classes(vec![BRANCH.id]);
    assert!(
        client.piggybacked_levels().is_empty(),
        "nothing sampled yet"
    );

    let sent_before = cluster.net().stats().sent;
    // One ordinary read both does its job and carries the sample home.
    let mut ctx = TxnCtx::begin(&mut client);
    ctx.open(&mut client, hot, false).unwrap();
    ctx.commit(&mut client).unwrap();
    let sent_with_piggyback = cluster.net().stats().sent - sent_before;

    let levels = client.piggybacked_levels().clone();
    assert!(levels[&BRANCH.id] > 0.0, "sample should show branch writes");

    // An explicit query costs a full extra scatter-gather round.
    let sent_before = cluster.net().stats().sent;
    let explicit = client.query_contention(&[BRANCH.id]).unwrap();
    let sent_explicit = cluster.net().stats().sent - sent_before;
    assert!(explicit[&BRANCH.id] > 0.0);
    assert!(
        sent_explicit > 0,
        "explicit sampling costs messages ({sent_explicit})"
    );
    // The piggybacked read cost exactly what a plain read+commit costs —
    // re-measure a plain read to compare.
    client.set_piggyback_classes(vec![]);
    let sent_before = cluster.net().stats().sent;
    let mut ctx = TxnCtx::begin(&mut client);
    ctx.open(&mut client, hot, false).unwrap();
    ctx.commit(&mut client).unwrap();
    let sent_plain = cluster.net().stats().sent - sent_before;
    assert_eq!(
        sent_with_piggyback, sent_plain,
        "piggybacking must not add messages"
    );
    cluster.shutdown();
}

/// A reader that keeps hitting a `protected` object gives up with
/// `LockedOut` after the configured retries: simulate a stalled committer
/// by sending a bare `PrepareReq` to every server and never finishing the
/// 2PC.
#[test]
fn reads_lock_out_behind_a_stalled_commit() {
    let mut cfg = ClusterConfig::test(4, 2);
    cfg.client_cfg = ClientConfig {
        locked_retries: 3,
        locked_backoff: Duration::from_micros(50),
        ..ClientConfig::default()
    };
    let cluster = Cluster::start(cfg);
    let obj = ObjectId::new(BRANCH, 7);

    // A "zombie" coordinator: client slot 1's raw endpoint locks the
    // object on every replica and stalls before phase 2.
    let zombie = cluster.net().endpoint(NodeId(4 + 1));
    let ztxn = TxnId {
        client: NodeId(4 + 1),
        seq: 0,
    };
    for rank in 0..4u32 {
        zombie.send(
            NodeId(rank),
            Msg::PrepareReq {
                txn: ztxn,
                req: 1,
                validate: vec![],
                writes: vec![(obj, 0)],
            },
        );
    }
    // Drain the votes so they don't linger.
    for _ in 0..4 {
        let _ = zombie.recv_timeout(Duration::from_millis(200));
    }

    let mut reader = cluster.client(0);
    let mut ctx = TxnCtx::begin(&mut reader);
    match ctx.open(&mut reader, obj, false) {
        Err(DtmError::LockedOut { obj: o }) => assert_eq!(o, obj),
        other => panic!("expected LockedOut, got {other:?}"),
    }
    assert!(reader.stats().locked_read_retries >= 3);

    // The zombie aborts; reads flow again.
    for rank in 0..4u32 {
        zombie.send(NodeId(rank), Msg::AbortReq { txn: ztxn, req: 2 });
    }
    for _ in 0..4 {
        let _ = zombie.recv_timeout(Duration::from_millis(200));
    }
    let mut ctx = TxnCtx::begin(&mut reader);
    ctx.open(&mut reader, obj, false).unwrap();
    ctx.commit(&mut reader).unwrap();
    cluster.shutdown();
}

/// Contention windows rotate: a burst of writes shows up in the next
/// window's levels and fades once traffic stops.
#[test]
fn contention_levels_rise_and_fade() {
    let mut cfg = ClusterConfig::test(4, 1);
    cfg.window.window = Duration::from_millis(100);
    let cluster = Cluster::start(cfg);
    let mut client = cluster.client(0);
    let hot = ObjectId::new(BRANCH, 1);
    for i in 0..10 {
        seed(&mut client, hot, i);
    }
    std::thread::sleep(Duration::from_millis(130));
    let levels = client.query_contention(&[BRANCH.id]).unwrap();
    assert!(levels[&BRANCH.id] > 0.0, "burst must register");

    // Multi-window silence clears the published level at the next
    // rotation — no intermediate query needed to force it.
    std::thread::sleep(Duration::from_millis(250));
    let levels = client.query_contention(&[BRANCH.id]).unwrap();
    assert_eq!(levels[&BRANCH.id], 0.0, "idle class must fade");
    cluster.shutdown();
}
