//! Client recovery under faults: prepared-entry TTL sweeps, partition-aware
//! aborts, and request dedup under message-level chaos.

use acn_dtm::{msg_kind, ClientConfig, Cluster, ClusterConfig, DtmError, Msg, TxnCtx, TxnId};
use acn_simnet::{ChaosRule, FaultPlan, NodeId};
use acn_txir::{FieldId, ObjClass, ObjectId, Value};
use std::time::Duration;

const BRANCH: ObjClass = ObjClass::new(0, "Branch");
const BAL: FieldId = FieldId(0);

fn seed(client: &mut acn_dtm::DtmClient, obj: ObjectId, value: i64) {
    let mut ctx = TxnCtx::begin(client);
    ctx.open(client, obj, true).unwrap();
    ctx.set_field(obj, BAL, Value::Int(value));
    ctx.commit(client).unwrap();
}

/// A coordinator that dies between prepare and its decision must not strand
/// its write-set locks: the servers' TTL sweep releases them, after which
/// another client can commit the same objects.
#[test]
fn ttl_sweep_releases_a_dead_coordinators_locks() {
    let mut cfg = ClusterConfig::test(4, 2);
    cfg.prepared_ttl = Duration::from_millis(120);
    let cluster = Cluster::start(cfg);
    let obj = ObjectId::new(BRANCH, 3);
    let mut writer = cluster.client(0);
    seed(&mut writer, obj, 5);

    // "Kill a client between prepare and decision": a raw endpoint locks
    // the object on every replica and never sends phase 2.
    let zombie = cluster.net().endpoint(NodeId(4 + 1));
    let ztxn = TxnId {
        client: NodeId(4 + 1),
        seq: 0,
    };
    for rank in 0..4u32 {
        zombie.send(
            NodeId(rank),
            Msg::PrepareReq {
                txn: ztxn,
                req: 1,
                validate: vec![],
                writes: vec![(obj, 1)],
            },
        );
    }
    for _ in 0..4 {
        let _ = zombie.recv_timeout(Duration::from_millis(200));
    }

    // Immediately after, the object is protected on every replica.
    {
        let mut ctx = TxnCtx::begin(&mut writer);
        match ctx.open(&mut writer, obj, true) {
            Err(DtmError::LockedOut { obj: o }) => assert_eq!(o, obj),
            other => panic!("expected LockedOut while zombie holds locks, got {other:?}"),
        }
    }

    // Past the TTL (plus sweep cadence slack) the locks are gone and a
    // second client can commit.
    std::thread::sleep(Duration::from_millis(350));
    let mut second = cluster.client(1);
    let mut ctx = TxnCtx::begin(&mut second);
    ctx.open(&mut second, obj, true).unwrap();
    ctx.set_field(obj, BAL, Value::Int(6));
    ctx.commit(&mut second).unwrap();

    let stats = cluster.shutdown();
    let expired: u64 = stats.iter().map(|s| s.expired_prepares).sum();
    assert!(
        expired >= 1,
        "at least one sweep must have fired: {expired}"
    );
}

/// A client stuck on a partition's minority side cannot assemble a write
/// quorum: it must give up with `Unavailable` and fire a best-effort abort
/// so the minority servers it *did* prepare on release their locks without
/// waiting out the (long) TTL.
#[test]
fn minority_client_aborts_and_releases_minority_locks() {
    let mut cfg = ClusterConfig::test(4, 2);
    cfg.client_cfg = ClientConfig {
        rpc_timeout: Duration::from_millis(30),
        quorum_retries: 1,
        retry_backoff: Duration::from_micros(100),
        ..ClientConfig::default()
    };
    // TTL far beyond the test runtime: if the lock releases, it was the
    // best-effort abort, not the sweep.
    cfg.prepared_ttl = Duration::from_secs(30);
    let cluster = Cluster::start(cfg);
    let obj = ObjectId::new(BRANCH, 9);
    let mut minority = cluster.client(0);
    seed(&mut minority, obj, 1);

    // Client 0 sides with server 3 only; servers 0-2 and client 1 are the
    // majority. Note the fault table is consulted at *send* time, so the
    // minority client still reaches server 3 and locks there.
    cluster.partition(&[3], &[0]);

    let mut ctx = TxnCtx::begin(&mut minority);
    let err = match ctx.open(&mut minority, obj, true) {
        Err(e) => e,
        Ok(()) => {
            ctx.set_field(obj, BAL, Value::Int(2));
            ctx.commit(&mut minority).unwrap_err()
        }
    };
    assert_eq!(err, DtmError::Unavailable, "minority side must starve");
    assert!(
        minority.stats().quorum_unavailable >= 1,
        "unavailability must be counted"
    );

    cluster.heal_partition();

    // If server 3 were still holding the zombie prepare's lock, this write
    // would run out of locked-read retries (the TTL is 30 s). Its prompt
    // success proves the best-effort abort (or the absence of a stranded
    // prepare) cleaned up.
    let mut majority = cluster.client(1);
    let mut ctx = TxnCtx::begin(&mut majority);
    ctx.open(&mut majority, obj, true).unwrap();
    ctx.set_field(obj, BAL, Value::Int(3));
    ctx.commit(&mut majority).unwrap();

    let stats = cluster.shutdown();
    let expired: u64 = stats.iter().map(|s| s.expired_prepares).sum();
    assert_eq!(expired, 0, "cleanup must not have come from the TTL sweep");
}

/// Asymmetric link faults that lose only the *votes*: every server
/// receives the prepare and locks, the client starves and gives up — its
/// fire-and-forget abort (which still flows client→server) must release
/// the locks without the TTL sweep.
#[test]
fn lost_votes_trigger_best_effort_abort_that_releases_locks() {
    let mut cfg = ClusterConfig::test(4, 2);
    cfg.client_cfg = ClientConfig {
        rpc_timeout: Duration::from_millis(25),
        quorum_retries: 1,
        retry_backoff: Duration::from_micros(100),
        ..ClientConfig::default()
    };
    cfg.prepared_ttl = Duration::from_secs(30);
    let cluster = Cluster::start(cfg);
    let obj = ObjectId::new(BRANCH, 13);
    let mut victim = cluster.client(0);
    seed(&mut victim, obj, 1);

    let mut ctx = TxnCtx::begin(&mut victim);
    ctx.open(&mut victim, obj, true).unwrap();
    ctx.set_field(obj, BAL, Value::Int(2));

    // Votes (server → client 0) die; requests (client 0 → server) flow.
    let client0 = NodeId(4);
    for rank in 0..4u32 {
        cluster.net().fail_link(NodeId(rank), client0);
    }
    let err = ctx.commit(&mut victim).unwrap_err();
    assert_eq!(err, DtmError::Unavailable);
    assert_eq!(
        victim.stats().best_effort_aborts,
        1,
        "the failed 2PC must fire exactly one best-effort abort"
    );
    cluster.heal_partition();

    // Give the (already delivered) aborts a beat to be processed, then
    // prove the locks are gone long before the 30 s TTL could fire.
    let mut other = cluster.client(1);
    let mut ctx = TxnCtx::begin(&mut other);
    ctx.open(&mut other, obj, true).unwrap();
    ctx.set_field(obj, BAL, Value::Int(3));
    ctx.commit(&mut other).unwrap();

    let stats = cluster.shutdown();
    let expired: u64 = stats.iter().map(|s| s.expired_prepares).sum();
    assert_eq!(expired, 0, "release must not have come from the TTL sweep");
    let aborts: u64 = stats.iter().map(|s| s.aborts).sum();
    assert!(
        aborts >= 1,
        "servers must have processed the abort: {aborts}"
    );
}

/// Crash-with-amnesia end to end: a replica loses its entire store, dedup
/// cache, and prepared table; on rejoin it must refuse reads and prepare
/// votes until a read quorum of peers has answered its catch-up probes,
/// and once caught up its store digest must match the root replica's
/// (which sits in every write quorum and therefore holds everything).
#[test]
fn amnesia_recovery_refuses_votes_then_converges() {
    // 4 servers, ternary tree → levels [[0], [1,2,3]]. Write quorum =
    // {0} + 2 of {1,2,3}; with rank 3 wiped, its catch-up read quorum
    // must cover {1,2}, whose union holds every committed write.
    let cluster = Cluster::start(ClusterConfig::test(4, 2));
    let mut writer = cluster.client(0);
    for i in 20..28u64 {
        seed(&mut writer, ObjectId::new(BRANCH, i), i as i64);
    }

    // Wipe server 3. Give its service loop a beat to observe the epoch
    // bump (it polls every receive timeout, well under this sleep).
    cluster.fail_server_amnesia(3);
    std::thread::sleep(Duration::from_millis(150));

    // Writes while the replica is down all land on {0, 1, 2}.
    for i in 20..24u64 {
        let obj = ObjectId::new(BRANCH, i);
        let mut ctx = TxnCtx::begin(&mut writer);
        ctx.open(&mut writer, obj, true).unwrap();
        ctx.set_field(obj, BAL, Value::Int(100 + i as i64));
        ctx.commit(&mut writer).unwrap();
    }

    // Hold the replica in the syncing state: its probes reach the peers,
    // but every response (peer → 3) is dropped at send time.
    let node3 = NodeId(3);
    for rank in 0..3u32 {
        cluster.net().fail_link(NodeId(rank), node3);
    }
    cluster.recover_server(3);
    std::thread::sleep(Duration::from_millis(150));

    // (a) While catching up the replica must refuse reads...
    let zombie = cluster.net().endpoint(NodeId(4 + 1));
    let probe = ObjectId::new(BRANCH, 20);
    zombie.send(
        node3,
        Msg::ReadReq {
            txn: TxnId {
                client: NodeId(4 + 1),
                seq: 0,
            },
            req: 1,
            obj: probe,
            validate: vec![],
            sample: vec![],
        },
    );
    match zombie.recv_timeout(Duration::from_millis(500)) {
        Ok((src, Msg::Syncing { req })) => {
            assert_eq!(src, node3);
            assert_eq!(req, 1);
        }
        other => panic!("expected a Syncing read refusal, got {other:?}"),
    }

    // ...and refuse prepare votes, attributing the no-vote to recovery.
    let ztxn = TxnId {
        client: NodeId(4 + 1),
        seq: 1,
    };
    let prepare = Msg::PrepareReq {
        txn: ztxn,
        req: 2,
        validate: vec![],
        writes: vec![(probe, 5)],
    };
    zombie.send(node3, prepare.clone());
    match zombie.recv_timeout(Duration::from_millis(500)) {
        Ok((
            _,
            Msg::PrepareResp {
                req,
                vote,
                invalid,
                locked,
                syncing,
                wal_refused,
            },
        )) => {
            assert_eq!(req, 2);
            assert!(!vote, "a syncing replica must not vote yes");
            assert!(syncing, "the no-vote must be attributed to catch-up");
            assert!(!wal_refused, "catch-up, not storage, refused this vote");
            assert!(invalid.is_empty() && locked.is_none());
        }
        other => panic!("expected a syncing vote refusal, got {other:?}"),
    }

    // Let the sync responses through; catch-up completes within a couple
    // of probe rounds.
    cluster.heal_partition();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        assert!(
            std::time::Instant::now() < deadline,
            "replica 3 never finished catching up"
        );
        zombie.send(
            node3,
            Msg::ReadReq {
                txn: TxnId {
                    client: NodeId(4 + 1),
                    seq: 2,
                },
                req: 3,
                obj: probe,
                validate: vec![],
                sample: vec![],
            },
        );
        match zombie.recv_timeout(Duration::from_millis(500)) {
            Ok((_, Msg::Syncing { .. })) => std::thread::sleep(Duration::from_millis(20)),
            Ok((_, Msg::ReadResp { version, value, .. })) => {
                // The wiped replica must have recovered the down-time
                // write, not resurrected the pre-crash value.
                assert!(version >= 2, "synced version must be post-downtime");
                assert_eq!(value.get(BAL), Some(&Value::Int(120)));
                break;
            }
            other => panic!("expected Syncing or ReadResp, got {other:?}"),
        }
    }

    // The refusal was not dedup-cached: the *same* (txn, req) prepare now
    // earns a real vote.
    zombie.send(node3, prepare);
    match zombie.recv_timeout(Duration::from_millis(500)) {
        Ok((
            _,
            Msg::PrepareResp {
                req, vote, syncing, ..
            },
        )) => {
            assert_eq!(req, 2);
            assert!(vote, "a caught-up replica must vote on the retried prepare");
            assert!(!syncing);
        }
        other => panic!("expected a real vote after catch-up, got {other:?}"),
    }
    zombie.send(node3, Msg::AbortReq { txn: ztxn, req: 4 });
    let _ = zombie.recv_timeout(Duration::from_millis(500));

    // (b) Convergence: rank 0 is in every write quorum, so its digest is
    // the complete committed state; the recovered replica must match it.
    let stats = cluster.shutdown();
    assert_eq!(stats[3].amnesia_wipes, 1);
    assert_eq!(stats[3].syncs_completed, 1);
    assert!(stats[3].sync_read_refusals >= 1);
    assert!(stats[3].sync_vote_refusals >= 1);
    assert!(
        stats[3].sync_objects_received >= 8,
        "catch-up must have pulled the seeded objects: {}",
        stats[3].sync_objects_received
    );
    assert_eq!(
        stats[3].digest, stats[0].digest,
        "recovered replica must converge to the root replica's state"
    );
}

/// Crash-restart end to end: unlike amnesia, the replica keeps its durable
/// log. On rejoin it must replay the WAL (not refetch its whole store),
/// refuse reads and votes only until the *delta* sync covers a read
/// quorum, and converge to the root replica's digest.
#[test]
fn crash_restart_replays_log_then_fetches_only_the_delta() {
    let cluster = Cluster::start(ClusterConfig::test(4, 2));
    let mut writer = cluster.client(0);
    for i in 40..48u64 {
        seed(&mut writer, ObjectId::new(BRANCH, i), i as i64);
    }

    // Crash server 3 keeping its log; let its loop observe the epoch.
    cluster.fail_server_restart(3);
    std::thread::sleep(Duration::from_millis(150));

    // Writes while the replica is down all land on {0, 1, 2}.
    for i in 40..44u64 {
        let obj = ObjectId::new(BRANCH, i);
        let mut ctx = TxnCtx::begin(&mut writer);
        ctx.open(&mut writer, obj, true).unwrap();
        ctx.set_field(obj, BAL, Value::Int(100 + i as i64));
        ctx.commit(&mut writer).unwrap();
    }

    // Hold the replica mid-recovery: probes flow out, responses drop.
    let node3 = NodeId(3);
    for rank in 0..3u32 {
        cluster.net().fail_link(NodeId(rank), node3);
    }
    cluster.recover_server(3);
    std::thread::sleep(Duration::from_millis(150));

    // Even with its WAL replayed, the replica must refuse until the
    // delta arrives — its log cannot contain the down-time writes.
    let zombie = cluster.net().endpoint(NodeId(4 + 1));
    let probe = ObjectId::new(BRANCH, 40);
    zombie.send(
        node3,
        Msg::ReadReq {
            txn: TxnId {
                client: NodeId(4 + 1),
                seq: 0,
            },
            req: 1,
            obj: probe,
            validate: vec![],
            sample: vec![],
        },
    );
    match zombie.recv_timeout(Duration::from_millis(500)) {
        Ok((src, Msg::Syncing { req })) => {
            assert_eq!(src, node3);
            assert_eq!(req, 1);
        }
        other => panic!("expected a Syncing read refusal, got {other:?}"),
    }

    // Let the delta through; recovery completes within a few probes.
    cluster.heal_partition();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        assert!(
            std::time::Instant::now() < deadline,
            "replica 3 never finished its delta sync"
        );
        zombie.send(
            node3,
            Msg::ReadReq {
                txn: TxnId {
                    client: NodeId(4 + 1),
                    seq: 1,
                },
                req: 2,
                obj: probe,
                validate: vec![],
                sample: vec![],
            },
        );
        match zombie.recv_timeout(Duration::from_millis(500)) {
            Ok((_, Msg::Syncing { .. })) => std::thread::sleep(Duration::from_millis(20)),
            Ok((_, Msg::ReadResp { version, value, .. })) => {
                // The down-time write arrived via the delta, not a stale
                // replayed copy.
                assert!(version >= 2, "synced version must be post-downtime");
                assert_eq!(value.get(BAL), Some(&Value::Int(140)));
                break;
            }
            other => panic!("expected Syncing or ReadResp, got {other:?}"),
        }
    }

    let stats = cluster.shutdown();
    assert_eq!(stats[3].restart_replays, 1, "one restart recovery");
    assert_eq!(stats[3].amnesia_wipes, 0, "the disk survived");
    assert_eq!(stats[3].torn_tails_truncated, 0, "the log was whole");
    // 8 seeds + 4 pre-crash writes each logged a grant and a commit.
    assert!(
        stats[3].wal_records_replayed >= 16,
        "the store must come back from the log: {}",
        stats[3].wal_records_replayed
    );
    assert_eq!(stats[3].syncs_completed, 1);
    assert!(stats[3].sync_read_refusals >= 1);
    // Peers shipped (and the replica paid for) only the outage delta:
    // 4 changed objects from at most 3 peers over the few probe rounds
    // between heal and quorum coverage — nowhere near 8 × 3 for a full
    // re-fetch per round.
    assert!(
        stats[3].delta_objects_fetched >= 4,
        "the delta must actually flow: {}",
        stats[3].delta_objects_fetched
    );
    assert_eq!(
        stats[3].digest, stats[0].digest,
        "restarted replica must converge to the root replica's state"
    );
}

/// The durable-recovery payoff, pinned as a regression: after a short
/// outage on a *large* store, recovery work scales with the delta (what
/// changed while down), not with the store size. Counter-based and fully
/// deterministic: the WAL replays the whole inventory, while peers ship
/// only the handful of objects written during the outage.
#[test]
fn restart_recovery_work_scales_with_the_delta_not_the_store() {
    const STORE_OBJS: u64 = 192;
    const DELTA_OBJS: u64 = 4;
    let cluster = Cluster::start(ClusterConfig::test(4, 2));
    let mut writer = cluster.client(0);
    for i in 0..STORE_OBJS {
        seed(&mut writer, ObjectId::new(BRANCH, i), i as i64);
    }

    cluster.fail_server_restart(3);
    std::thread::sleep(Duration::from_millis(150));
    for i in 0..DELTA_OBJS {
        let obj = ObjectId::new(BRANCH, i);
        let mut ctx = TxnCtx::begin(&mut writer);
        ctx.open(&mut writer, obj, true).unwrap();
        ctx.set_field(obj, BAL, Value::Int(1000 + i as i64));
        ctx.commit(&mut writer).unwrap();
    }
    cluster.recover_server(3);

    // Wait until the replica serves again (sync complete).
    let zombie = cluster.net().endpoint(NodeId(4 + 1));
    let node3 = NodeId(3);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut req = 0;
    loop {
        assert!(
            std::time::Instant::now() < deadline,
            "replica 3 never finished its delta sync"
        );
        req += 1;
        zombie.send(
            node3,
            Msg::ReadReq {
                txn: TxnId {
                    client: NodeId(4 + 1),
                    seq: req,
                },
                req,
                obj: ObjectId::new(BRANCH, 0),
                validate: vec![],
                sample: vec![],
            },
        );
        match zombie.recv_timeout(Duration::from_millis(500)) {
            Ok((_, Msg::Syncing { .. })) => std::thread::sleep(Duration::from_millis(20)),
            Ok((_, Msg::ReadResp { version, .. })) => {
                assert!(version >= 2);
                break;
            }
            other => panic!("expected Syncing or ReadResp, got {other:?}"),
        }
    }

    let stats = cluster.shutdown();
    let s3 = &stats[3];
    // The whole inventory came back from the local log…
    assert!(
        s3.wal_records_replayed >= 2 * STORE_OBJS,
        "each seeded object logged a grant and a commit: {}",
        s3.wal_records_replayed
    );
    assert_eq!(
        s3.digest.total_objects(),
        STORE_OBJS,
        "recovered inventory must be the full store"
    );
    // …while the network shipped only the outage delta. The hard bound:
    // at most 3 peers answer each of the few probe rounds between
    // recovery and quorum coverage with the 4 changed objects. A full
    // refetch would move ≥ STORE_OBJS per responding peer.
    assert!(
        s3.delta_objects_fetched >= DELTA_OBJS,
        "the delta must actually flow: {}",
        s3.delta_objects_fetched
    );
    assert!(
        s3.delta_objects_fetched < STORE_OBJS / 4,
        "recovery traffic must scale with the outage, not the store: \
         fetched {} of a {}-object inventory",
        s3.delta_objects_fetched,
        STORE_OBJS
    );
    assert_eq!(s3.digest, stats[0].digest);
}

/// With every `PrepareReq` duplicated (and half of them delayed behind
/// later traffic), commits must still apply exactly once: servers dedup
/// retried phase-1/phase-2 requests by `(txn, req)` id.
#[test]
fn duplicated_prepares_commit_exactly_once() {
    let mut cfg = ClusterConfig::test(4, 1);
    cfg.client_cfg = ClientConfig {
        rpc_timeout: Duration::from_millis(200),
        ..ClientConfig::default()
    };
    let cluster = Cluster::start(cfg);
    let obj = ObjectId::new(BRANCH, 11);
    let mut client = cluster.client(0);
    seed(&mut client, obj, 0);

    cluster.install_chaos(&FaultPlan::with_rules(
        7,
        vec![ChaosRule::for_kind(
            msg_kind::PREPARE_REQ,
            0.0, // never drop
            1.0, // always duplicate
            0.5, // half the duplicates arrive late, behind the CommitReq
            Duration::from_millis(2),
        )],
    ));

    for i in 1..=20i64 {
        let mut ctx = TxnCtx::begin(&mut client);
        ctx.open(&mut client, obj, true).unwrap();
        let v = ctx.get_field(obj, BAL).as_int().unwrap();
        assert_eq!(v, i - 1, "previous increment must be visible exactly once");
        ctx.set_field(obj, BAL, Value::Int(v + 1));
        ctx.commit(&mut client).unwrap();
    }

    cluster.clear_chaos();
    // Late duplicate prepares must not have resurrected any lock.
    let mut ctx = TxnCtx::begin(&mut client);
    ctx.open(&mut client, obj, false).unwrap();
    assert_eq!(ctx.get_field(obj, BAL).as_int().unwrap(), 20);
    ctx.commit(&mut client).unwrap();

    let stats = cluster.shutdown();
    let dedup_hits: u64 = stats.iter().map(|s| s.dedup_hits).sum();
    assert!(
        dedup_hits > 0,
        "duplicated prepares must hit the dedup cache: {dedup_hits}"
    );
}
