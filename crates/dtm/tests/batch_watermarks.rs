//! Batched-read watermark deltas under chaos: duplicated and reordered
//! `ReadBatchReq`/`ReadBatchResp` traffic must not corrupt results,
//! request order, or the per-server validation watermarks.

use acn_dtm::{msg_kind, Cluster, ClusterConfig, DtmClient, TxnCtx, ValidateEntry};
use acn_simnet::{ChaosRule, FaultPlan, NodeId};
use acn_txir::{FieldId, ObjClass, ObjectId, Value};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
const BAL: FieldId = FieldId(0);

fn obj(i: u64) -> ObjectId {
    ObjectId::new(ACCOUNT, i)
}

fn seed(client: &mut DtmClient, o: ObjectId, value: i64) {
    let mut ctx = TxnCtx::begin(client);
    ctx.open(client, o, true).unwrap();
    ctx.set_field(o, BAL, Value::Int(value));
    ctx.commit(client).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batch reads stay correct when the batch-read request and response
    /// messages are duplicated and half-delayed: results arrive in request
    /// order with the committed versions/values, duplicate replies never
    /// double-count a server toward the quorum, and the watermarks of the
    /// contacted members advance to the full read-set length exactly once
    /// per round.
    #[test]
    fn batch_reads_survive_duplicated_and_reordered_replies(
        chaos_seed in 0u64..1_000_000,
        delay_p in 0.0f64..0.9,
        n_objs in 2usize..6,
        rounds in 1usize..4,
    ) {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let objs: Vec<ObjectId> = (0..n_objs as u64).map(obj).collect();
        for (i, &o) in objs.iter().enumerate() {
            seed(&mut client, o, 100 + i as i64);
        }

        cluster.install_chaos(&FaultPlan::with_rules(chaos_seed, vec![
            ChaosRule::for_kind(
                msg_kind::READ_BATCH_REQ, 0.0, 1.0, delay_p,
                Duration::from_millis(1),
            ),
            ChaosRule::for_kind(
                msg_kind::READ_BATCH_RESP, 0.0, 1.0, delay_p,
                Duration::from_millis(1),
            ),
        ]));

        let txn = client.begin();
        let mut watermarks: HashMap<NodeId, usize> = HashMap::new();
        let mut validate: Vec<ValidateEntry> = Vec::new();
        for round in 0..rounds {
            let got = client
                .remote_read_batch(txn, &objs, &validate, &mut watermarks)
                .expect("batch read must survive dup/delay chaos");
            prop_assert_eq!(got.len(), objs.len());
            for (i, (o, version, value)) in got.iter().enumerate() {
                prop_assert_eq!(*o, objs[i], "round {}: results out of order", round);
                prop_assert_eq!(*version, 1, "seeded objects are at version 1");
                prop_assert_eq!(
                    value.get(BAL).unwrap().as_int().unwrap(),
                    100 + i as i64
                );
            }
            for (&node, &w) in &watermarks {
                prop_assert!(
                    w <= validate.len(),
                    "watermark for {:?} overshot: {} > {}", node, w, validate.len()
                );
            }
            if !validate.is_empty() {
                prop_assert!(
                    watermarks.values().any(|&w| w == validate.len()),
                    "at least the contacted quorum must be fully advanced"
                );
            }
            if round == 0 {
                // Grow the read-set once so later rounds ship a real delta
                // and have a non-trivial watermark to advance to.
                validate = got.iter().map(|&(o, v, _)| (o, v)).collect();
            }
        }

        // Chaos off: a write bumps a version, and a fresh batch against the
        // same (advanced) watermarks sees it — deltas did not mask staleness.
        cluster.clear_chaos();
        seed(&mut client, objs[0], -7);
        let txn2 = client.begin();
        let got = client
            .remote_read_batch(txn2, &objs, &[], &mut watermarks)
            .unwrap();
        prop_assert_eq!(got[0].1, 2, "write must be visible at version 2");
        prop_assert_eq!(got[0].2.get(BAL).unwrap().as_int().unwrap(), -7);

        cluster.shutdown();
    }

    /// The same chaos through the full transaction path: `open_batch`
    /// prefetches under duplicated responses, and a read-only commit
    /// validates cleanly against the watermarked read-set.
    #[test]
    fn open_batch_commits_read_only_under_chaos(
        chaos_seed in 0u64..1_000_000,
        n_objs in 2usize..5,
    ) {
        let cluster = Cluster::start(ClusterConfig::test(4, 1));
        let mut client = cluster.client(0);
        let objs: Vec<ObjectId> = (0..n_objs as u64).map(obj).collect();
        for (i, &o) in objs.iter().enumerate() {
            seed(&mut client, o, 10 * i as i64);
        }
        cluster.install_chaos(&FaultPlan::with_rules(chaos_seed, vec![
            ChaosRule::for_kind(
                msg_kind::READ_BATCH_RESP, 0.0, 1.0, 0.5,
                Duration::from_millis(1),
            ),
        ]));

        let mut ctx = TxnCtx::begin(&mut client);
        ctx.open_batch(&mut client, &objs).unwrap();
        for (i, &o) in objs.iter().enumerate() {
            prop_assert_eq!(
                ctx.get_field(o, BAL).as_int().unwrap(),
                10 * i as i64
            );
        }
        ctx.commit(&mut client).unwrap();
        cluster.shutdown();
    }
}
