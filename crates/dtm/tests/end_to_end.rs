//! End-to-end QR-DTM / QR-CN tests against live server threads.

use acn_dtm::{AbortScope, Cluster, ClusterConfig, DtmError, TxnCtx};
use acn_txir::{FieldId, ObjClass, ObjectId, Value};

const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
const BRANCH: ObjClass = ObjClass::new(0, "Branch");
const BAL: FieldId = FieldId(0);

fn acct(i: u64) -> ObjectId {
    ObjectId::new(ACCOUNT, i)
}
fn branch(i: u64) -> ObjectId {
    ObjectId::new(BRANCH, i)
}

/// Write `value` into `obj.BAL` with a standalone transaction.
fn seed(client: &mut acn_dtm::DtmClient, obj: ObjectId, value: i64) {
    let mut ctx = TxnCtx::begin(client);
    ctx.open(client, obj, true).unwrap();
    ctx.set_field(obj, BAL, Value::Int(value));
    ctx.commit(client).unwrap();
}

fn read_bal(client: &mut acn_dtm::DtmClient, obj: ObjectId) -> i64 {
    let mut ctx = TxnCtx::begin(client);
    ctx.open(client, obj, false).unwrap();
    let v = ctx.get_field(obj, BAL).as_int().unwrap();
    ctx.commit(client).unwrap();
    v
}

#[test]
fn write_then_read_round_trips() {
    let cluster = Cluster::start(ClusterConfig::test(10, 2));
    let mut c0 = cluster.client(0);
    let mut c1 = cluster.client(1);
    seed(&mut c0, acct(1), 500);
    // A *different* client through a *different* read quorum sees it.
    assert_eq!(read_bal(&mut c1, acct(1)), 500);
    cluster.shutdown();
}

#[test]
fn fresh_objects_read_zero() {
    let cluster = Cluster::start(ClusterConfig::test(4, 1));
    let mut c = cluster.client(0);
    assert_eq!(read_bal(&mut c, acct(999)), 0);
    cluster.shutdown();
}

#[test]
fn repeated_open_is_local() {
    let cluster = Cluster::start(ClusterConfig::test(4, 1));
    let mut c = cluster.client(0);
    seed(&mut c, acct(1), 7);
    let before = c.stats().remote_reads;
    let mut ctx = TxnCtx::begin(&mut c);
    ctx.open(&mut c, acct(1), false).unwrap();
    ctx.open(&mut c, acct(1), true).unwrap(); // upgrade, still local
    ctx.open(&mut c, acct(1), false).unwrap();
    assert_eq!(c.stats().remote_reads, before + 1, "one remote fetch only");
    ctx.set_field(acct(1), BAL, Value::Int(8));
    ctx.commit(&mut c).unwrap();
    assert_eq!(read_bal(&mut c, acct(1)), 8);
    cluster.shutdown();
}

#[test]
fn blind_open_commits_with_no_read_round() {
    let cluster = Cluster::start(ClusterConfig::test(4, 1));
    let mut c = cluster.client(0);
    let before = c.stats().remote_reads;
    let mut ctx = TxnCtx::begin(&mut c);
    ctx.open_blind(acct(50), true);
    ctx.set_field(acct(50), BAL, Value::Int(9));
    ctx.commit(&mut c).unwrap();
    assert_eq!(
        c.stats().remote_reads,
        before,
        "a blind insert pays no read round"
    );
    assert_eq!(read_bal(&mut c, acct(50)), 9);
    cluster.shutdown();
}

#[test]
fn blind_open_of_existing_object_is_rejected() {
    let cluster = Cluster::start(ClusterConfig::test(4, 1));
    let mut c = cluster.client(0);
    seed(&mut c, acct(51), 123);
    // A blind open presumes version 0; prepare validation must catch the
    // existing object before the write can clobber it.
    let mut ctx = TxnCtx::begin(&mut c);
    ctx.open_blind(acct(51), true);
    ctx.set_field(acct(51), BAL, Value::Int(0));
    match ctx.commit(&mut c) {
        Err(DtmError::Conflict { invalid, .. }) => assert_eq!(invalid, vec![acct(51)]),
        other => panic!("expected commit conflict, got {other:?}"),
    }
    assert_eq!(read_bal(&mut c, acct(51)), 123, "existing value survives");
    cluster.shutdown();
}

#[test]
fn stale_read_set_detected_on_next_open() {
    let cluster = Cluster::start(ClusterConfig::test(10, 2));
    let mut c0 = cluster.client(0);
    let mut c1 = cluster.client(1);
    seed(&mut c0, acct(1), 100);

    // c1 reads acct(1) …
    let mut ctx = TxnCtx::begin(&mut c1);
    ctx.open(&mut c1, acct(1), false).unwrap();
    // … c0 overwrites it behind c1's back …
    seed(&mut c0, acct(1), 200);
    // … so c1's next open reports the invalidation.
    let err = ctx.open(&mut c1, acct(2), false).unwrap_err();
    match err {
        DtmError::Invalidated { objs } => assert_eq!(objs, vec![acct(1)]),
        other => panic!("expected invalidation, got {other}"),
    }
    cluster.shutdown();
}

#[test]
fn commit_conflict_detected_at_prepare() {
    let cluster = Cluster::start(ClusterConfig::test(10, 2));
    let mut c0 = cluster.client(0);
    let mut c1 = cluster.client(1);
    seed(&mut c0, acct(1), 100);

    // Both read the same version, both try to commit a write.
    let mut t0 = TxnCtx::begin(&mut c0);
    t0.open(&mut c0, acct(1), true).unwrap();
    let mut t1 = TxnCtx::begin(&mut c1);
    t1.open(&mut c1, acct(1), true).unwrap();
    t0.set_field(acct(1), BAL, Value::Int(110));
    t1.set_field(acct(1), BAL, Value::Int(120));
    let r0 = t0.commit(&mut c0);
    let r1 = t1.commit(&mut c1);
    assert!(
        r0.is_ok() != r1.is_ok(),
        "exactly one writer must win: {r0:?} vs {r1:?}"
    );
    let expected = if r0.is_ok() { 110 } else { 120 };
    assert_eq!(read_bal(&mut c0, acct(1)), expected);
    cluster.shutdown();
}

#[test]
fn read_only_commit_validates() {
    let cluster = Cluster::start(ClusterConfig::test(10, 2));
    let mut c0 = cluster.client(0);
    let mut c1 = cluster.client(1);
    seed(&mut c0, acct(1), 5);

    let mut ro = TxnCtx::begin(&mut c1);
    ro.open(&mut c1, acct(1), false).unwrap();
    seed(&mut c0, acct(1), 6); // invalidate before the read-only commit
    match ro.commit(&mut c1) {
        Err(DtmError::Conflict {
            invalid,
            locked,
            syncing,
            wal_refused,
        }) => {
            assert_eq!(invalid, vec![acct(1)]);
            assert!(locked.is_empty(), "validation failure, not a lock conflict");
            assert!(!syncing, "no replica was recovering");
            assert!(!wal_refused, "no replica's storage was failing");
        }
        other => panic!("expected conflict, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn closed_nesting_partial_abort_scope() {
    let cluster = Cluster::start(ClusterConfig::test(10, 2));
    let mut c0 = cluster.client(0);
    let mut c1 = cluster.client(1);
    seed(&mut c0, acct(1), 10);
    seed(&mut c0, branch(1), 1000);

    // Parent reads the account; child reads the branch.
    let mut parent = TxnCtx::begin(&mut c1);
    parent.open(&mut c1, acct(1), true).unwrap();
    let mut child = parent.child();
    child.open(&mut c1, &parent, branch(1), true).unwrap();

    // Another client invalidates the BRANCH (child-first object).
    seed(&mut c0, branch(1), 2000);

    // The child's next remote open reports branch(1) stale → child scope.
    let err = child.open(&mut c1, &parent, branch(2), false).unwrap_err();
    match &err {
        DtmError::Invalidated { objs } => {
            assert_eq!(objs, &vec![branch(1)]);
            assert_eq!(child.classify(&parent, objs), AbortScope::Child);
        }
        other => panic!("expected invalidation, got {other}"),
    }

    // Partial rollback: discard the child, re-run it, parent survives.
    let mut retry = parent.child();
    retry.open(&mut c1, &parent, branch(1), true).unwrap();
    let bal = retry.get_field(&parent, branch(1), BAL).as_int().unwrap();
    assert_eq!(bal, 2000, "re-read sees the fresh branch");
    retry.set_field(&parent, branch(1), BAL, Value::Int(bal - 50));
    retry.commit_into(&mut parent);
    parent.set_field(acct(1), BAL, Value::Int(60));
    parent.commit(&mut c1).unwrap();

    assert_eq!(read_bal(&mut c0, branch(1)), 1950);
    assert_eq!(read_bal(&mut c0, acct(1)), 60);
    cluster.shutdown();
}

#[test]
fn closed_nesting_parent_scope_when_history_invalidated() {
    let cluster = Cluster::start(ClusterConfig::test(10, 2));
    let mut c0 = cluster.client(0);
    let mut c1 = cluster.client(1);
    seed(&mut c0, acct(1), 10);

    let mut parent = TxnCtx::begin(&mut c1);
    parent.open(&mut c1, acct(1), false).unwrap();
    let mut child = parent.child();

    // Invalidate the PARENT's object.
    seed(&mut c0, acct(1), 20);

    let err = child.open(&mut c1, &parent, branch(1), false).unwrap_err();
    match &err {
        DtmError::Invalidated { objs } => {
            assert_eq!(objs, &vec![acct(1)]);
            assert_eq!(child.classify(&parent, objs), AbortScope::Parent);
        }
        other => panic!("expected invalidation, got {other}"),
    }
    cluster.shutdown();
}

#[test]
fn child_merge_commits_through_parent() {
    let cluster = Cluster::start(ClusterConfig::test(4, 1));
    let mut c = cluster.client(0);
    seed(&mut c, acct(1), 100);
    seed(&mut c, acct(2), 0);

    let mut parent = TxnCtx::begin(&mut c);
    parent.open(&mut c, acct(1), true).unwrap();
    let b1 = parent.get_field(acct(1), BAL).as_int().unwrap();
    parent.set_field(acct(1), BAL, Value::Int(b1 - 30));

    let mut child = parent.child();
    child.open(&mut c, &parent, acct(2), true).unwrap();
    let b2 = child.get_field(&parent, acct(2), BAL).as_int().unwrap();
    child.set_field(&parent, acct(2), BAL, Value::Int(b2 + 30));
    child.commit_into(&mut parent);

    parent.commit(&mut c).unwrap();
    assert_eq!(read_bal(&mut c, acct(1)), 70);
    assert_eq!(read_bal(&mut c, acct(2)), 30);
    cluster.shutdown();
}

#[test]
fn uncommitted_child_state_is_invisible_to_commit() {
    let cluster = Cluster::start(ClusterConfig::test(4, 1));
    let mut c = cluster.client(0);
    seed(&mut c, acct(1), 100);

    let mut parent = TxnCtx::begin(&mut c);
    parent.open(&mut c, acct(1), true).unwrap();
    {
        let mut child = parent.child();
        child.set_field(&parent, acct(1), BAL, Value::Int(0));
        // child dropped = aborted
    }
    parent.commit(&mut c).unwrap();
    assert_eq!(read_bal(&mut c, acct(1)), 100, "aborted child write leaked");
    cluster.shutdown();
}

#[test]
fn leaf_failures_are_tolerated() {
    let cluster = Cluster::start(ClusterConfig::test(10, 1));
    let mut c = cluster.client(0);
    seed(&mut c, acct(1), 42);
    // Fail two of the six leaves: reads and writes must still work.
    cluster.fail_server(5);
    cluster.fail_server(8);
    assert_eq!(read_bal(&mut c, acct(1)), 42);
    seed(&mut c, acct(1), 43);
    assert_eq!(read_bal(&mut c, acct(1)), 43);
    cluster.shutdown();
}

#[test]
fn root_failure_blocks_writes_but_reads_survive() {
    let cluster = Cluster::start(ClusterConfig::test(10, 1));
    let mut c = cluster.client(0);
    seed(&mut c, acct(1), 7);
    cluster.fail_server(0);
    assert_eq!(read_bal(&mut c, acct(1)), 7, "reads survive root failure");
    let mut ctx = TxnCtx::begin(&mut c);
    ctx.open(&mut c, acct(1), true).unwrap();
    ctx.set_field(acct(1), BAL, Value::Int(8));
    assert_eq!(ctx.commit(&mut c), Err(DtmError::Unavailable));
    // Recovery restores write availability.
    cluster.recover_server(0);
    seed(&mut c, acct(1), 9);
    assert_eq!(read_bal(&mut c, acct(1)), 9);
    cluster.shutdown();
}

#[test]
fn recovered_stale_replica_reconciles_via_versions() {
    let cluster = Cluster::start(ClusterConfig::test(10, 1));
    let mut c = cluster.client(0);
    seed(&mut c, acct(1), 1);
    // Fail a leaf, write a few more versions it will miss, recover it.
    cluster.fail_server(9);
    seed(&mut c, acct(1), 2);
    seed(&mut c, acct(1), 3);
    cluster.recover_server(9);
    // Reads take the max version across the quorum, so the stale replica
    // cannot roll the value back.
    for _ in 0..10 {
        assert_eq!(read_bal(&mut c, acct(1)), 3);
    }
    cluster.shutdown();
}

#[test]
fn contention_query_sees_hot_class() {
    let mut cfg = ClusterConfig::test(4, 1);
    cfg.window.window = std::time::Duration::from_millis(100);
    let cluster = Cluster::start(cfg);
    let mut c = cluster.client(0);
    // Hammer one branch, touch many accounts once.
    for i in 0..10 {
        seed(&mut c, branch(1), i);
        seed(&mut c, acct(i as u64), i);
    }
    // Query one window after the writes: within [window, 2·window) the
    // write window is the last complete one and gets published; waiting
    // past 2·window would (correctly, post-fix) read as cold.
    std::thread::sleep(std::time::Duration::from_millis(130));
    let levels = c.query_contention(&[BRANCH.id, ACCOUNT.id]).unwrap();
    assert!(
        levels[&BRANCH.id] > levels[&ACCOUNT.id],
        "branch must look hotter: {levels:?}"
    );
    cluster.shutdown();
}

#[test]
fn concurrent_increments_conserve_total() {
    // 4 clients × 50 increment transactions on one counter with retries:
    // the committed value must equal the number of successful commits.
    let cluster = Cluster::start(ClusterConfig::test(10, 4));
    let mut c0 = cluster.client(0);
    seed(&mut c0, acct(1), 0);
    let committed: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let mut client = cluster.client(i);
                s.spawn(move || {
                    let mut commits = 0u64;
                    for _ in 0..50 {
                        loop {
                            let mut ctx = TxnCtx::begin(&mut client);
                            if ctx.open(&mut client, acct(1), true).is_err() {
                                continue;
                            }
                            let v = ctx.get_field(acct(1), BAL).as_int().unwrap();
                            ctx.set_field(acct(1), BAL, Value::Int(v + 1));
                            if ctx.commit(&mut client).is_ok() {
                                commits += 1;
                                break;
                            }
                        }
                    }
                    commits
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total: u64 = committed.iter().sum();
    assert_eq!(total, 200);
    assert_eq!(read_bal(&mut c0, acct(1)), 200);
    cluster.shutdown();
}
