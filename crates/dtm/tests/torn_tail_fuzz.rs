//! Torn-tail fuzzing for the durable write-ahead log.
//!
//! A crash can stop a write mid-frame, and a sick disk can hand back a
//! mangled one. Whatever the damage to the *final* record, recovery must
//! (a) never panic, (b) keep exactly the whole-record prefix, (c) have
//! the file backend physically truncate to that prefix so later appends
//! extend a clean log, and (d) never double-apply a record that survives
//! in both the log and a client retry. This battery drives every
//! truncation length and every single-byte corruption offset of the last
//! frame, across several generated logs.

use acn_dtm::{decode_stream, replay, FileLog, Persistence, TxnId, WalRecord, FRAME_HDR};
use acn_simnet::NodeId;
use acn_txir::{FieldId, ObjClass, ObjectId, ObjectVal, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SEEDS: [u64; 4] = [0x5EED_0001, 0xDEAD_BEEF, 41, 97];
const BRANCH: ObjClass = ObjClass::new(0, "Branch");

/// Minimal xorshift so the battery needs no RNG dependency and every
/// seed reproduces byte-identical logs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn txn(client: u64, seq: u64) -> TxnId {
    TxnId {
        client: NodeId(client as u32),
        seq,
    }
}

fn val(v: i64) -> ObjectVal {
    ObjectVal::from_fields([(FieldId(0), Value::Int(v))])
}

/// A seed-determined log of 6 mixed records over a small object space.
fn sample_log(seed: u64) -> Vec<WalRecord> {
    let mut rng = Rng(seed | 1);
    (0..6u64)
        .map(|i| {
            let t = txn(rng.below(3), i);
            let req = i * 2 + 1;
            let obj = ObjectId::new(BRANCH, rng.below(8));
            match rng.below(4) {
                0 => WalRecord::PrepareGrant {
                    txn: t,
                    req,
                    objs: vec![obj, ObjectId::new(BRANCH, rng.below(8))],
                },
                1 => WalRecord::CommitApply {
                    txn: t,
                    req,
                    writes: vec![(obj, i + 1, val(rng.below(1000) as i64))],
                },
                2 => WalRecord::Abort { txn: t, req },
                _ => WalRecord::IncarnationBump {
                    incarnation: rng.below(5),
                },
            }
        })
        .collect()
}

/// Frame `log`, returning the bytes and the cumulative record boundaries
/// (boundaries[i] = byte length of the first i records; last == len).
fn frame_with_boundaries(log: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut boundaries = vec![0];
    for rec in log {
        rec.frame_into(&mut bytes);
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

/// Whole records recoverable from a log cut (or corrupted) at `cut`.
fn whole_prefix(boundaries: &[usize], cut: usize) -> usize {
    boundaries.iter().rposition(|&b| b <= cut).unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "acn-wal-fuzz-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{tag}.wal"))
}

#[test]
fn truncation_at_every_byte_offset_keeps_the_whole_record_prefix() {
    for seed in SEEDS {
        let log = sample_log(seed);
        let (bytes, boundaries) = frame_with_boundaries(&log);
        for cut in 0..=bytes.len() {
            let (records, good, torn) = decode_stream(&bytes[..cut]);
            let keep = whole_prefix(&boundaries, cut);
            assert_eq!(
                records.len(),
                keep,
                "seed {seed:#x} cut {cut}: wrong prefix length"
            );
            assert_eq!(records, log[..keep], "seed {seed:#x} cut {cut}");
            assert_eq!(good, boundaries[keep], "seed {seed:#x} cut {cut}");
            assert_eq!(torn, cut != boundaries[keep], "seed {seed:#x} cut {cut}");
            // Replaying the recovered prefix must never panic and never
            // count more applications than records survived.
            let st = replay(records);
            assert!(st.records <= keep as u64, "seed {seed:#x} cut {cut}");
        }
    }
}

#[test]
fn corrupting_any_byte_of_the_final_record_truncates_exactly_it() {
    for seed in SEEDS {
        let log = sample_log(seed);
        let (bytes, boundaries) = frame_with_boundaries(&log);
        let last_start = boundaries[log.len() - 1];
        assert!(bytes.len() - last_start >= FRAME_HDR);
        for offset in last_start..bytes.len() {
            let mut mangled = bytes.clone();
            mangled[offset] ^= 0xA5;
            let (records, good, torn) = decode_stream(&mangled);
            assert!(
                torn,
                "seed {seed:#x} offset {offset}: corruption went undetected"
            );
            assert_eq!(
                records,
                log[..log.len() - 1],
                "seed {seed:#x} offset {offset}"
            );
            assert_eq!(good, last_start, "seed {seed:#x} offset {offset}");
            let _ = replay(records); // must not panic
        }
    }
}

#[test]
fn filelog_physically_truncates_then_appends_cleanly() {
    for seed in SEEDS {
        let log = sample_log(seed);
        let (bytes, boundaries) = frame_with_boundaries(&log);
        let last_start = boundaries[log.len() - 1];
        // Cover both damage shapes at several offsets of the final frame:
        // a short tail (crash mid-write) and a flipped byte (bit rot).
        for offset in last_start..bytes.len() {
            let path = temp_path(&format!("s{seed:x}-o{offset}"));
            let damaged = if offset % 2 == 0 && offset > last_start {
                bytes[..offset].to_vec() // torn short
            } else {
                let mut m = bytes.clone();
                m[offset] ^= 0xA5; // corrupt in place
                m
            };
            std::fs::write(&path, &damaged).expect("write damaged log");

            let mut wal = FileLog::open(&path).expect("open damaged log");
            let loaded = wal.load();
            let keep = whole_prefix(&boundaries, offset.min(last_start));
            assert_eq!(
                loaded.records,
                log[..keep],
                "seed {seed:#x} offset {offset}"
            );
            assert_eq!(
                loaded.torn_tails_truncated, 1,
                "seed {seed:#x} offset {offset}"
            );
            // The tail is physically gone…
            let on_disk = std::fs::metadata(&path).expect("stat log").len();
            assert_eq!(on_disk as usize, boundaries[keep]);

            // …so an append after recovery yields a clean, longer log.
            let retry = log[log.len() - 1].clone();
            wal.append(&retry).expect("append after recovery");
            wal.sync().expect("sync after recovery");
            drop(wal);
            let mut reopened = FileLog::open(&path).expect("reopen log");
            let reloaded = reopened.load();
            assert_eq!(reloaded.torn_tails_truncated, 0);
            let mut expect = log[..keep].to_vec();
            expect.push(retry);
            assert_eq!(reloaded.records, expect, "seed {seed:#x} offset {offset}");
            std::fs::remove_dir_all(path.parent().unwrap()).ok();
        }
    }
}

#[test]
fn recovered_prefix_plus_client_retry_never_double_applies() {
    for seed in SEEDS {
        let log = sample_log(seed);
        let (bytes, boundaries) = frame_with_boundaries(&log);
        // Tear off the last record, then "retry" every surviving record
        // on top of the recovered log — the dedup key must make each a
        // no-op, byte-for-byte the same store.
        let (recovered, _, _) = decode_stream(&bytes[..boundaries[log.len() - 1]]);
        let once = replay(recovered.clone());
        let mut replayed_twice = recovered.clone();
        replayed_twice.extend(recovered);
        let twice = replay(replayed_twice);
        assert_eq!(once.store.digest(), twice.store.digest(), "seed {seed:#x}");
        assert_eq!(once.prepared, twice.prepared, "seed {seed:#x}");
    }
}
