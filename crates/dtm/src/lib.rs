#![warn(missing_docs)]

//! # acn-dtm — QR-DTM / QR-CN: a quorum-replicated DTM with closed nesting
//!
//! This crate rebuilds the transactional substrate the paper runs on:
//!
//! * **QR-DTM** (Zhang & Ravindran, OPODIS '11): a fault-tolerant DTM that
//!   fully replicates every object on all server nodes and coordinates
//!   through **tree quorums** (`acn-quorum`). A transaction's first access
//!   to an object is a remote fetch from a read quorum; every such read
//!   **incrementally validates** the transaction's current read-set so
//!   conflicts surface early; commit runs **two-phase commit** against a
//!   write quorum, locking (the paper's `protected` flag) and re-validating
//!   before applying writes and bumping version numbers. The protocol is
//!   1-copy serializable because any read quorum intersects any write
//!   quorum and any two write quorums intersect.
//! * **QR-CN** (Dhoke et al., IPDPS '13): closed nesting on top. A
//!   sub-transaction keeps private read/write sets layered over its
//!   parent's; committing merges into the parent (never into the shared
//!   state); an invalidation of an object *first read by the running
//!   sub-transaction* aborts only that sub-transaction (**partial
//!   rollback**), while an invalidation of anything in the parent's history
//!   aborts the whole transaction.
//! * The **Dynamic Module's server half**: per-object write counters over
//!   rotating time windows, queryable per class, which is how QR-ACN
//!   observes contention ("the contention level of an object is calculated
//!   as the number of write requests happened in the last time window").
//!
//! The client/server split mirrors the paper's: the requesting transaction
//! is the *client*, quorum nodes are *servers*, and all interaction flows
//! through `acn-simnet` messages so remote operations pay network latency.

mod client;
mod cluster;
mod contention;
mod context;
mod error;
mod history;
mod messages;
mod pool;
mod server;
mod store;
mod wal;

pub use client::{ClientConfig, ClientStats, ContentionSample, DtmClient};
pub use cluster::{Cluster, ClusterConfig, PersistenceMode};
pub use contention::{ContentionWindow, WindowConfig};
pub use context::{ChildCtx, SpecCache, TxnCtx};
pub use error::{AbortScope, DtmError};
pub use history::{
    check_durability, check_history, CommitRecord, DurabilitySummary, HistoryLog, HistorySummary,
    Violation,
};
pub use messages::{kind as msg_kind, BatchRead, Msg, ReqId, TxnId, ValidateEntry, Version};
pub use pool::ClientPool;
pub use server::{Server, ServerStats, SyncConfig, DEFAULT_PREPARED_TTL};
pub use store::{ClassDigest, Store, StoreDigest, VersionedObject};
pub use wal::{
    checksum, decode_stream, replay, DurabilityMode, FaultLog, FaultLogConfig, FileLog, LoadedLog,
    MemLog, Persistence, ReplayState, WalError, WalRecord, FRAME_HDR,
};
