//! Transaction contexts: flat (QR-DTM) and closed-nested (QR-CN).
//!
//! A [`TxnCtx`] holds the paper's private read-set and write-set: reads log
//! `(object, version)`, fetched copies are buffered, `SetField`s mutate the
//! buffer, and everything is applied to the shared state only at commit.
//!
//! A [`ChildCtx`] is a closed-nested sub-transaction: it layers its own
//! read-set and buffer *overlay* on top of the parent. Committing a child
//! merges into the parent (nothing becomes globally visible); aborting a
//! child discards only the overlay. When incremental validation reports
//! stale objects, [`ChildCtx::classify`] decides the rollback scope: if
//! every invalidated object was first read by the running child, only the
//! child re-executes (**partial rollback**); any invalidated object in the
//! parent's history forces a full restart.

use crate::client::DtmClient;
use crate::error::{AbortScope, DtmError};
use crate::messages::{TxnId, ValidateEntry, Version};
use acn_simnet::NodeId;
use acn_txir::{FieldId, ObjectId, ObjectVal, Value};
use std::collections::{HashMap, HashSet};

/// A speculative whole-transaction prefetch: versioned object copies
/// fetched in **one** quorum round at attempt start from the batch
/// scheduler's resolved (predicted-exact) access set.
///
/// Entries are *not* part of any read-set until an `Open` installs them
/// via [`TxnCtx::open_spec`] / [`ChildCtx::open_spec`] — a mispredicted
/// object that the instance never actually opens therefore never enters
/// validation and cannot cause a spurious abort. Installing removes the
/// entry, so a rolled-back Block's re-run misses the cache and refetches
/// a fresh copy instead of replaying a stale one. A stale copy that *is*
/// installed is caught exactly like any stale read: by incremental
/// validation on later remote rounds or by commit-time validation.
#[derive(Debug, Default)]
pub struct SpecCache {
    map: HashMap<ObjectId, (Version, ObjectVal)>,
}

impl SpecCache {
    /// Number of cached (not yet installed) copies.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// No cached copies left (or none fetched).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether a copy of `obj` is still cached (not yet installed).
    pub fn contains(&self, obj: &ObjectId) -> bool {
        self.map.contains_key(obj)
    }

    /// Merge a corrective fetch into this cache; `other` wins on overlap
    /// (it was fetched later, so its copies are at least as fresh).
    pub fn absorb(&mut self, other: SpecCache) {
        self.map.extend(other.map);
    }
}

/// The root (parent) transaction context.
///
/// `Clone` exists for the checkpointing executor in `acn-core`, which
/// snapshots the whole context at sub-transaction boundaries — the very
/// overhead closed nesting avoids.
#[derive(Debug, Clone)]
pub struct TxnCtx {
    txn: TxnId,
    /// `(object, version)` in first-read order — the read-set.
    read_set: Vec<ValidateEntry>,
    read_index: HashMap<ObjectId, usize>,
    /// Buffered object copies (current values including local writes).
    buffers: HashMap<ObjectId, ObjectVal>,
    /// Objects with buffered writes — the write-set.
    writes: HashSet<ObjectId>,
    /// Per-server validated watermark: how many leading entries of the
    /// current validation vector (this read-set, extended by a running
    /// child's reads) each server has already validated. Batched reads
    /// ship only the suffix past the contacted quorum's minimum watermark
    /// (see [`DtmClient::remote_read_batch`]).
    watermarks: HashMap<NodeId, usize>,
}

impl TxnCtx {
    /// Begin a fresh transaction on `client`.
    pub fn begin(client: &mut DtmClient) -> TxnCtx {
        TxnCtx {
            txn: client.begin(),
            read_set: Vec::new(),
            read_index: HashMap::new(),
            buffers: HashMap::new(),
            writes: HashSet::new(),
            watermarks: HashMap::new(),
        }
    }

    /// This transaction's globally unique id.
    pub fn id(&self) -> TxnId {
        self.txn
    }

    /// Is `obj` in this context's read-set?
    pub fn has_read(&self, obj: ObjectId) -> bool {
        self.read_index.contains_key(&obj)
    }

    /// The version this transaction read for `obj`.
    pub fn read_version(&self, obj: ObjectId) -> Option<Version> {
        self.read_index.get(&obj).map(|&i| self.read_set[i].1)
    }

    /// The current read-set (for validation payloads).
    pub fn read_set(&self) -> &[ValidateEntry] {
        &self.read_set
    }

    /// Number of objects opened so far.
    pub fn reads_len(&self) -> usize {
        self.read_set.len()
    }

    /// Open `obj`; the first open of an object is a remote quorum read, a
    /// repeated open is local. `update` adds it to the write-set.
    pub fn open(
        &mut self,
        client: &mut DtmClient,
        obj: ObjectId,
        update: bool,
    ) -> Result<(), DtmError> {
        if !self.has_read(obj) {
            let (version, value) = client.remote_read(self.txn, obj, &self.read_set)?;
            self.read_index.insert(obj, self.read_set.len());
            self.read_set.push((obj, version));
            self.buffers.insert(obj, value);
        }
        if update {
            self.writes.insert(obj);
        }
        Ok(())
    }

    /// Open every not-yet-read object of `objs` in **one** quorum round
    /// trip (the executor's prefetch path). A single missing object falls
    /// back to [`TxnCtx::open`]; none missing is free. Objects are fetched
    /// read-only — the `Open` statement itself still records update intent
    /// when it executes.
    pub fn open_batch(
        &mut self,
        client: &mut DtmClient,
        objs: &[ObjectId],
    ) -> Result<(), DtmError> {
        let mut missing: Vec<ObjectId> = Vec::new();
        for &obj in objs {
            if !self.has_read(obj) && !missing.contains(&obj) {
                missing.push(obj);
            }
        }
        match missing.len() {
            0 => Ok(()),
            1 => self.open(client, missing[0], false),
            _ => {
                let fetched = client.remote_read_batch(
                    self.txn,
                    &missing,
                    &self.read_set,
                    &mut self.watermarks,
                )?;
                for (obj, version, value) in fetched {
                    self.read_index.insert(obj, self.read_set.len());
                    self.read_set.push((obj, version));
                    self.buffers.insert(obj, value);
                }
                Ok(())
            }
        }
    }

    /// Fetch speculative copies of every not-yet-read object of `objs` in
    /// one quorum round, into a side cache that leaves the read-set
    /// untouched (see [`SpecCache`]). Reads are validated incrementally
    /// against the current read-set like any other remote round.
    pub fn fetch_spec(
        &mut self,
        client: &mut DtmClient,
        objs: &[ObjectId],
    ) -> Result<SpecCache, DtmError> {
        let mut missing: Vec<ObjectId> = Vec::new();
        for &obj in objs {
            if !self.has_read(obj) && !missing.contains(&obj) {
                missing.push(obj);
            }
        }
        let mut map = HashMap::with_capacity(missing.len());
        match missing.len() {
            0 => {}
            1 => {
                let (version, value) = client.remote_read(self.txn, missing[0], &self.read_set)?;
                map.insert(missing[0], (version, value));
            }
            _ => {
                let fetched = client.remote_read_batch(
                    self.txn,
                    &missing,
                    &self.read_set,
                    &mut self.watermarks,
                )?;
                for (obj, version, value) in fetched {
                    map.insert(obj, (version, value));
                }
            }
        }
        Ok(SpecCache { map })
    }

    /// [`TxnCtx::open`] through the speculative cache: a hit installs a
    /// copy of the prefetched entry as a first read with no remote round;
    /// a miss — a mispredicted object — is a normal remote open. The entry
    /// stays cached (peek, not take): it belongs to this transaction's
    /// attempt, so a rolled-back sub-transaction can re-install the same
    /// copy for free, and commit validation still rejects it if stale.
    pub fn open_spec(
        &mut self,
        client: &mut DtmClient,
        obj: ObjectId,
        update: bool,
        cache: &SpecCache,
    ) -> Result<(), DtmError> {
        if !self.has_read(obj) {
            if let Some((version, value)) = cache.map.get(&obj) {
                self.read_index.insert(obj, self.read_set.len());
                self.read_set.push((obj, *version));
                self.buffers.insert(obj, value.clone());
                if update {
                    self.writes.insert(obj);
                }
                return Ok(());
            }
        }
        self.open(client, obj, update)
    }

    /// Open `obj` presuming it *fresh*: install a synthesized
    /// `(version 0, default value)` copy with no remote round at all.
    /// Used for value-blind updates (insert-only rows): the template never
    /// reads a field, so only the version assumption matters — and commit
    /// validation checks it like any read, failing the transaction if the
    /// object in fact exists. The executor then demotes the object to a
    /// real read on the retry.
    pub fn open_blind(&mut self, obj: ObjectId, update: bool) {
        if !self.has_read(obj) {
            self.read_index.insert(obj, self.read_set.len());
            self.read_set.push((obj, 0));
            self.buffers.insert(obj, ObjectVal::new());
        }
        if update {
            self.writes.insert(obj);
        }
    }

    /// Read a field of an opened object's buffered copy.
    ///
    /// # Panics
    /// Panics if `obj` was never opened — that is an executor bug, not a
    /// run-time condition.
    pub fn get_field(&self, obj: ObjectId, field: FieldId) -> Value {
        self.buffers
            .get(&obj)
            .unwrap_or_else(|| panic!("get_field on unopened {obj}"))
            .get_or_zero(field)
    }

    /// Buffered write to an opened object.
    pub fn set_field(&mut self, obj: ObjectId, field: FieldId, value: Value) {
        debug_assert!(self.writes.contains(&obj), "set_field outside write-set");
        self.buffers
            .get_mut(&obj)
            .unwrap_or_else(|| panic!("set_field on unopened {obj}"))
            .set(field, value);
    }

    /// Commit via two-phase commit. On success the context is consumed;
    /// on failure the caller restarts with a fresh context.
    pub fn commit(self, client: &mut DtmClient) -> Result<(), DtmError> {
        let mut writes: Vec<(ObjectId, Version, ObjectVal)> = Vec::with_capacity(self.writes.len());
        for &obj in &self.writes {
            let version = self.read_version(obj).expect("write implies read");
            let value = self.buffers[&obj].clone();
            writes.push((obj, version, value));
        }
        // Deterministic order keeps server-side lock patterns stable.
        writes.sort_by_key(|&(o, _, _)| o);
        client.commit(self.txn, &self.read_set, &writes)
    }

    /// Start a closed-nested sub-transaction.
    ///
    /// Also re-clamps the validated watermarks to this context's own
    /// read-set length: a previously aborted child may have advanced them
    /// over its (now discarded) reads, and those positions are about to be
    /// reused by the new child's validation vector.
    pub fn child(&mut self) -> ChildCtx {
        let len = self.read_set.len();
        for w in self.watermarks.values_mut() {
            *w = (*w).min(len);
        }
        ChildCtx {
            reads: Vec::new(),
            read_index: HashMap::new(),
            overlay: HashMap::new(),
            writes: HashSet::new(),
        }
    }
}

/// A closed-nested sub-transaction: private overlay over a parent
/// [`TxnCtx`]. ACN uses exactly one nesting level, matching the paper's
/// system model, so children cannot spawn grandchildren.
#[derive(Debug)]
pub struct ChildCtx {
    /// Objects first read by this child.
    reads: Vec<ValidateEntry>,
    read_index: HashMap<ObjectId, usize>,
    /// Copy-on-write buffers shadowing the parent's.
    overlay: HashMap<ObjectId, ObjectVal>,
    writes: HashSet<ObjectId>,
}

impl ChildCtx {
    /// Objects this child read first (not via the parent).
    pub fn reads_len(&self) -> usize {
        self.reads.len()
    }

    fn combined_validate(&self, parent: &TxnCtx) -> Vec<ValidateEntry> {
        let mut v = Vec::with_capacity(parent.read_set.len() + self.reads.len());
        v.extend_from_slice(&parent.read_set);
        v.extend_from_slice(&self.reads);
        v
    }

    /// Open `obj` inside the sub-transaction. Objects already read by the
    /// parent (or this child) are local; fresh objects are fetched remotely
    /// with the *combined* read-set presented for incremental validation.
    pub fn open(
        &mut self,
        client: &mut DtmClient,
        parent: &TxnCtx,
        obj: ObjectId,
        update: bool,
    ) -> Result<(), DtmError> {
        if !self.read_index.contains_key(&obj) && !parent.has_read(obj) {
            let validate = self.combined_validate(parent);
            let (version, value) = client.remote_read(parent.txn, obj, &validate)?;
            self.read_index.insert(obj, self.reads.len());
            self.reads.push((obj, version));
            self.overlay.insert(obj, value);
        }
        if update {
            self.writes.insert(obj);
        }
        Ok(())
    }

    /// Batch-open inside the sub-transaction (see [`TxnCtx::open_batch`]).
    /// Fetched objects become **child-first** reads, so a later
    /// invalidation of a prefetched object still classifies as a partial
    /// (child-scope) rollback. Takes the parent mutably for its validated
    /// watermarks; the parent's read-set is untouched.
    pub fn open_batch(
        &mut self,
        client: &mut DtmClient,
        parent: &mut TxnCtx,
        objs: &[ObjectId],
    ) -> Result<(), DtmError> {
        let mut missing: Vec<ObjectId> = Vec::new();
        for &obj in objs {
            if !self.read_index.contains_key(&obj)
                && !parent.has_read(obj)
                && !missing.contains(&obj)
            {
                missing.push(obj);
            }
        }
        match missing.len() {
            0 => Ok(()),
            1 => self.open(client, parent, missing[0], false),
            _ => {
                let validate = self.combined_validate(parent);
                let fetched = client.remote_read_batch(
                    parent.txn,
                    &missing,
                    &validate,
                    &mut parent.watermarks,
                )?;
                for (obj, version, value) in fetched {
                    self.read_index.insert(obj, self.reads.len());
                    self.reads.push((obj, version));
                    self.overlay.insert(obj, value);
                }
                Ok(())
            }
        }
    }

    /// [`ChildCtx::open`] through the speculative cache: a hit installs a
    /// copy of the prefetched entry as a **child-first** read with no
    /// remote round, so a later invalidation of it still classifies as a
    /// partial rollback; a miss is a normal remote open. The entry stays
    /// cached (peek, not take): when this child rolls back, its re-run —
    /// and every later Block — re-installs from the cache for free instead
    /// of refetching state the transaction already holds.
    pub fn open_spec(
        &mut self,
        client: &mut DtmClient,
        parent: &TxnCtx,
        obj: ObjectId,
        update: bool,
        cache: &SpecCache,
    ) -> Result<(), DtmError> {
        if !self.read_index.contains_key(&obj) && !parent.has_read(obj) {
            if let Some((version, value)) = cache.map.get(&obj) {
                self.read_index.insert(obj, self.reads.len());
                self.reads.push((obj, *version));
                self.overlay.insert(obj, value.clone());
                if update {
                    self.writes.insert(obj);
                }
                return Ok(());
            }
        }
        self.open(client, parent, obj, update)
    }

    /// [`TxnCtx::open_blind`] inside the sub-transaction: the presumed
    /// `(version 0, default)` copy installs as a **child-first** read, so
    /// a failed presumption surfacing mid-run rolls back only this Block.
    pub fn open_blind(&mut self, parent: &TxnCtx, obj: ObjectId, update: bool) {
        if !self.read_index.contains_key(&obj) && !parent.has_read(obj) {
            self.read_index.insert(obj, self.reads.len());
            self.reads.push((obj, 0));
            self.overlay.insert(obj, ObjectVal::new());
        }
        if update {
            self.writes.insert(obj);
        }
    }

    /// Field read through the overlay chain: child overlay, else parent.
    pub fn get_field(&self, parent: &TxnCtx, obj: ObjectId, field: FieldId) -> Value {
        if let Some(val) = self.overlay.get(&obj) {
            return val.get_or_zero(field);
        }
        parent.get_field(obj, field)
    }

    /// Buffered write: copy-on-write from the parent's buffer into the
    /// overlay, so an abort of this child never disturbs the parent.
    pub fn set_field(&mut self, parent: &TxnCtx, obj: ObjectId, field: FieldId, value: Value) {
        debug_assert!(
            self.writes.contains(&obj) || parent.writes.contains(&obj),
            "set_field outside write-set"
        );
        let entry = self.overlay.entry(obj).or_insert_with(|| {
            parent
                .buffers
                .get(&obj)
                .cloned()
                .unwrap_or_else(|| panic!("set_field on unopened {obj}"))
        });
        entry.set(field, value);
        self.writes.insert(obj);
    }

    /// Closed-nested commit: merge into the parent's private context. No
    /// remote interaction — results stay invisible until the parent
    /// commits.
    pub fn commit_into(self, parent: &mut TxnCtx) {
        let base = parent.read_set.len();
        let expect = base + self.reads.len();
        for (obj, version) in self.reads {
            if !parent.has_read(obj) {
                parent.read_index.insert(obj, parent.read_set.len());
                parent.read_set.push((obj, version));
            }
        }
        if parent.read_set.len() != expect {
            // A duplicate child read was skipped, shifting the positions the
            // watermarks were advanced against — fall back to the stable
            // parent prefix. (Cannot happen via `open`, which short-circuits
            // parent reads; this guards hand-built children.)
            for w in parent.watermarks.values_mut() {
                *w = (*w).min(base);
            }
        }
        for (obj, value) in self.overlay {
            parent.buffers.insert(obj, value);
        }
        parent.writes.extend(self.writes);
    }

    /// Decide the rollback scope for an invalidation report: child-only iff
    /// *every* stale object was first read by this child. Anything touching
    /// the parent's history means the parent's merged state is stale and
    /// the whole transaction must re-execute.
    pub fn classify(&self, parent: &TxnCtx, invalid: &[ObjectId]) -> AbortScope {
        let all_child_local = invalid
            .iter()
            .all(|o| self.read_index.contains_key(o) && !parent.has_read(*o));
        if all_child_local && !invalid.is_empty() {
            AbortScope::Child
        } else {
            AbortScope::Parent
        }
    }
}

#[cfg(test)]
mod tests {
    //! Context-local logic (merge, overlay, classification). End-to-end
    //! behaviour against live servers is covered in the crate's
    //! integration tests.
    use super::*;
    use acn_simnet::{LatencyModel, Network, NodeId};
    use acn_txir::ObjClass;

    const BRANCH: ObjClass = ObjClass::new(0, "Branch");
    const ACCOUNT: ObjClass = ObjClass::new(1, "Account");
    const B1: ObjectId = ObjectId::new(BRANCH, 1);
    const A1: ObjectId = ObjectId::new(ACCOUNT, 1);
    const A2: ObjectId = ObjectId::new(ACCOUNT, 2);
    const F: FieldId = FieldId(0);

    /// A client wired to an empty network — usable for pure context tests
    /// that never issue remote operations.
    fn offline_client() -> DtmClient {
        let net: Network<crate::messages::Msg> = Network::new(2, LatencyModel::Zero);
        let quorums = acn_quorum::LevelQuorums::new(acn_quorum::DaryTree::ternary(1));
        DtmClient::new(
            net.clone(),
            net.endpoint(NodeId(1)),
            quorums,
            crate::client::ClientConfig::default(),
        )
    }

    /// Hand-construct a parent with pre-loaded buffers (as if read).
    fn parent_with(objs: &[(ObjectId, i64)]) -> TxnCtx {
        let mut client = offline_client();
        let mut ctx = TxnCtx::begin(&mut client);
        for &(obj, v) in objs {
            ctx.read_index.insert(obj, ctx.read_set.len());
            ctx.read_set.push((obj, 1));
            ctx.buffers
                .insert(obj, ObjectVal::from_fields([(F, Value::Int(v))]));
            ctx.writes.insert(obj);
        }
        ctx
    }

    #[test]
    fn parent_field_roundtrip() {
        let mut p = parent_with(&[(A1, 10)]);
        assert_eq!(p.get_field(A1, F), Value::Int(10));
        p.set_field(A1, F, Value::Int(25));
        assert_eq!(p.get_field(A1, F), Value::Int(25));
        assert!(p.has_read(A1));
        assert_eq!(p.read_version(A1), Some(1));
    }

    #[test]
    #[should_panic(expected = "unopened")]
    fn get_field_unopened_panics() {
        let p = parent_with(&[]);
        let _ = p.get_field(A1, F);
    }

    #[test]
    fn child_overlay_shadows_parent() {
        let mut p = parent_with(&[(A1, 10)]);
        let mut c = p.child();
        assert_eq!(c.get_field(&p, A1, F), Value::Int(10), "falls through");
        c.set_field(&p, A1, F, Value::Int(99));
        assert_eq!(c.get_field(&p, A1, F), Value::Int(99), "overlay wins");
        assert_eq!(p.get_field(A1, F), Value::Int(10), "parent untouched");
    }

    #[test]
    fn child_abort_discards_overlay() {
        let mut p = parent_with(&[(A1, 10)]);
        {
            let mut c = p.child();
            c.set_field(&p, A1, F, Value::Int(99));
            // dropped without commit_into = aborted
        }
        assert_eq!(p.get_field(A1, F), Value::Int(10));
        // A fresh child sees the parent value again.
        let c2 = p.child();
        assert_eq!(c2.get_field(&p, A1, F), Value::Int(10));
        p.set_field(A1, F, Value::Int(11));
        assert_eq!(p.get_field(A1, F), Value::Int(11));
    }

    #[test]
    fn child_commit_merges_state() {
        let mut p = parent_with(&[(A1, 10)]);
        let mut c = p.child();
        // Simulate the child having read B1 remotely.
        c.read_index.insert(B1, 0);
        c.reads.push((B1, 7));
        c.overlay
            .insert(B1, ObjectVal::from_fields([(F, Value::Int(100))]));
        c.writes.insert(B1);
        c.set_field(&p, A1, F, Value::Int(42));
        c.commit_into(&mut p);
        assert!(p.has_read(B1));
        assert_eq!(p.read_version(B1), Some(7));
        assert_eq!(p.get_field(B1, F), Value::Int(100));
        assert_eq!(p.get_field(A1, F), Value::Int(42));
        assert!(p.writes.contains(&B1));
    }

    #[test]
    fn merge_does_not_duplicate_parent_reads() {
        let mut p = parent_with(&[(A1, 10)]);
        let c = p.child();
        // Child "re-reads" A1 — open() would short-circuit, but even a
        // manual duplicate entry must not double up the parent read-set.
        c.commit_into(&mut p);
        assert_eq!(p.reads_len(), 1);
    }

    #[test]
    fn classify_child_scope() {
        let mut p = parent_with(&[(A1, 10)]);
        let mut c = p.child();
        c.read_index.insert(B1, 0);
        c.reads.push((B1, 3));
        // B1 is child-first ⇒ child scope.
        assert_eq!(c.classify(&p, &[B1]), AbortScope::Child);
    }

    #[test]
    fn classify_parent_scope_when_history_invalid() {
        let mut p = parent_with(&[(A1, 10)]);
        let mut c = p.child();
        c.read_index.insert(B1, 0);
        c.reads.push((B1, 3));
        // A1 belongs to the parent's history ⇒ parent scope, even though
        // B1 is child-local.
        assert_eq!(c.classify(&p, &[B1, A1]), AbortScope::Parent);
        assert_eq!(c.classify(&p, &[A1]), AbortScope::Parent);
    }

    #[test]
    fn open_blind_installs_presumed_absent_entry() {
        let mut p = parent_with(&[]);
        p.open_blind(A1, true);
        assert!(p.has_read(A1));
        assert_eq!(p.read_version(A1), Some(0), "presumed never written");
        assert_eq!(p.get_field(A1, F), Value::Int(0), "default value");
        assert!(p.writes.contains(&A1));
        p.set_field(A1, F, Value::Int(5));
        assert_eq!(p.get_field(A1, F), Value::Int(5));
    }

    #[test]
    fn child_open_blind_is_child_scoped() {
        let mut p = parent_with(&[]);
        let mut c = p.child();
        c.open_blind(&p, A1, true);
        assert_eq!(c.get_field(&p, A1, F), Value::Int(0));
        // The presumption is a child-first read: if it is wrong, only
        // this Block rolls back.
        assert_eq!(c.classify(&p, &[A1]), AbortScope::Child);
        c.commit_into(&mut p);
        assert!(p.has_read(A1));
        assert_eq!(p.read_version(A1), Some(0));
        assert!(p.writes.contains(&A1));
    }

    #[test]
    fn classify_empty_or_unknown_is_parent() {
        let mut p = parent_with(&[(A1, 10)]);
        let c = p.child();
        assert_eq!(c.classify(&p, &[]), AbortScope::Parent);
        assert_eq!(c.classify(&p, &[A2]), AbortScope::Parent);
    }

    #[test]
    fn combined_validate_covers_both_histories() {
        let mut p = parent_with(&[(A1, 10)]);
        let mut c = p.child();
        c.read_index.insert(B1, 0);
        c.reads.push((B1, 3));
        let v = c.combined_validate(&p);
        assert_eq!(v, vec![(A1, 1), (B1, 3)]);
    }

    #[test]
    fn child_copy_on_write_from_parent_buffer() {
        let mut p = parent_with(&[(A1, 10)]);
        let mut c = p.child();
        c.set_field(&p, A1, F, Value::Int(11));
        // Write marked in the child's write-set so the merge propagates it.
        assert!(c.writes.contains(&A1));
    }
}
